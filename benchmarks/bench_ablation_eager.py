"""Experiment A-EAGER — on-the-fly vs post-execution failure detection.

The paper's conclusion points at hardware support [47] (Zhang,
Rauchwerger & Torrellas, HPCA-4: speculative run-time parallelization
*in hardware*, with conflicts detected as they happen).  This ablation
models that: eager detection aborts the speculative attempt at the first
definite conflict, so a failing loop pays far less than the full marked
doall + analysis, while passing loops are unaffected.
"""


from conftest import run_once

from repro.evalx.render import format_table
from repro.machine.costmodel import fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads.synthetic import build_dependence_injected

FRACTIONS = (0.0, 0.05, 0.25)


def _run(workload, eager):
    runner = LoopRunner(workload.program(), workload.inputs)
    config = RunConfig(model=fx80(), eager_failure_detection=eager)
    serial = runner.serial_run(config.model)
    report = runner.run(Strategy.SPECULATIVE, config)
    return report, report.loop_time / serial.loop_time


def test_ablation_eager_detection(benchmark, artifact):
    def sweep():
        rows = []
        for fraction in FRACTIONS:
            workload = build_dependence_injected(n=400, dep_fraction=fraction)
            lazy_report, lazy_ratio = _run(workload, eager=False)
            eager_report, eager_ratio = _run(workload, eager=True)
            rows.append((fraction, lazy_report, lazy_ratio, eager_report, eager_ratio))
        return rows

    rows = run_once(benchmark, sweep)
    artifact(
        "ablation_eager",
        format_table(
            ["dep fraction", "passed", "lazy time/serial", "eager time/serial",
             "aborted after (iters of 400)"],
            [
                [
                    fraction,
                    lazy_report.passed,
                    lazy_ratio,
                    eager_ratio,
                    eager_report.stats.get("aborted_after", "-"),
                ]
                for fraction, lazy_report, lazy_ratio, eager_report, eager_ratio in rows
            ],
            title="On-the-fly (eager) vs post-execution failure detection",
        ),
    )

    for fraction, lazy_report, lazy_ratio, eager_report, eager_ratio in rows:
        if fraction == 0.0:
            # Passing loops: eager detection costs nothing.
            assert lazy_report.passed and eager_report.passed
            assert abs(lazy_ratio - eager_ratio) < 1e-6
        else:
            assert not lazy_report.passed and not eager_report.passed
            # Eager failing runs are strictly cheaper than lazy ones.
            assert eager_ratio < lazy_ratio
            assert eager_report.stats["aborted_after"] < 400
    # Denser dependences are detected sooner.
    aborts = [
        eager_report.stats["aborted_after"]
        for fraction, _l, _lr, eager_report, _er in rows
        if fraction > 0.0
    ]
    assert aborts[-1] <= aborts[0]
