"""Experiment A-MARK — ablation: marking-cost sensitivity.

The paper closes by arguing for hardware support for the marking
operations [47]: the speculative speedup is a direct function of the
per-reference marking cost.  Sweeping the cost-model ``mark`` weight
quantifies that: zero-cost marking (the hardware-assisted limit)
approaches the ideal, and expensive marking erodes the speedup.
"""

from conftest import run_once

from repro.evalx.figures import marking_overhead_series
from repro.evalx.render import format_table
from repro.machine.costmodel import fx80

MARK_COSTS = (0.0, 2.0, 4.0, 8.0, 16.0)


def test_ablation_marking_cost(benchmark, artifact):
    points = run_once(
        benchmark,
        lambda: marking_overhead_series(mark_costs=MARK_COSTS, procs=8, model=fx80()),
    )
    artifact(
        "ablation_marking",
        format_table(
            ["mark cost (cycles)", "marked/unmarked work", "speedup at p=8"],
            [[p.mark_cost, p.overhead_factor, p.speedup_at_p] for p in points],
            title="Marking-cost sensitivity (BDNA, speculative, p=8)",
        ),
    )

    overheads = [p.overhead_factor for p in points]
    speedups = [p.speedup_at_p for p in points]
    # Overhead factor is 1.0 with free marking and strictly increasing.
    assert abs(overheads[0] - 1.0) < 1e-9
    assert all(a < b for a, b in zip(overheads, overheads[1:]))
    # Speedup strictly decreases as marking gets more expensive.
    assert all(a > b for a, b in zip(speedups, speedups[1:]))
    # The hardware-assisted limit buys a substantial factor.
    assert speedups[0] > 1.3 * speedups[-1]
