"""Experiment A-PD — ablation: PD (reference-based) vs LPD (value-based).

The paper's improvement over the ICS'94 PD test: marking only the reads
whose values participate in the cross-iteration flow qualifies loops the
reference-based test rejects — here, loops whose conflicting reads are
dynamically dead (used only under a rare condition).
"""

from conftest import run_once

from repro.evalx.figures import pd_vs_lpd_comparison
from repro.evalx.render import format_table
from repro.machine.costmodel import fx80

FRACTIONS = (0.0, 0.1, 1.0)


def test_ablation_pd_vs_lpd(benchmark, artifact):
    points = run_once(
        benchmark, lambda: pd_vs_lpd_comparison(live_fractions=FRACTIONS, model=fx80())
    )
    artifact(
        "ablation_pd_vs_lpd",
        format_table(
            ["live-use fraction", "PD passes", "LPD passes"],
            [[p.live_fraction, p.pd_passed, p.lpd_passed] for p in points],
            title="PD vs LPD qualification on conditionally-dead reads",
        ),
    )

    by_fraction = {p.live_fraction: p for p in points}
    # Fully dead conflicting reads: only the value-based test qualifies.
    assert by_fraction[0.0].lpd_passed
    assert not by_fraction[0.0].pd_passed
    # Any live use of a conflicting read fails both (soundness).
    assert not by_fraction[0.1].lpd_passed
    assert not by_fraction[1.0].lpd_passed
    # PD never passes something LPD rejects.
    for p in points:
        if p.pd_passed:
            assert p.lpd_passed
