"""Experiment A-PW — ablation: iteration-wise vs processor-wise test.

Appendix A.1: treating each processor's block as one super-iteration
qualifies loops whose dependences stay within blocks — and the
qualification *depends on the processor count*, since block boundaries
move: with 240 iterations of pairwise chains, even block sizes (p in
{2,4,8}) keep pairs together, p=7 splits one.
"""

from conftest import run_once

from repro.evalx.figures import procwise_qualification
from repro.evalx.render import format_table
from repro.machine.costmodel import fx80

PROCS = (2, 4, 7, 8, 12)


def test_ablation_processor_wise(benchmark, artifact):
    points = run_once(
        benchmark, lambda: procwise_qualification(procs=PROCS, n=240, model=fx80())
    )
    artifact(
        "ablation_procwise",
        format_table(
            ["procs", "iteration-wise passes", "processor-wise passes",
             "processor-wise speedup"],
            [
                [p.procs, p.iteration_wise_passed, p.processor_wise_passed,
                 p.processor_wise_speedup]
                for p in points
            ],
            title="Iteration-wise vs processor-wise qualification (paired chains)",
        ),
    )

    by_procs = {p.procs: p for p in points}
    # The iteration-wise test rejects the loop at every p.
    assert not any(p.iteration_wise_passed for p in points)
    # Aligned blocks qualify; the straddling p=7 blocks do not.
    for p in (2, 4, 8, 12):
        assert by_procs[p].processor_wise_passed, p
    # This tiny-bodied loop only profits once enough processors amortize
    # the marking (p=2 is below break-even — itself a paper-faithful
    # observation about run-time testing of small loops).
    for p in (4, 8, 12):
        assert by_procs[p].processor_wise_speedup > 1.0
    assert by_procs[12].processor_wise_speedup > by_procs[4].processor_wise_speedup
    assert not by_procs[7].processor_wise_passed
