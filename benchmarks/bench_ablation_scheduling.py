"""Experiment A-SCHED — iteration scheduling policy ablation.

The Alliant machines self-scheduled loop iterations; this repo defaults
to block scheduling (which the processor-wise test requires).  On a
load-imbalanced loop (BDNA's per-atom neighbour counts vary) dynamic
self-scheduling recovers the imbalance that block scheduling leaves on
the table, at a small dispatch premium on balanced loops.
"""

import numpy as np

from conftest import run_once

from repro.evalx.render import format_table
from repro.machine.costmodel import fx80
from repro.machine.schedule import ScheduleKind
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads.base import Workload
from repro.workloads.bdna import build_bdna


def _skewed_bdna(n=240, seed=0) -> Workload:
    """BDNA variant with heavily skewed neighbour counts (imbalance)."""
    workload = build_bdna(n=n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    cnt = np.where(rng.random(n) < 0.1, 12, 2)  # few heavy atoms
    base = np.concatenate(([0], np.cumsum(cnt)[:-1]))
    pool = int(cnt.sum())
    workload.inputs["cnt"] = cnt
    workload.inputs["base"] = base
    # Regenerate a pool of the right size.
    sites = workload.inputs["pos"].size
    workload.inputs["nbr"] = rng.integers(1, sites + 1, workload.inputs["nbr"].size)
    assert pool <= workload.inputs["nbr"].size
    return workload


def test_ablation_scheduling_policy(benchmark, artifact):
    def sweep():
        workload = _skewed_bdna()
        rows = []
        for kind in (ScheduleKind.BLOCK, ScheduleKind.CYCLIC, ScheduleKind.DYNAMIC):
            runner = LoopRunner(workload.program(), workload.inputs)
            report = runner.run(
                Strategy.SPECULATIVE, RunConfig(model=fx80(), schedule=kind)
            )
            rows.append((kind.value, report))
        return rows

    rows = run_once(benchmark, sweep)
    artifact(
        "ablation_scheduling",
        format_table(
            ["schedule", "passed", "speedup at p=8", "body cycles"],
            [[kind, r.passed, r.speedup, r.times.body] for kind, r in rows],
            title="Scheduling policy on a load-imbalanced BDNA (p=8)",
        ),
    )

    by_kind = {kind: report for kind, report in rows}
    for report in by_kind.values():
        assert report.passed
    # Dynamic self-scheduling beats static block on the imbalanced loop.
    assert by_kind["dynamic"].times.body <= by_kind["block"].times.body
    assert by_kind["dynamic"].speedup >= by_kind["block"].speedup
    # All policies compute the same result (covered by the pass + the
    # oracle checks in the test suite); here we check timing sanity only.
    assert by_kind["cyclic"].speedup > 0.5
