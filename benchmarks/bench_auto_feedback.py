"""Infrastructure benchmark — feedback-driven auto planning, warmed.

Not a paper artifact: measures what the profile store buys the ``auto``
engine on a mixed workload (BDNA, MDG, OCEAN).  Each loop's profile is
first trained by running every candidate fixed engine against the same
:class:`LoopProfileStore`; the warmed planner must then track the best
fixed engine per loop (within 10% — its per-decision cost is one
classifier pass plus a dict scan over the ring) and strictly beat the
worst fixed engine on the workload total.  The failing OCEAN variant
pins the other half of the feedback loop: after two recorded failures
the planner refuses to speculate at all, with the evidence on the
report.
"""

from __future__ import annotations

import numpy as np

from conftest import calibrate, run_once, write_bench_json
from repro.machine.costmodel import fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.profile import LoopProfileStore, kernel_cache
from repro.workloads.bdna import build_bdna
from repro.workloads.mdg import build_mdg
from repro.workloads.ocean import build_ocean

PROCS = 8
ROUNDS = 5
TRAIN_RUNS = 2
#: warmed auto may cost at most this over the best fixed engine per loop.
PER_LOOP_TOLERANCE = 1.10

#: the fixed engines a warmed planner competes against (every serial-
#: process candidate it could itself elect for these loops).
CANDIDATES = ("compiled", "vectorized", "walk")

LOOPS = (
    ("bdna", lambda: build_bdna(n=300)),
    ("mdg", lambda: build_mdg(n=250)),
    ("ocean", lambda: build_ocean(nk=600)),
)


def _runner(build, profiles=None):
    workload = build()
    return LoopRunner(workload.program(), workload.inputs, profiles=profiles)


def _config(engine):
    return RunConfig(model=fx80().with_procs(PROCS), engine=engine)


def _timed_run(runner, engine):
    import time

    begin = time.perf_counter()
    report = runner.run(Strategy.SPECULATIVE, _config(engine))
    return time.perf_counter() - begin, report


def test_auto_feedback_mixed_workload(benchmark, artifact):
    # A warm jit ledger would widen the candidate set on Numba hosts;
    # this benchmark compares the portable engines only.
    kernel_cache.clear()

    def measure():
        calibration_s = calibrate()
        results = {}
        for name, build in LOOPS:
            # One runner (and one profile store) per loop: training,
            # fixed-engine measurement and the warmed-auto measurement
            # all share it, so every engine sees identical runner state.
            runner = _runner(build, profiles=LoopProfileStore())
            # Train: every candidate engine runs against the shared
            # store, so the planner's ring holds timed observations for
            # each before the warmed measurement starts.
            for engine in CANDIDATES:
                for _ in range(TRAIN_RUNS):
                    runner.run(Strategy.SPECULATIVE, _config(engine))

            # Measure in interleaved rounds (auto alongside every fixed
            # engine each round) so clock drift cannot bias one side.
            walls = {engine: [] for engine in CANDIDATES + ("auto",)}
            reports = {}
            for _ in range(ROUNDS):
                for engine in CANDIDATES + ("auto",):
                    wall, report = _timed_run(runner, engine)
                    walls[engine].append(wall)
                    reports[engine] = report
            fixed = {
                engine: (min(walls[engine]), reports[engine])
                for engine in CANDIDATES
            }
            for engine, (_wall, report) in fixed.items():
                assert report.passed, f"{name}/{engine} failed the LRPD test"
            results[name] = (fixed, min(walls["auto"]), reports["auto"])
        return calibration_s, results

    calibration_s, results = run_once(benchmark, measure)

    lines = [
        f"Feedback-driven auto planning, mixed workload "
        f"(p={PROCS}, trained {TRAIN_RUNS}x per engine, best of {ROUNDS})"
    ]
    entries = {}
    auto_total = best_total = worst_total = 0.0
    for name, (fixed, auto_wall, auto_report) in results.items():
        best_engine = min(fixed, key=lambda e: fixed[e][0])
        worst_engine = max(fixed, key=lambda e: fixed[e][0])
        best_wall = fixed[best_engine][0]
        worst_wall = fixed[worst_engine][0]
        auto_total += auto_wall
        best_total += best_wall
        worst_total += worst_wall
        entries[f"auto_{name}"] = auto_wall
        ratio = auto_wall / best_wall
        lines.append(
            f"{name:6s}: auto {auto_wall * 1000:7.1f} ms "
            f"(picked {auto_report.engine_used}) | best fixed "
            f"{best_engine} {best_wall * 1000:7.1f} ms ({ratio:.2f}x) | "
            f"worst fixed {worst_engine} {worst_wall * 1000:7.1f} ms"
        )

        # The warmed planner's pick is history-driven and says so.
        (_key, reason), = auto_report.engine_decisions
        assert "feedback" in reason, reason
        assert auto_report.passed
        # Bit-identical to the fixed engine it elected.
        picked = fixed[auto_report.engine_used][1]
        assert auto_report.test_result == picked.test_result
        assert auto_report.times.as_dict() == picked.times.as_dict()
        for arr in picked.env.arrays:
            np.testing.assert_array_equal(
                auto_report.env.arrays[arr], picked.env.arrays[arr],
                err_msg=f"{name}/{arr}",
            )
        # The acceptance bar: within tolerance of the best fixed engine.
        assert auto_wall <= best_wall * PER_LOOP_TOLERANCE, (
            f"{name}: warmed auto {auto_wall * 1000:.1f} ms exceeds "
            f"{PER_LOOP_TOLERANCE:.2f}x best fixed engine "
            f"{best_engine} {best_wall * 1000:.1f} ms"
        )

    # Across the workload, feedback must beat uniformly picking the
    # worst fixed engine — the regime a static one-size choice risks.
    assert auto_total < worst_total, (
        f"warmed auto total {auto_total * 1000:.1f} ms does not beat the "
        f"worst fixed total {worst_total * 1000:.1f} ms"
    )
    lines.append(
        f"totals: auto {auto_total * 1000:7.1f} ms | best fixed "
        f"{best_total * 1000:7.1f} ms | worst fixed "
        f"{worst_total * 1000:7.1f} ms"
    )

    # The failure half of the feedback loop: two recorded failures veto
    # the third speculation attempt outright, evidence on the report.
    veto_runner = _runner(lambda: build_ocean(nk=300, overlap=True),
                          profiles=LoopProfileStore())
    for _ in range(2):
        assert veto_runner.run(
            Strategy.SPECULATIVE, _config("auto")
        ).passed is False
    vetoed = veto_runner.run(Strategy.SPECULATIVE, _config("auto"))
    assert vetoed.stats.get("refused") == 1.0
    (_key, veto_reason), = vetoed.engine_decisions
    assert "failure rate" in veto_reason
    lines.append(f"ocean-fail: refused after 2 failures ({veto_reason})")

    entries["auto_warm_total"] = auto_total
    write_bench_json(
        "auto_feedback",
        calibration_s,
        entries,
        extra={
            "best_fixed_total_s": best_total,
            "worst_fixed_total_s": worst_total,
            "auto_over_best_fixed": auto_total / best_total,
        },
    )
    artifact("auto_feedback", "\n".join(lines))
