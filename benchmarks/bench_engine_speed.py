"""Infrastructure benchmark — execution-engine wall-clock comparison.

Not a paper artifact: measures this repository's two execution engines
(tree-walking interpreter vs closure-compiled fast path) on the BDNA
serial run.  The compiled engine must produce identical simulated times
and be measurably faster in real time — it is what keeps the serial
oracles and failed-speculation reruns cheap.
"""

import time

from repro.dsl.parser import parse
from repro.machine.costmodel import fx80
from repro.runtime.serial import run_serial
from repro.workloads.bdna import build_bdna


def _timed(engine: str, workload) -> tuple[float, object]:
    begin = time.perf_counter()
    run = run_serial(parse(workload.source), workload.inputs, fx80(), engine=engine)
    return time.perf_counter() - begin, run


def test_engine_speed(benchmark, artifact):
    workload = build_bdna(n=400)

    walk_wall, walk_run = _timed("walk", workload)

    def compiled_run():
        return _timed("compiled", workload)

    fast_wall, fast_run = benchmark.pedantic(compiled_run, rounds=3, iterations=1)

    artifact(
        "engine_speed",
        "\n".join(
            [
                "Execution engines on BDNA n=400 (serial run)",
                f"tree walker : {walk_wall * 1000:8.1f} ms wall clock",
                f"compiled    : {fast_wall * 1000:8.1f} ms wall clock "
                f"({walk_wall / fast_wall:.2f}x)",
                f"identical simulated loop time: "
                f"{walk_run.loop_time == fast_run.loop_time}",
            ]
        ),
    )

    # Same simulated behaviour...
    assert walk_run.loop_time == fast_run.loop_time
    assert walk_run.num_iterations == fast_run.num_iterations
    assert walk_run.loop_iteration_costs == fast_run.loop_iteration_costs
    # ...delivered faster for real.
    assert fast_wall < walk_wall
