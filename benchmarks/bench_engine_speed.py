"""Infrastructure benchmark — execution-engine wall-clock comparison.

Not a paper artifact: measures this repository's execution engines
(tree-walking interpreter vs closure-compiled fast path) on BDNA, both
on the serial run and on the full speculative protocol.  The compiled
engines must produce bit-identical simulated times, test outcomes and
memory state — the only thing allowed to differ is the real wall clock.
Both engines are timed the same way (best of ``ROUNDS`` runs each) so
the comparison is fair: neither side gets warm-cache rounds the other
does not.
"""

import numpy as np

from conftest import calibrate, min_wall, run_once, write_bench_json
from repro.analysis.instrument import build_plan
from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter, split_at_loop
from repro.machine.costmodel import fx80
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.runtime.serial import run_serial
from repro.runtime.speculative import run_speculative
from repro.workloads.bdna import build_bdna

ROUNDS = 3
PROCS = 8


def _env_state(env: Environment):
    return (
        {name: arr.copy() for name, arr in env.arrays.items()},
        dict(env.scalars),
    )


def _assert_same_env(state_a, state_b) -> None:
    arrays_a, scalars_a = state_a
    arrays_b, scalars_b = state_b
    assert scalars_a == scalars_b
    assert arrays_a.keys() == arrays_b.keys()
    for name, arr in arrays_a.items():
        assert np.array_equal(arr, arrays_b[name]), name


def test_engine_speed_serial(benchmark, artifact):
    workload = build_bdna(n=400)
    program = parse(workload.source)

    def measure():
        walk = min_wall(
            lambda: run_serial(program, workload.inputs, fx80(), engine="walk")
        )
        fast = min_wall(
            lambda: run_serial(program, workload.inputs, fx80(), engine="compiled")
        )
        return walk, fast

    (walk_wall, walk_run), (fast_wall, fast_run) = run_once(benchmark, measure)

    artifact(
        "engine_speed",
        "\n".join(
            [
                f"Execution engines on BDNA n=400 (serial run, best of {ROUNDS})",
                f"tree walker : {walk_wall * 1000:8.1f} ms wall clock",
                f"compiled    : {fast_wall * 1000:8.1f} ms wall clock "
                f"({walk_wall / fast_wall:.2f}x)",
                f"identical simulated loop time: "
                f"{walk_run.loop_time == fast_run.loop_time}",
            ]
        ),
    )

    # Same simulated behaviour...
    assert walk_run.loop_time == fast_run.loop_time
    assert walk_run.num_iterations == fast_run.num_iterations
    assert walk_run.loop_iteration_costs == fast_run.loop_iteration_costs
    # ...delivered faster for real.
    assert fast_wall < walk_wall


def test_engine_speed_speculative(benchmark, artifact):
    """The compiled speculative engine: >=2x over the instrumented walker.

    Runs the full protocol (checkpoint, marked doall, LRPD analysis,
    merge) on BDNA and asserts bit-identical simulated loop time, shadow
    analysis result and post-loop environment between the engines.
    """
    workload = build_bdna(n=400)
    program = parse(workload.source)
    plan = build_plan(program)
    loop = plan.loop
    before, _after = split_at_loop(program, loop)

    def speculative(engine: str):
        env = Environment(program, workload.inputs)
        Interpreter(program, env, value_based=False).exec_block(before)
        sim = DoallSimulator(fx80().with_procs(PROCS), ScheduleKind.BLOCK)
        outcome = run_speculative(program, loop, env, plan, sim, engine=engine)
        return outcome, _env_state(env)

    def measure():
        calibration_s = calibrate()
        walk = min_wall(lambda: speculative("walk"))
        fast = min_wall(lambda: speculative("compiled"))
        return calibration_s, walk, fast

    calibration_s, (walk_wall, (walk_out, walk_env)), (fast_wall, (fast_out, fast_env)) = (
        run_once(benchmark, measure)
    )
    ratio = walk_wall / fast_wall

    write_bench_json(
        "engine_speed",
        calibration_s,
        {"walk_speculative": walk_wall, "compiled_speculative": fast_wall},
        extra={"walk_over_compiled": ratio},
    )

    artifact(
        "engine_speed_speculative",
        "\n".join(
            [
                f"Execution engines on BDNA n=400 "
                f"(speculative protocol, p={PROCS}, best of {ROUNDS})",
                f"instrumented walker: {walk_wall * 1000:8.1f} ms wall clock",
                f"compiled engine    : {fast_wall * 1000:8.1f} ms wall clock "
                f"({ratio:.2f}x)",
                f"LRPD passed (both engines): {walk_out.result.passed}",
                f"identical simulated times : {walk_out.times == fast_out.times}",
            ]
        ),
    )

    # Bit-identical simulated protocol under both engines.
    assert walk_out.result == fast_out.result
    assert walk_out.result.passed
    assert walk_out.times == fast_out.times
    assert walk_out.stats == fast_out.stats
    _assert_same_env(walk_env, fast_env)
    # The perf target: the compiled engine halves the attempt's wall clock.
    assert ratio >= 2.0, f"compiled speculative engine only {ratio:.2f}x"


def test_engine_speed_vectorized(benchmark, artifact):
    """The vectorized whole-block engine: >=3x over compiled on BDNA.

    The larger n=800 instance is where whole-block lowering pays: the
    per-iteration Python dispatch the compiled engine still does is
    replaced by a handful of NumPy kernels over index vectors plus one
    bulk shadow-marking pass.  The block must actually commit (no
    fallback) and every observable must match the compiled engine.
    """
    workload = build_bdna(n=800)
    program = parse(workload.source)
    plan = build_plan(program)
    loop = plan.loop
    before, _after = split_at_loop(program, loop)

    def speculative(engine: str):
        env = Environment(program, workload.inputs)
        Interpreter(program, env, value_based=False).exec_block(before)
        sim = DoallSimulator(fx80().with_procs(PROCS), ScheduleKind.BLOCK)
        outcome = run_speculative(program, loop, env, plan, sim, engine=engine)
        return outcome, _env_state(env)

    def measure():
        calibration_s = calibrate()
        fast = min_wall(lambda: speculative("compiled"), rounds=5)
        vec = min_wall(lambda: speculative("vectorized"), rounds=5)
        return calibration_s, fast, vec

    calibration_s, (fast_wall, (fast_out, fast_env)), (vec_wall, (vec_out, vec_env)) = (
        run_once(benchmark, measure)
    )
    ratio = fast_wall / vec_wall

    write_bench_json(
        "engine_speed",
        calibration_s,
        {
            "compiled_speculative_n800": fast_wall,
            "vectorized_speculative": vec_wall,
        },
        extra={"compiled_over_vectorized": ratio},
        merge=True,
    )

    artifact(
        "engine_speed_vectorized",
        "\n".join(
            [
                f"Execution engines on BDNA n=800 "
                f"(speculative protocol, p={PROCS}, best of 5)",
                f"compiled engine  : {fast_wall * 1000:8.1f} ms wall clock",
                f"vectorized engine: {vec_wall * 1000:8.1f} ms wall clock "
                f"({ratio:.2f}x)",
                f"block committed vectorized: "
                f"{vec_out.run.engine_used == 'vectorized'}",
                f"LRPD passed (both engines): {fast_out.result.passed}",
                f"identical simulated times : {fast_out.times == vec_out.times}",
            ]
        ),
    )

    # The block must commit — a silent fallback would time compiled twice.
    assert vec_out.run.engine_used == "vectorized"
    assert vec_out.run.fallback_reason is None
    # Bit-identical simulated protocol under both engines.
    assert fast_out.result == vec_out.result
    assert fast_out.result.passed
    assert fast_out.times == vec_out.times
    assert fast_out.stats == vec_out.stats
    assert fast_out.run.iteration_costs == vec_out.run.iteration_costs
    _assert_same_env(fast_env, vec_env)
    # The perf target: whole-block lowering is >=3x over closure dispatch.
    assert ratio >= 3.0, f"vectorized speculative engine only {ratio:.2f}x"


def test_engine_speed_jit(benchmark, artifact):
    """The jit engine: native marking kernels when Numba is present.

    Parity is unconditional: with Numba absent the engine must degrade
    to ``vectorized`` (reason recorded) and stay bit-identical; with
    Numba present the committed jit block must clear the >=10x target
    over the compiled engine on BDNA n=800.  The ``jit_speculative``
    entry is written either way, so the regression gate tracks whichever
    path this host takes.  Timing is best-of-5, so the one-off kernel
    compile (reported separately as ``jit_compile_s``) never lands in
    the measured wall.
    """
    import repro.core.jit_kernels as jit_kernels
    from repro.runtime.profile import kernel_cache

    workload = build_bdna(n=800)
    program = parse(workload.source)
    plan = build_plan(program)
    loop = plan.loop
    before, _after = split_at_loop(program, loop)

    def speculative(engine: str):
        env = Environment(program, workload.inputs)
        Interpreter(program, env, value_based=False).exec_block(before)
        sim = DoallSimulator(fx80().with_procs(PROCS), ScheduleKind.BLOCK)
        outcome = run_speculative(program, loop, env, plan, sim, engine=engine)
        return outcome, _env_state(env)

    kernels = jit_kernels.load_kernels()
    native = kernels is not None and kernels.native
    kernel_cache.clear()
    try:

        def measure():
            calibration_s = calibrate()
            fast = min_wall(lambda: speculative("compiled"), rounds=5)
            vec = min_wall(lambda: speculative("vectorized"), rounds=5)
            jit = min_wall(lambda: speculative("jit"), rounds=5)
            return calibration_s, fast, vec, jit

        (
            calibration_s,
            (fast_wall, (fast_out, fast_env)),
            (vec_wall, (vec_out, vec_env)),
            (jit_wall, (jit_out, jit_env)),
        ) = run_once(benchmark, measure)
    finally:
        # A warm ledger would flip the auto planner's pick below.
        kernel_cache.clear()
    ratio = fast_wall / jit_wall

    write_bench_json(
        "engine_speed",
        calibration_s,
        {"jit_speculative": jit_wall},
        extra={"compiled_over_jit": ratio, "numba_native": native},
        merge=True,
    )

    artifact(
        "engine_speed_jit",
        "\n".join(
            [
                f"Execution engines on BDNA n=800 "
                f"(speculative protocol, p={PROCS}, best of 5)",
                f"compiled engine  : {fast_wall * 1000:8.1f} ms wall clock",
                f"vectorized engine: {vec_wall * 1000:8.1f} ms wall clock",
                f"jit engine       : {jit_wall * 1000:8.1f} ms wall clock "
                f"({ratio:.2f}x over compiled)",
                f"native kernels   : {native}",
                f"engine used      : {jit_out.run.engine_used} "
                f"(fallback: {jit_out.run.fallback_reason})",
            ]
        ),
    )

    if native:
        # Numba present: the block must commit on the jit engine...
        assert jit_out.run.engine_used == "jit"
        assert jit_out.run.fallback_reason is None
    else:
        # ...Numba absent: graceful degradation one step down the chain.
        assert jit_out.run.engine_used == "vectorized"
        assert "native kernels unavailable" in jit_out.run.fallback_reason
    # Bit-identical protocol regardless of which path executed.
    assert jit_out.result == vec_out.result == fast_out.result
    assert jit_out.result.passed
    assert jit_out.times == vec_out.times == fast_out.times
    assert jit_out.stats == vec_out.stats
    assert jit_out.run.iteration_costs == vec_out.run.iteration_costs
    _assert_same_env(jit_env, vec_env)
    _assert_same_env(jit_env, fast_env)
    # The perf target only exists where the native kernels do.
    if native:
        assert ratio >= 10.0, f"jit speculative engine only {ratio:.2f}x"


def test_engine_speed_auto(benchmark, artifact):
    """The auto planner matches explicit vectorized on BDNA n=800.

    ``engine="auto"`` must pick the vectorized engine here (classifier
    accepts, trip count far above the threshold) and its one-off
    planning cost — a classifier pass over the loop body — must be noise
    next to the block execution, so the wall clock stays within
    tolerance of the explicit request.  Everything else is the standard
    parity contract.
    """
    from repro.runtime.profile import kernel_cache

    workload = build_bdna(n=800)
    program = parse(workload.source)
    plan = build_plan(program)
    loop = plan.loop
    before, _after = split_at_loop(program, loop)

    # A warm jit ledger (e.g. from the jit benchmark above) would make
    # the planner prefer `jit` on Numba hosts; this test pins the
    # cold-start decision.
    kernel_cache.clear()

    def speculative(engine: str):
        env = Environment(program, workload.inputs)
        Interpreter(program, env, value_based=False).exec_block(before)
        sim = DoallSimulator(fx80().with_procs(PROCS), ScheduleKind.BLOCK)
        outcome = run_speculative(program, loop, env, plan, sim, engine=engine)
        return outcome, _env_state(env)

    def measure():
        calibration_s = calibrate()
        vec = min_wall(lambda: speculative("vectorized"), rounds=5)
        auto = min_wall(lambda: speculative("auto"), rounds=5)
        return calibration_s, vec, auto

    calibration_s, (vec_wall, (vec_out, vec_env)), (auto_wall, (auto_out, auto_env)) = (
        run_once(benchmark, measure)
    )
    overhead = auto_wall / vec_wall

    write_bench_json(
        "engine_speed",
        calibration_s,
        {"auto_speculative": auto_wall},
        extra={"auto_over_vectorized": overhead},
        merge=True,
    )

    artifact(
        "engine_speed_auto",
        "\n".join(
            [
                f"Auto engine selection on BDNA n=800 "
                f"(speculative protocol, p={PROCS}, best of 5)",
                f"explicit vectorized: {vec_wall * 1000:8.1f} ms wall clock",
                f"auto (planner)     : {auto_wall * 1000:8.1f} ms wall clock "
                f"({overhead:.2f}x)",
                f"planner picked     : {auto_out.run.engine_used} "
                f"({auto_out.run.engine_decision})",
                f"identical simulated times : {vec_out.times == auto_out.times}",
            ]
        ),
    )

    # The planner must pick the whole-block engine and say why.
    assert auto_out.run.engine_used == "vectorized"
    assert "classifier accepted" in auto_out.run.engine_decision
    # Bit-identical simulated protocol either way.
    assert vec_out.result == auto_out.result
    assert vec_out.result.passed
    assert vec_out.times == auto_out.times
    assert vec_out.stats == auto_out.stats
    assert vec_out.run.iteration_costs == auto_out.run.iteration_costs
    _assert_same_env(vec_env, auto_env)
    # Planning overhead is noise: within 25% of the explicit request
    # (the same tolerance the CI regression gate applies).
    assert overhead <= 1.25, f"auto planner overhead {overhead:.2f}x"
