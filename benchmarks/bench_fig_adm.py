"""Experiment F-ADM — ADM/RUN_do20 speedup figure.

Paper shape: privatization only (work vector), near-ideal scaling since
the block writes are disjoint and the work is regular.
"""

from conftest import loop_figure_bench

from repro.workloads.adm import build_adm


def test_fig_adm(benchmark, artifact):
    figure = loop_figure_bench(
        benchmark, artifact, build_adm(), "fig_adm",
        expect_inspector=True, min_speedup_at_8=3.0,
    )
    spec = figure["speculative"].speedups()
    ideal = figure["ideal"].speedups()
    # Regular loop: speculative reaches a healthy fraction of ideal at p=8.
    assert spec[3] > 0.5 * ideal[3]
