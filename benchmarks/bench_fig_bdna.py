"""Experiment F-BDNA — BDNA/ACTFOR_do240 speedup figure.

Paper shape: privatization + reduction; both speculative and
inspector/executor lines exist (the inspector recomputes ``ind``), with
speculative at least matching inspector/executor.
"""

from conftest import loop_figure_bench

from repro.workloads.bdna import build_bdna


def test_fig_bdna(benchmark, artifact):
    figure = loop_figure_bench(
        benchmark, artifact, build_bdna(), "fig_bdna",
        expect_inspector=True, min_speedup_at_8=2.5,
    )
    spec = figure["speculative"].speedups()
    insp = figure["inspector"].speedups()
    assert spec[3] >= insp[3] * 0.95  # p=8: speculative >= inspector
