"""Experiment F-DYFESM — DYFESM/SOLVH speedup figure.

Paper shape: a clean segmented-sum reduction (plus a max reduction)
with regular inner-loop work: one of the best-scaling loops.
"""

from conftest import loop_figure_bench

from repro.workloads.dyfesm import build_dyfesm


def test_fig_dyfesm(benchmark, artifact):
    figure = loop_figure_bench(
        benchmark, artifact, build_dyfesm(), "fig_dyfesm",
        expect_inspector=True, min_speedup_at_8=3.5,
    )
    spec = figure["speculative"].speedups()
    assert spec[5] > spec[3]  # still scaling at p=14
