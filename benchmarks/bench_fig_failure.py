"""Experiment F-FAIL — the cost of failed speculation.

Paper claim: when the test fails, the loop is re-executed serially, so
the total cost is the serial time plus the (fully parallelizable)
speculative attempt and rollback — a bounded slowdown, independent of
how many dependences the loop actually has.

Grown with the DOACROSS recovery tier: a failed loop whose measured min
dependence distance exceeds 1 re-executes as a chunked post/wait
pipeline instead of serially, turning the bounded slowdown into a
recovered speedup — gated here at >= 1.5x over the rollback path at
p=8, bit-identical to the serial oracle.
"""

import numpy as np

from conftest import calibrate, min_wall, run_once, write_bench_json

from repro.evalx.figures import doacross_recovery_series, failure_cost_series
from repro.evalx.render import format_table
from repro.machine.costmodel import fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads.synthetic import build_synthdoacross

FRACTIONS = (0.0, 0.02, 0.05, 0.1, 0.25, 0.5)
RECOVERY_PROCS = (2, 4, 8)
RECOVERY_DISTANCE = 32
RECOVERY_GAIN_TARGET = 1.5


def test_fig_failure_cost(benchmark, artifact):
    points = run_once(
        benchmark,
        lambda: failure_cost_series(fractions=FRACTIONS, n=400, model=fx80()),
    )
    artifact(
        "fig_failure",
        format_table(
            ["dep fraction", "passed", "time / serial"],
            [[p.dep_fraction, p.passed, p.slowdown_vs_serial] for p in points],
            title="Failed-speculation cost vs injected dependence density",
        ),
    )

    # Independent loop: a real speedup.
    assert points[0].passed
    assert points[0].slowdown_vs_serial < 1.0

    failing = points[1:]
    assert all(not p.passed for p in failing)
    slowdowns = [p.slowdown_vs_serial for p in failing]
    # Failure costs serial + bounded overhead...
    assert all(1.0 < s < 2.5 for s in slowdowns)
    # ...and is essentially flat in the dependence density (the attempt
    # is paid once regardless of how wrong the speculation was).
    assert max(slowdowns) - min(slowdowns) < 0.3

def test_fig_failure_doacross_recovery(benchmark, artifact):
    def measure():
        calibration_s = calibrate()
        wall, points = min_wall(
            lambda: doacross_recovery_series(
                procs=RECOVERY_PROCS, n=400, distance=RECOVERY_DISTANCE,
                work=60, model=fx80(),
            ),
            rounds=1,
        )
        return calibration_s, wall, points

    calibration_s, wall, points = run_once(benchmark, measure)
    write_bench_json("doacross_recovery", calibration_s, {"failure_series": wall})
    artifact(
        "fig_failure_recovery",
        format_table(
            ["procs", "rollback", "recovery", "gain", "recovered frac",
             "min dist", "sync waits"],
            [[p.procs, p.rollback_speedup, p.recovery_speedup,
              p.recovery_gain, p.recovered_fraction, p.min_distance,
              p.sync_waits] for p in points],
            title="Failed LRPD run: serial rollback vs pipelined DOACROSS "
            f"recovery (uniform distance {RECOVERY_DISTANCE})",
        ),
    )

    by_procs = {p.procs: p for p in points}

    # The rollback path never recovers a speedup on a failed loop...
    assert all(p.rollback_speedup < 1.0 for p in points)
    # ...while the recovery tier pipelines at the measured distance.
    assert all(p.min_distance == RECOVERY_DISTANCE for p in points)
    assert all(p.sync_waits > 0 for p in points)

    # The acceptance gate: >= 1.5x over rollback-to-serial at p=8, and
    # the pipeline wins back over a third of the serial re-run.
    assert by_procs[8].recovery_gain >= RECOVERY_GAIN_TARGET
    assert by_procs[8].recovered_fraction > 1.0 / 3.0
    assert by_procs[8].recovery_speedup > 1.0

    # The recovered fraction is distance-bound, not processor-bound
    # (the wavefront advances one chunk per post/wait), so it stays
    # roughly flat in p — the whole-run gain is what scales, because
    # the speculative attempt ahead of the recovery parallelizes.
    fractions = [p.recovered_fraction for p in points]
    assert max(fractions) - min(fractions) < 0.1
    assert by_procs[8].recovery_gain > by_procs[2].recovery_gain


def test_fig_failure_recovery_bit_identical():
    """Recovery must be a pure pricing change: the post-loop memory is
    the serial oracle's, element for element, at every configuration."""
    workload = build_synthdoacross(n=400, distance=RECOVERY_DISTANCE, work=60)
    for strip_size in (None, 50):
        runner = LoopRunner(workload.program(), workload.inputs)
        config = RunConfig(model=fx80().with_procs(8), strip_size=strip_size)
        serial = runner.serial_run(config.model)
        report = runner.run(Strategy.DOACROSS_RECOVERY, config)
        assert not report.passed
        assert report.stats["recovered_fraction"] > 0.0
        np.testing.assert_array_equal(
            report.env.arrays["a"], serial.env.arrays["a"],
            err_msg=f"strip_size={strip_size}",
        )
