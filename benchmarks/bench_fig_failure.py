"""Experiment F-FAIL — the cost of failed speculation.

Paper claim: when the test fails, the loop is re-executed serially, so
the total cost is the serial time plus the (fully parallelizable)
speculative attempt and rollback — a bounded slowdown, independent of
how many dependences the loop actually has.
"""

from conftest import run_once

from repro.evalx.figures import failure_cost_series
from repro.evalx.render import format_table
from repro.machine.costmodel import fx80

FRACTIONS = (0.0, 0.02, 0.05, 0.1, 0.25, 0.5)


def test_fig_failure_cost(benchmark, artifact):
    points = run_once(
        benchmark,
        lambda: failure_cost_series(fractions=FRACTIONS, n=400, model=fx80()),
    )
    artifact(
        "fig_failure",
        format_table(
            ["dep fraction", "passed", "time / serial"],
            [[p.dep_fraction, p.passed, p.slowdown_vs_serial] for p in points],
            title="Failed-speculation cost vs injected dependence density",
        ),
    )

    # Independent loop: a real speedup.
    assert points[0].passed
    assert points[0].slowdown_vs_serial < 1.0

    failing = points[1:]
    assert all(not p.passed for p in failing)
    slowdowns = [p.slowdown_vs_serial for p in failing]
    # Failure costs serial + bounded overhead...
    assert all(1.0 < s < 2.5 for s in slowdowns)
    # ...and is essentially flat in the dependence density (the attempt
    # is paid once regardless of how wrong the speculation was).
    assert max(slowdowns) - min(slowdowns) < 0.3
