"""Experiment F-IVE — speculative vs inspector/executor trade-off.

Paper discussion (§V): speculative execution marks while doing useful
work, so when the test passes it traverses the loop once; the
inspector/executor traverses twice (address slice + executor) but never
needs checkpoint/rollback.  The crossover depends on how much of the
body is address computation:

* a loop that is almost all address computation (thin body) makes the
  inspector nearly as expensive as the loop itself → speculation wins
  clearly;
* a loop with a heavy value computation but a thin address slice makes
  the inspector cheap → the gap narrows, and on failures the inspector
  side wins (no rollback, no wasted marked execution).
"""

import numpy as np

from conftest import run_once

from repro.evalx.render import format_table
from repro.machine.costmodel import fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy

THIN_BODY = """
program thin
  integer i, j, n
  integer idx(400), jmp(400)
  real a(400)
  do i = 1, n
    j = jmp(idx(i))
    a(j) = a(j) + 1.0
  end do
end
"""

HEAVY_BODY = """
program heavy
  integer i, n
  integer idx(400)
  real a(400), v(400), t
  do i = 1, n
    t = v(i) * v(i) + sqrt(abs(v(i)) + 1.0) + exp(0.0 - v(i) * v(i))
    a(idx(i)) = t * 0.5 + sin(v(i)) * cos(v(i))
  end do
end
"""


def _compare(source, inputs):
    runner = LoopRunner(__import__("repro.dsl", fromlist=["parse"]).parse(source), inputs)
    config = RunConfig(model=fx80())
    spec = runner.run(Strategy.SPECULATIVE, config)
    insp = runner.run(Strategy.INSPECTOR, config)
    return runner, spec, insp


def test_fig_inspector_vs_speculative(benchmark, artifact):
    rng = np.random.default_rng(0)
    n = 400
    perm = rng.permutation(n) + 1
    thin_inputs = {
        "n": n, "idx": rng.permutation(n) + 1,
        "jmp": perm, "a": rng.normal(size=n),
    }
    heavy_inputs = {
        "n": n, "idx": rng.permutation(n) + 1, "v": rng.normal(size=n),
    }

    def run_all():
        _runner_t, spec_t, insp_t = _compare(THIN_BODY, thin_inputs)
        _runner_h, spec_h, insp_h = _compare(HEAVY_BODY, heavy_inputs)
        return (spec_t, insp_t, spec_h, insp_h)

    spec_t, insp_t, spec_h, insp_h = run_once(benchmark, run_all)

    artifact(
        "fig_inspector_vs_spec",
        format_table(
            ["loop", "speculative speedup", "inspector speedup",
             "inspector/body time ratio"],
            [
                ["thin (all addresses)", spec_t.speedup, insp_t.speedup,
                 insp_t.times.inspector / insp_t.times.body],
                ["heavy (thin address slice)", spec_h.speedup, insp_h.speedup,
                 insp_h.times.inspector / insp_h.times.body],
            ],
            title="Speculative vs inspector/executor (p=8)",
        ),
    )

    assert spec_t.passed and insp_t.passed and spec_h.passed and insp_h.passed
    # Thin body: the inspector nearly repeats the loop -> speculation wins big.
    assert spec_t.speedup > insp_t.speedup * 1.1
    # Heavy body with a thin slice: the inspector is cheap relative to the
    # executor body...
    assert insp_h.times.inspector < 0.5 * insp_h.times.body
    # ...so the two strategies are close.
    assert insp_h.speedup > 0.75 * spec_h.speedup
