"""Experiment F-MDG — MDG/INTERF_do1000 speedup figure.

Paper shape: one of the strongest loops — heavy per-iteration arithmetic
under a cutoff conditional amortizes the marking, with array and scalar
reductions merged in parallel.
"""

from conftest import loop_figure_bench

from repro.workloads.mdg import build_mdg


def test_fig_mdg(benchmark, artifact):
    figure = loop_figure_bench(
        benchmark, artifact, build_mdg(), "fig_mdg",
        expect_inspector=True, min_speedup_at_8=3.5,
    )
    # The loop keeps scaling on the larger machine (p=14 > p=8).
    spec = figure["speculative"].speedups()
    assert spec[5] > spec[3]
