"""Experiment F-OCEAN — OCEAN/FTRVMT_do109: small loop + schedule reuse.

Paper shape: the loop's parallelism depends on run-time offsets, the
body is tiny (so the test overhead matters), and the loop executes
thousands of times — schedule reuse amortizes the test to (almost)
nothing after the first invocation.
"""

from conftest import loop_figure_bench, run_once

from repro.evalx.figures import schedule_reuse_series
from repro.evalx.render import format_table
from repro.machine.costmodel import fx80
from repro.workloads.ocean import build_ocean


def test_fig_ocean(benchmark, artifact):
    figure = loop_figure_bench(
        benchmark, artifact, build_ocean(), "fig_ocean",
        expect_inspector=True, min_speedup_at_8=1.5,
    )
    # Small body: further from ideal than the heavy loops.
    spec = figure["speculative"].speedups()
    ideal = figure["ideal"].speedups()
    assert spec[3] < 0.8 * ideal[3]


def test_fig_ocean_schedule_reuse(benchmark, artifact):
    without, with_cache = run_once(
        benchmark, lambda: schedule_reuse_series(invocations=8, model=fx80())
    )
    rows = [
        [p.invocation, a.time, b.time, b.reused]
        for p, a, b in zip(without, without, with_cache)
    ]
    artifact(
        "fig_ocean_reuse",
        format_table(
            ["invocation", "no reuse", "with reuse", "reused?"],
            rows,
            title="OCEAN repeated invocation: schedule reuse",
        ),
    )
    # First invocation pays the test either way.
    assert not with_cache[0].reused
    # Every later invocation reuses and runs strictly faster.
    for before, after in zip(without[1:], with_cache[1:]):
        assert after.reused
        assert after.time < before.time
    # The steady-state saving is substantial (no marking, no analysis).
    assert with_cache[-1].time < 0.8 * without[-1].time
