"""Experiment F-OVH — overhead decomposition of the speculative runs.

The paper discusses where the run-time framework's time goes: the
dominant overhead is the marking inside the loop body, with the
checkpoint, shadow initialization, analysis and merge phases amortized
(`O(s/p + log p)`).  This bench prints, per PERFECT loop at p=8, the
phase decomposition as a fraction of total time and asserts the claim.
"""

from conftest import run_once

from repro.evalx.render import format_table
from repro.machine.costmodel import fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads import PAPER_LOOPS


def test_fig_overhead_decomposition(benchmark, artifact):
    def collect():
        rows = []
        for name, builder in PAPER_LOOPS.items():
            workload = builder()
            runner = LoopRunner(workload.program(), workload.inputs)
            report = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
            serial = runner.serial_run(fx80())
            marks = report.stats.get("marks", 0.0)
            marking_cycles = marks * fx80().mark
            marked_work = serial.loop_time + marking_cycles  # total, all procs
            rows.append(
                {
                    "loop": name,
                    "total": report.loop_time,
                    "body": report.times.body,
                    "marking_share": marking_cycles / marked_work,
                    "fixed": report.times.overhead(),
                    # checkpoint scoped to the plan's written arrays only.
                    "ckpt_elements": report.stats.get("checkpoint_elements", 0.0),
                    "report": report,
                }
            )
        return rows

    rows = run_once(benchmark, collect)
    artifact(
        "fig_overheads",
        format_table(
            ["loop", "body %", "marking % of marked work", "fixed phases %",
             "ckpt elements"],
            [
                [
                    r["loop"],
                    100.0 * r["body"] / r["total"],
                    100.0 * r["marking_share"],
                    100.0 * r["fixed"] / r["total"],
                    r["ckpt_elements"],
                ]
                for r in rows
            ],
            title="Speculative overhead decomposition at p=8 (fx80)",
        ),
    )

    heavy = {
        "TRACK_NLFILT_do300", "BDNA_ACTFOR_do240", "MDG_INTERF_do1000",
        "ADM_RUN_do20", "DYFESM_SOLVH_do20",
    }
    for r in rows:
        # Marking is a real but bounded fraction of the marked work.
        assert 0.05 < r["marking_share"] < 0.85, (r["loop"], r["marking_share"])
        # The fixed phases stay a minority share of the total; on the
        # heavy loops the parallel body clearly dominates them (OCEAN's
        # and SPICE's small bodies leave fixed costs more visible, which
        # is the paper's small-loop caveat).
        assert r["fixed"] / r["total"] < 0.6, r["loop"]
        if r["loop"] in heavy:
            assert r["body"] > r["fixed"], r["loop"]
