"""Experiment F-PARTIAL — strip-mined speculation on a partially
parallel loop.

The all-or-nothing protocol fails the whole loop on one serial
dependence band and pays serial-plus-attempt (speedup ≤ 1).  The
strip-mined pipeline tests and commits one strip at a time, so only the
strip(s) covering the band roll back and the rest of the iteration
space keeps its parallel speedup — the case the R-LRPD follow-on work
built on the paper's protocol.
"""

from conftest import run_once

from repro.evalx.figures import partial_parallel_series
from repro.evalx.render import format_table
from repro.machine.costmodel import fx80

PROCS = (2, 4, 8, 14)


def test_fig_partial_parallel(benchmark, artifact):
    points = run_once(
        benchmark,
        lambda: partial_parallel_series(
            procs=PROCS, n=400, band_length=24, work=60,
            strip_size=50, model=fx80(),
        ),
    )
    artifact(
        "fig_partial",
        format_table(
            ["procs", "unstripped", "stripped", "strips", "rolled back"],
            [[p.procs, p.unstripped_speedup, p.stripped_speedup,
              p.strips, p.strips_failed] for p in points],
            title="Partially parallel loop: all-or-nothing vs strip-mined",
        ),
    )

    by_procs = {p.procs: p for p in points}

    # All-or-nothing speculation degenerates to serial-plus-overhead on
    # a loop with any genuine dependence: never a speedup.
    assert all(p.unstripped_speedup <= 1.0 for p in points)

    # Strip-mining keeps the parallel regions' speedup: > 1.5x at p=8.
    assert by_procs[8].stripped_speedup > 1.5
    assert by_procs[8].stripped_speedup > by_procs[8].unstripped_speedup

    # The band is localized: only a bounded number of strips roll back
    # (the band spans at most 2 strips of 50 around the midpoint).
    assert all(1 <= p.strips_failed <= 2 for p in points)
    assert all(p.strips == 8 for p in points)

    # More processors help the stripped pipeline (parallel regions
    # scale), while the unstripped run stays pinned at ≤ 1.
    assert by_procs[8].stripped_speedup > by_procs[2].stripped_speedup
