"""Experiment F-PARTIAL — strip-mined speculation on a partially
parallel loop.

The all-or-nothing protocol fails the whole loop on one serial
dependence band and pays serial-plus-attempt (speedup ≤ 1).  The
strip-mined pipeline tests and commits one strip at a time, so only the
strip(s) covering the band roll back and the rest of the iteration
space keeps its parallel speedup — the case the R-LRPD follow-on work
built on the paper's protocol.
"""

from conftest import run_once

from repro.evalx.figures import (
    doacross_recovery_series,
    partial_parallel_series,
    recovery_veto_demo,
)
from repro.evalx.render import format_table
from repro.machine.costmodel import fx80

PROCS = (2, 4, 8, 14)
RECOVERY_PROCS = (2, 4, 8)


def test_fig_partial_parallel(benchmark, artifact):
    points = run_once(
        benchmark,
        lambda: partial_parallel_series(
            procs=PROCS, n=400, band_length=24, work=60,
            strip_size=50, model=fx80(),
        ),
    )
    artifact(
        "fig_partial",
        format_table(
            ["procs", "unstripped", "stripped", "strips", "rolled back"],
            [[p.procs, p.unstripped_speedup, p.stripped_speedup,
              p.strips, p.strips_failed] for p in points],
            title="Partially parallel loop: all-or-nothing vs strip-mined",
        ),
    )

    by_procs = {p.procs: p for p in points}

    # All-or-nothing speculation degenerates to serial-plus-overhead on
    # a loop with any genuine dependence: never a speedup.
    assert all(p.unstripped_speedup <= 1.0 for p in points)

    # Strip-mining keeps the parallel regions' speedup: > 1.5x at p=8.
    assert by_procs[8].stripped_speedup > 1.5
    assert by_procs[8].stripped_speedup > by_procs[8].unstripped_speedup

    # The band is localized: only a bounded number of strips roll back
    # (the band spans at most 2 strips of 50 around the midpoint).
    assert all(1 <= p.strips_failed <= 2 for p in points)
    assert all(p.strips == 8 for p in points)

    # More processors help the stripped pipeline (parallel regions
    # scale), while the unstripped run stays pinned at ≤ 1.
    assert by_procs[8].stripped_speedup > by_procs[2].stripped_speedup

def test_fig_partial_recovered_fraction(benchmark, artifact):
    """Strip-mined DOACROSS recovery: every failed strip of a uniform-
    distance loop re-executes as its own pipeline, and the recovered
    fraction of the serial re-run survives strip-mining."""
    points = run_once(
        benchmark,
        lambda: doacross_recovery_series(
            procs=RECOVERY_PROCS, n=400, distance=32, work=60,
            strip_size=50, model=fx80(),
        ),
    )
    artifact(
        "fig_partial_recovery",
        format_table(
            ["procs", "rollback", "recovery", "recovered frac",
             "strips recovered"],
            [[p.procs, p.rollback_speedup, p.recovery_speedup,
              p.recovered_fraction, p.strips_recovered] for p in points],
            title="Strip-mined DOACROSS recovery (distance 32, strips of 50)",
        ),
    )

    by_procs = {p.procs: p for p in points}

    # All 8 strips fail (the dependence is uniform) and all 8 recover.
    assert all(p.strips_recovered == 8 for p in points)
    # The pipelined re-execution wins back a useful fraction per strip.
    assert all(p.recovered_fraction > 0.25 for p in points)
    assert by_procs[8].recovery_gain > 1.0
    assert by_procs[8].recovery_speedup > by_procs[8].rollback_speedup


def test_fig_partial_recovery_veto(artifact):
    """The deterministic veto: a distance-1 serial band refuses the
    pipeline with the measured evidence and rolls back serially."""
    demo = recovery_veto_demo(procs=8, n=240, band_length=24, model=fx80())
    artifact(
        "fig_partial_recovery_veto",
        "\n".join([
            "DOACROSS recovery veto demo (distance-1 band, p=8)",
            f"vetoed             : {demo.vetoed}",
            f"recovered fraction : {demo.recovered_fraction}",
            f"reason             : {demo.reason}",
        ]),
    )
    assert demo.vetoed
    assert demo.recovered_fraction == 0.0
    assert "min dependence distance 1" in demo.reason
