"""Experiment F-SCALE — speedup vs problem size.

Paper §V: "our results scale with the number of processors and the data
size and thus can be extrapolated for massively parallel processors."
The fixed framework phases (checkpoint, shadow init, analysis, barriers)
amortize as the loop grows, so the speculative speedup at a fixed
processor count must increase with n and approach the marked-body bound.
"""

from conftest import run_once

from repro.evalx.render import format_table
from repro.machine.costmodel import fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads.bdna import build_bdna

SIZES = (75, 150, 300, 600)


def test_fig_size_scaling(benchmark, artifact):
    def sweep():
        points = []
        for n in SIZES:
            workload = build_bdna(n=n)
            runner = LoopRunner(workload.program(), workload.inputs)
            report = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
            points.append((n, report.speedup, report.times.overhead() / report.loop_time))
        return points

    points = run_once(benchmark, sweep)
    artifact(
        "fig_scaling",
        format_table(
            ["n (atoms)", "speedup at p=8", "fixed-phase share"],
            [[n, s, share] for n, s, share in points],
            title="BDNA speculative speedup vs problem size (p=8)",
        ),
    )

    speedups = [s for _n, s, _share in points]
    shares = [share for _n, _s, share in points]
    # Speedup grows monotonically with the data size...
    assert all(a < b for a, b in zip(speedups, speedups[1:]))
    # ...because the fixed phases amortize away.
    assert all(a > b for a, b in zip(shares, shares[1:]))
    assert speedups[-1] > 1.3 * speedups[0]
