"""Experiment F-SPICE — SPICE/LOAD loop 40 speedup figure.

Paper shape: reductions recognized only through forward substitution
(private temporaries + mode-dependent control flow); the serial linked-
list traversal is charged to the loop (the while-loop technique of
[33]), capping the speedup well below the other loops — the paper calls
the SPICE speedup "modest" for exactly this reason.
"""

from conftest import loop_figure_bench

from repro.workloads.spice import build_spice


def test_fig_spice(benchmark, artifact):
    figure = loop_figure_bench(
        benchmark, artifact, build_spice(), "fig_spice",
        include_setup=True,  # charge the serial traversal (Amdahl part)
        expect_inspector=True, min_speedup_at_8=1.3,
    )
    spec = figure["speculative"].speedups()
    ideal = figure["ideal"].speedups()
    # Amdahl: even the ideal line saturates; p=16 gains little over p=8.
    assert ideal[-1] < 1.6 * ideal[3]
    assert spec[3] < 4.0
