"""Experiment F-TRACK — TRACK/NLFILT_do300 speedup figure.

Paper shape: privatized doall, speculative mode only (no inspector line
— the addresses are computed by the loop itself), good speedups because
the marking overhead is amortized over real per-iteration work.
"""

from conftest import loop_figure_bench

from repro.workloads.track import build_track


def test_fig_track(benchmark, artifact):
    figure = loop_figure_bench(
        benchmark, artifact, build_track(), "fig_track",
        expect_inspector=False, min_speedup_at_8=2.5,
    )
    # Speculative-only is the TRACK signature.
    assert set(figure) == {"speculative", "ideal"}
