"""Frontend corpus gate — lift rate and parity over real Python loops.

The python frontend's acceptance bar, measured: every loop in the
:mod:`repro.workloads.pycorpus` corpus is lifted (or rejected with a
named reason), classified, run through the full LRPD machinery and
compared bit-for-bit against executing the original Python function on
identical inputs.  The gate fails unless

* at least 12 loops lift, and together they span all five construct
  classes the frontend claims to handle (subscripted subscripts,
  data-dependent ifs, scalar temporaries, inner loops, reduction
  idioms);
* every lifted loop is bit-identical to native Python at ``p=1`` —
  including the loops the LRPD test rightly fails (serial fallback) and
  the DOACROSS-recovery loop;
* every rejected loop carries a stable kebab-case reason.

``BENCH_lift_corpus.json`` stores the corpus wall time plus the three
rate keys (``lift_rate``, ``lrpd_pass_rate``, ``transform_rate``) whose
*presence* CI requires via ``check_regression.py --require`` — a corpus
that silently stopped emitting its rates would otherwise pass by
omission.  Rate entries are stored pre-multiplied by the calibration so
their normalized ratio IS the rate (machine-independent by
construction).
"""

from __future__ import annotations

import re

from conftest import calibrate, min_wall, run_once, write_bench_json
from repro.evalx.figures import lift_corpus_series
from repro.evalx.render import format_table
from repro.workloads.pycorpus import CONSTRUCTS, CORPUS

MIN_LIFTED = 12
#: named reject reasons are stable kebab-case identifiers.
REASON_SHAPE = re.compile(r"^[a-z][a-z0-9]*(?:-[a-z0-9]+)*$")


def test_lift_corpus_rates(benchmark, artifact):
    def measure():
        calibration_s = calibrate()
        wall, points = min_wall(lift_corpus_series)
        return calibration_s, wall, points

    calibration_s, wall, points = run_once(benchmark, measure)

    assert len(points) == len(CORPUS), "corpus loop dropped from the series"
    lifted = [p for p in points if p.lifted]
    rejected = [p for p in points if not p.lifted]

    # Acceptance bar: >=12 lifts spanning all five construct classes.
    assert len(lifted) >= MIN_LIFTED, (
        f"only {len(lifted)} corpus loops lifted (need {MIN_LIFTED})"
    )
    covered = {c for p in lifted for c in p.constructs}
    assert covered == set(CONSTRUCTS), (
        f"lifted corpus does not span all construct classes: "
        f"missing {sorted(set(CONSTRUCTS) - covered)}"
    )

    # Every lifted loop matches native Python bit-for-bit at p=1 —
    # the LRPD-failing loops included (their serial fallback env is
    # what gets compared).
    for p in lifted:
        assert p.parity, f"{p.name}: lifted run diverged from native Python"
        expect = CORPUS[p.name].expect_pass
        if expect is not None:
            assert p.passed is expect, (
                f"{p.name}: LRPD verdict {p.passed}, expected {expect}"
            )

    # Every reject names its reason, and the reason the corpus pins.
    for p in rejected:
        assert p.reason and REASON_SHAPE.match(p.reason), (
            f"{p.name}: reject without a stable named reason ({p.reason!r})"
        )
        assert p.reason == CORPUS[p.name].reject_reason, (
            f"{p.name}: reason {p.reason!r} != "
            f"expected {CORPUS[p.name].reject_reason!r}"
        )

    lift_rate = len(lifted) / len(points)
    passed = [p for p in lifted if p.passed]
    pass_rate = len(passed) / len(lifted)
    transformed = [p for p in lifted if p.transforms]
    transform_rate = len(transformed) / len(lifted)

    rows = [
        (
            p.name,
            "/".join(c.split("-")[0] for c in p.constructs),
            "yes" if p.lifted else f"no ({p.reason})",
            {True: "pass", False: "fail", None: "-"}[p.passed],
            ",".join(p.transforms) or "-",
            {True: "bit-identical", False: "DIVERGED", None: "-"}[p.parity],
        )
        for p in points
    ]
    table = format_table(
        ("loop", "constructs", "lifted", "lrpd", "transforms", "parity"),
        rows,
        title=(
            f"Python-frontend corpus: {len(lifted)}/{len(points)} lifted "
            f"(rate {lift_rate:.2f}), LRPD pass rate {pass_rate:.2f}, "
            f"transform rate {transform_rate:.2f}"
        ),
    )
    artifact("lift_corpus", table)

    # Rates ride in entries pre-multiplied by the calibration so the
    # stored normalized ratio is the rate itself; --require gates their
    # presence and the asserts above gate their floor.
    write_bench_json(
        "lift_corpus",
        calibration_s,
        {
            "corpus_wall": wall,
            "lift_rate": lift_rate * calibration_s,
            "lrpd_pass_rate": pass_rate * calibration_s,
            "transform_rate": transform_rate * calibration_s,
        },
        extra={
            "loops_total": len(points),
            "loops_lifted": len(lifted),
            "construct_classes": sorted(covered),
        },
    )
