"""Infrastructure benchmark — the multiprocess backend's measured speedup.

Not a paper artifact: measures real wall clock of the full speculative
protocol under ``engine="parallel"`` at increasing worker counts against
the compiled single-process engine, on BDNA and MDG.  Every parallel run
is parity-checked against the compiled reference (same LRPD verdict and
shadow contents, same simulated times, same memory), so the curve can
only be bought with genuine parallelism, never with divergence.

Writes ``BENCH_parallel.json`` (calibration-normalized wall times) for
the CI regression gate.  The >1.5x speedup acceptance assertion is gated
on the host actually having >= 4 usable cores — a single-core runner
still produces the JSON and the parity checks, it just cannot
demonstrate multiprocess speedup.
"""

import os

import numpy as np

from conftest import calibrate, min_wall, run_once, write_bench_json
from repro.analysis.instrument import build_plan
from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter, split_at_loop
from repro.machine.costmodel import fx80
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.runtime.speculative import run_speculative
from repro.workloads.bdna import build_bdna
from repro.workloads.mdg import build_mdg

ROUNDS = 3
PROCS = 8
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 1.5


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _assert_parity(reference, candidate) -> None:
    """The parallel run must be bit-identical to the compiled one."""
    ref_out, ref_env = reference
    out, env = candidate
    assert out.result == ref_out.result
    assert out.times == ref_out.times
    assert out.stats == ref_out.stats
    assert env[1] == ref_env[1]  # scalars
    for name, arr in ref_env[0].items():
        assert np.array_equal(arr, env[0][name]), name
    for name, shadow in ref_out.run.marker.shadows.items():
        other = out.run.marker.shadows[name]
        assert shadow.tw == other.tw and shadow.tm == other.tm, name
        for fieldname in ("w", "r", "np_", "nx", "redux_touched", "multi_w"):
            assert np.array_equal(
                getattr(shadow, fieldname), getattr(other, fieldname)
            ), f"{name}.{fieldname}"


def _speculative_runner(workload):
    program = parse(workload.source)
    plan = build_plan(program)
    before, _after = split_at_loop(program, plan.loop)

    def run(engine: str, workers: int | None = None, backend: str = "fork"):
        env = Environment(program, workload.inputs)
        Interpreter(program, env, value_based=False).exec_block(before)
        sim = DoallSimulator(fx80().with_procs(PROCS), ScheduleKind.BLOCK)
        outcome = run_speculative(
            program, plan.loop, env, plan, sim,
            engine=engine, workers=workers, backend=backend,
        )
        state = (
            {name: arr.copy() for name, arr in env.arrays.items()},
            dict(env.scalars),
        )
        return outcome, state

    return run


def test_parallel_backend_speedup(benchmark, artifact):
    workloads = {
        "bdna": build_bdna(n=800),
        "mdg": build_mdg(n=250),
    }
    cores = usable_cores()

    def measure():
        calibration_s = calibrate()
        entries: dict[str, float] = {}
        speedups: dict[str, float] = {}
        lines = [
            f"Multiprocess speculative backend (p={PROCS} simulated, "
            f"{cores} usable cores, best of {ROUNDS})"
        ]
        for short, workload in workloads.items():
            run = _speculative_runner(workload)
            compiled_wall, reference = min_wall(lambda: run("compiled"))
            assert reference[0].result.passed
            entries[f"{short}_compiled"] = compiled_wall
            lines.append(
                f"{short}: compiled {compiled_wall * 1000:8.1f} ms"
            )
            for workers in WORKER_COUNTS:
                wall, candidate = min_wall(
                    lambda w=workers: run("parallel", workers=w)
                )
                _assert_parity(reference, candidate)
                entries[f"{short}_parallel_w{workers}"] = wall
                speedup = compiled_wall / wall
                speedups[f"{short}_w{workers}"] = speedup
                lines.append(
                    f"{short}: parallel w={workers} {wall * 1000:8.1f} ms "
                    f"({speedup:.2f}x, bit-identical)"
                )
        return calibration_s, entries, speedups, lines

    calibration_s, entries, speedups, lines = run_once(benchmark, measure)

    write_bench_json(
        "parallel",
        calibration_s,
        entries,
        extra={"speedups": speedups, "cores": cores, "procs": PROCS},
    )
    artifact("parallel_backend", "\n".join(lines))

    # The measured-speedup acceptance target needs real cores to show;
    # single-core runners still exercised every parity assertion above.
    if cores >= 4:
        speedup = speedups["bdna_w4"]
        assert speedup > SPEEDUP_TARGET, (
            f"parallel backend only {speedup:.2f}x over compiled on BDNA "
            f"with 4 workers ({cores} cores available)"
        )


def test_thread_backend_small_trip(benchmark, artifact):
    """No-fork thread workers beat fork where startup dominates.

    The thread pool pays neither the process spawns nor the
    shared-memory arena; on a small-trip loop those fixed costs dwarf
    the work, so ``--backend threads`` at w=4 must come in under fork at
    w=4 (asserted on hosts with >= 4 usable cores; fewer cores only
    skew the comparison *against* threads, but stay conservative and
    match the fork gate).  Both backends are parity-checked against the
    compiled reference, and the measurements merge into
    ``BENCH_parallel.json`` for the regression gate.
    """
    workload = build_bdna(n=120)
    run = _speculative_runner(workload)
    cores = usable_cores()

    def measure():
        calibration_s = calibrate()
        compiled_wall, reference = min_wall(lambda: run("compiled"))
        fork_wall, fork = min_wall(lambda: run("parallel", workers=4))
        threads_wall, threads = min_wall(
            lambda: run("parallel", workers=4, backend="threads")
        )
        return calibration_s, compiled_wall, reference, fork_wall, fork, \
            threads_wall, threads

    calibration_s, compiled_wall, reference, fork_wall, fork, threads_wall, \
        threads = run_once(benchmark, measure)

    assert reference[0].result.passed
    _assert_parity(reference, fork)
    _assert_parity(reference, threads)

    write_bench_json(
        "parallel",
        calibration_s,
        {
            "bdna_small_compiled": compiled_wall,
            "bdna_small_fork_w4": fork_wall,
            "bdna_small_threads_w4": threads_wall,
        },
        extra=None,
        merge=True,
    )
    artifact(
        "thread_backend_small_trip",
        "\n".join(
            [
                f"Backends on BDNA n=120 (small trip, w=4, "
                f"{cores} usable cores, best of {ROUNDS})",
                f"compiled (1 proc): {compiled_wall * 1000:8.1f} ms",
                f"fork    w=4      : {fork_wall * 1000:8.1f} ms",
                f"threads w=4      : {threads_wall * 1000:8.1f} ms "
                f"({fork_wall / threads_wall:.2f}x over fork, bit-identical)",
            ]
        ),
    )

    if cores >= 4:
        assert threads_wall < fork_wall, (
            f"thread backend ({threads_wall * 1000:.1f} ms) did not beat "
            f"fork ({fork_wall * 1000:.1f} ms) on a small-trip loop"
        )
