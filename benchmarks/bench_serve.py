"""Infrastructure benchmark — the serve daemon's measured throughput.

Not a paper artifact: boots a real ``repro serve`` daemon subprocess and
drives it with 1, 8 and 64 concurrent socket clients, measuring jobs/sec
and per-request p50/p95 latency, cold (``schedule_cache=False`` — every
job pays the full LRPD test) versus profile-warmed (the fleet store
already holds the verdicts, so repeats reuse the schedule and skip the
test).  The warmed-vs-cold ratio is the service's reason to exist: the
acceptance gate asserts warmed single-client throughput at >= 2x cold.

Writes ``BENCH_serve.json`` for the CI regression gate.  The gate treats
higher normalized values as regressions, so the ``*_jobs_per_sec``
entries store *seconds per job* (inverse throughput — lower is better);
the human-readable jobs/sec figures live in the payload's ``extra``.
"""

from __future__ import annotations

import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time

from conftest import calibrate, run_once, write_bench_json
from repro.service.client import ReproClient
from repro.service.protocol import JobRequest

CONCURRENCIES = (1, 8, 64)
#: job grid: distinct processor counts so a batch is a mix of jobs, not
#: sixty-four copies of one (identical in-flight jobs would coalesce
#: into a single execution and fake the throughput number).
PROC_GRID = (2, 4, 8)
WORKLOAD = "synthpass"
ENGINE = "compiled"
WARM_SPEEDUP_TARGET = 2.0
STARTUP_DEADLINE_S = 30.0


def start_daemon(socket_path: str, *, queue_size: int = 128):
    """Boot ``repro serve`` as a subprocess and wait until it answers."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path, "--queue-size", str(queue_size),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + STARTUP_DEADLINE_S
    while time.monotonic() < deadline:
        if os.path.exists(socket_path):
            try:
                with ReproClient(socket_path, timeout=5.0) as client:
                    client.ping()
                return proc
            except Exception:
                pass
        if proc.poll() is not None:
            raise RuntimeError(f"daemon died at startup (rc={proc.returncode})")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("daemon did not come up in time")


def _jobs(count: int, *, schedule_cache: bool) -> list[JobRequest]:
    """``count`` jobs round-robining the processor grid."""
    return [
        JobRequest(
            workload=WORKLOAD,
            engine=ENGINE,
            procs=PROC_GRID[i % len(PROC_GRID)],
            schedule_cache=schedule_cache,
        )
        for i in range(count)
    ]


def run_batch(
    socket_path: str, concurrency: int, jobs: list[JobRequest]
) -> dict[str, float]:
    """Drive ``jobs`` through ``concurrency`` client connections.

    Each worker thread owns one socket connection and submits its share
    sequentially — the unit under load is the daemon, not the clients.
    Returns jobs/sec plus client-observed p50/p95 latency in seconds.
    """
    shares = [jobs[i::concurrency] for i in range(concurrency)]
    latencies: list[float] = []
    failures: list[BaseException] = []
    lock = threading.Lock()

    def worker(share: list[JobRequest]) -> None:
        try:
            with ReproClient(socket_path, timeout=120.0) as client:
                mine = []
                for job in share:
                    begin = time.perf_counter()
                    report = client.submit(job)
                    mine.append(time.perf_counter() - begin)
                    assert report.passed, "benchmark job unexpectedly failed"
            with lock:
                latencies.extend(mine)
        except BaseException as exc:  # noqa: BLE001 - reported by the caller
            with lock:
                failures.append(exc)

    threads = [
        threading.Thread(target=worker, args=(share,))
        for share in shares if share
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begin
    if failures:
        raise failures[0]
    assert len(latencies) == len(jobs)
    ordered = sorted(latencies)
    return {
        "jobs_per_sec": len(jobs) / wall,
        "job_s": wall / len(jobs),
        "p50_s": statistics.median(ordered),
        "p95_s": ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))],
    }


def test_serve_throughput(benchmark, artifact):
    tmp = tempfile.mkdtemp(prefix="repro-bench-", dir="/tmp")
    socket_path = os.path.join(tmp, "serve.sock")

    def measure():
        calibration_s = calibrate()
        proc = start_daemon(socket_path)
        try:
            cold: dict[int, dict[str, float]] = {}
            warm: dict[int, dict[str, float]] = {}
            for concurrency in CONCURRENCIES:
                count = max(2 * concurrency, 24)
                cold[concurrency] = run_batch(
                    socket_path, concurrency,
                    _jobs(count, schedule_cache=False),
                )
            # Warm the fleet store: one pass over the job grid records
            # every (loop, configuration) verdict...
            run_batch(socket_path, 1, _jobs(len(PROC_GRID), schedule_cache=True))
            # ...so these batches reuse schedules and skip the test.
            for concurrency in CONCURRENCIES:
                count = max(2 * concurrency, 24)
                warm[concurrency] = run_batch(
                    socket_path, concurrency,
                    _jobs(count, schedule_cache=True),
                )
            with ReproClient(socket_path, timeout=10.0) as client:
                stats = client.stats()
                client.shutdown_server()
            rc = proc.wait(timeout=30.0)
            assert rc == 0, f"daemon exited {rc}"
        finally:
            if proc.poll() is None:
                proc.kill()
        return calibration_s, cold, warm, stats

    calibration_s, cold, warm, stats = run_once(benchmark, measure)

    lines = [
        f"repro serve throughput ({WORKLOAD}/{ENGINE}, procs grid "
        f"{PROC_GRID}, daemon stats: executed={stats['executed']} "
        f"coalesced={stats['coalesced']})"
    ]
    extra_rates: dict[str, float] = {}
    for label, results in (("cold", cold), ("warm", warm)):
        for concurrency, r in results.items():
            lines.append(
                f"{label} c={concurrency:<3d}: {r['jobs_per_sec']:7.1f} "
                f"jobs/s  p50 {r['p50_s'] * 1000:7.2f} ms  "
                f"p95 {r['p95_s'] * 1000:7.2f} ms"
            )
            extra_rates[f"{label}_c{concurrency}_jobs_per_sec"] = \
                r["jobs_per_sec"]
            extra_rates[f"{label}_c{concurrency}_p95_ms"] = r["p95_s"] * 1000
    warm_speedup = warm[1]["jobs_per_sec"] / cold[1]["jobs_per_sec"]
    lines.append(f"warm/cold throughput at c=1: {warm_speedup:.2f}x")
    artifact("serve_throughput", "\n".join(lines))

    write_bench_json(
        "serve",
        calibration_s,
        {
            # seconds per job (inverse throughput): lower is better,
            # which is the direction the regression gate understands.
            "cold_jobs_per_sec": cold[1]["job_s"],
            "warm_jobs_per_sec": warm[1]["job_s"],
            "warm_p95_c64": warm[64]["p95_s"],
        },
        extra={
            "rates": extra_rates,
            "warm_speedup_c1": warm_speedup,
            "daemon_stats": stats,
        },
    )

    # The acceptance gate: profile-warmed throughput must at least
    # double cold throughput (measured single-client, where in-flight
    # coalescing cannot flatter either side).
    assert warm_speedup >= WARM_SPEEDUP_TARGET, (
        f"warmed daemon only {warm_speedup:.2f}x cold "
        f"({warm[1]['jobs_per_sec']:.1f} vs {cold[1]['jobs_per_sec']:.1f} "
        f"jobs/s)"
    )
