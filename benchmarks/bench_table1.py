"""Experiment T1 — Table I: the seven PERFECT loops under the framework.

Regenerates the paper's headline table: per loop, the transforms the test
validated, the speculative and inspector/executor speedups on the
FX/80-like (p=8) and FX/2800-like (p=14) machines, and the ideal doall
bound.  Shape assertions encode what the paper reports: every loop
passes, TRACK is speculative-only, speedups are substantial but below
ideal, and the larger machine helps.
"""

from conftest import run_once

from repro.evalx.table1 import build_table1, render_table1


def test_table1(benchmark, artifact):
    rows = run_once(benchmark, build_table1)
    artifact("table1", render_table1(rows))

    assert len(rows) == 7
    by_loop = {r.loop: r for r in rows}

    # Every loop passes the LRPD test (paper Table I).
    assert all(r.test_passed for r in rows)

    # TRACK: addresses computed by the loop -> speculative only.
    track = by_loop["TRACK_NLFILT_do300"]
    assert not track.inspector_ok
    assert track.speedup_insp_8 is None

    # All other loops support both modes.
    for name, row in by_loop.items():
        if name != "TRACK_NLFILT_do300":
            assert row.inspector_ok, name
            assert row.speedup_insp_8 is not None

    for row in rows:
        # Real speedups: > 1.7 at p=8, bounded by the ideal doall.
        assert row.speedup_spec_8 > 1.7, row.loop
        assert row.speedup_spec_8 <= row.ideal_8 + 1e-9
        # The 14-processor machine helps every loop.
        assert row.speedup_spec_14 > row.speedup_spec_8, row.loop
        # Speculative beats inspector/executor when both run (the
        # inspector re-traverses the loop; paper §V discussion).
        if row.speedup_insp_8 is not None:
            assert row.speedup_spec_8 >= row.speedup_insp_8 * 0.95, row.loop

    # SPICE carries its serial list traversal: the most modest speedup.
    spice = by_loop["SPICE_LOAD_do40"]
    assert spice.speedup_spec_8 == min(r.speedup_spec_8 for r in rows)
