"""Experiment T2 — Table II: run-time parallelization method comparison.

The qualitative half is transcribed from the paper; the empirical half
runs every executable baseline on a partially parallel loop with a known
minimal wavefront depth and checks the table's claims: the minimal-depth
methods reach the optimum, Zhu/Yew-style single-shadow methods serialize
concurrent reads, sectioned inspectors and contiguous blocking are
suboptimal, and the LRPD framework answers doall-or-serial.
"""

from conftest import run_once

from repro.evalx.table2 import build_table2, render_table2


def test_table2(benchmark, artifact):
    table = run_once(benchmark, build_table2)
    artifact("table2", render_table2(table))

    by_name = {r.method: r for r in table.empirical}

    # Minimal-depth methods reach the optimal wavefront depth.
    for name in ("Midkiff/Padua", "Xu/Chaudhary", "Saltz et al.",
                 "Krothapalli/Sadayappan"):
        row = by_name[name]
        assert row.applicable
        assert row.depth == row.optimal_depth, name

    # Single-shadow methods serialize the shared hot read.
    for name in ("Zhu/Yew", "Chen/Yew/Torrellas"):
        assert by_name[name].depth > by_name["Midkiff/Padua"].depth, name

    # Sectioning and contiguous blocking are suboptimal on scrambled chains.
    assert by_name["Leung/Zahorjan"].depth > by_name["Midkiff/Padua"].depth
    assert by_name["Polychronopoulos"].depth > by_name["Midkiff/Padua"].depth

    # Saltz's inspector is the sequential part the paper calls out.
    assert by_name["Saltz et al."].parallel_inspector is False

    # The LRPD framework does not stage partially parallel loops: the
    # test fails and the loop runs serially, costing serial + overhead.
    assert table.serial_time < table.lrpd_time < 2.5 * table.serial_time

    # Hot-spot-aware and timestamp methods beat the originals in time.
    assert by_name["Chen/Yew/Torrellas"].time < by_name["Zhu/Yew"].time
    assert by_name["Xu/Chaudhary"].time < by_name["Midkiff/Padua"].time
