"""Infrastructure benchmark — thread-backend doall scaling.

Not a paper artifact: measures real wall clock of the full speculative
protocol under ``engine="parallel" --backend threads`` at 1/2/4/8
worker threads against the compiled single-process engine.  On a
GIL-enabled CPython the marked doall's Python bytecode serializes, so
the curve is flat at best — the benchmark exists for the free-threaded
(3.13t) CI leg, where the threads genuinely overlap and the curve is
the backend's reason to exist.  Every run is parity-checked against the
compiled reference (same verdict, same simulated times, same memory),
so the curve can only be bought with real parallelism.

Writes ``BENCH_thread_scaling.json`` and the ``thread_scaling.txt``
artifact the 3.13t leg uploads.  Scaling is asserted only on
free-threaded builds with enough usable cores; everywhere else the
parity checks are the test.
"""

import os
import sys

import numpy as np

from conftest import calibrate, min_wall, run_once, write_bench_json
from repro.analysis.instrument import build_plan
from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter, split_at_loop
from repro.machine.costmodel import fx80
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.runtime.speculative import run_speculative
from repro.workloads.bdna import build_bdna

ROUNDS = 3
PROCS = 8
THREAD_COUNTS = (1, 2, 4, 8)
SPEEDUP_TARGET = 1.3


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def gil_enabled() -> bool:
    """True on builds where the GIL serializes the worker threads."""
    checker = getattr(sys, "_is_gil_enabled", None)
    return True if checker is None else bool(checker())


def _assert_parity(reference, candidate) -> None:
    ref_out, ref_env = reference
    out, env = candidate
    assert out.result == ref_out.result
    assert out.times == ref_out.times
    assert out.stats == ref_out.stats
    assert env[1] == ref_env[1]  # scalars
    for name, arr in ref_env[0].items():
        assert np.array_equal(arr, env[0][name]), name


def _speculative_runner(workload):
    program = parse(workload.source)
    plan = build_plan(program)
    before, _after = split_at_loop(program, plan.loop)

    def run(engine: str, workers: int | None = None, backend: str = "fork"):
        env = Environment(program, workload.inputs)
        Interpreter(program, env, value_based=False).exec_block(before)
        sim = DoallSimulator(fx80().with_procs(PROCS), ScheduleKind.BLOCK)
        outcome = run_speculative(
            program, plan.loop, env, plan, sim,
            engine=engine, workers=workers, backend=backend,
        )
        state = (
            {name: arr.copy() for name, arr in env.arrays.items()},
            dict(env.scalars),
        )
        return outcome, state

    return run


def test_thread_scaling(benchmark, artifact):
    workload = build_bdna(n=400)
    run = _speculative_runner(workload)
    cores = usable_cores()
    gil = gil_enabled()

    def measure():
        calibration_s = calibrate()
        entries: dict[str, float] = {}
        compiled_wall, reference = min_wall(lambda: run("compiled"))
        entries["bdna_compiled"] = compiled_wall
        runs = {}
        for workers in THREAD_COUNTS:
            wall, candidate = min_wall(
                lambda w=workers: run("parallel", workers=w, backend="threads")
            )
            entries[f"bdna_threads_w{workers}"] = wall
            runs[workers] = candidate
        return calibration_s, entries, reference, compiled_wall, runs

    calibration_s, entries, reference, compiled_wall, runs = run_once(
        benchmark, measure
    )

    assert reference[0].result.passed
    for candidate in runs.values():
        _assert_parity(reference, candidate)

    speedups = {
        f"w{workers}": compiled_wall / entries[f"bdna_threads_w{workers}"]
        for workers in THREAD_COUNTS
    }
    write_bench_json(
        "thread_scaling",
        calibration_s,
        entries,
        extra={
            "speedups": speedups,
            "cores": cores,
            "gil_enabled": gil,
            "procs": PROCS,
        },
    )
    artifact(
        "thread_scaling",
        "\n".join(
            [
                f"Thread-backend doall scaling on BDNA n=400 "
                f"(p={PROCS} simulated, {cores} usable cores, "
                f"GIL {'on' if gil else 'off'}, best of {ROUNDS})",
                f"compiled (1 proc) : {compiled_wall * 1000:8.1f} ms",
            ]
            + [
                f"threads w={workers}       : "
                f"{entries[f'bdna_threads_w{workers}'] * 1000:8.1f} ms "
                f"({speedups[f'w{workers}']:.2f}x, bit-identical)"
                for workers in THREAD_COUNTS
            ]
        ),
    )

    # Real scaling needs threads that actually overlap: assert only on
    # free-threaded builds with the cores to show it.  GIL builds (and
    # starved runners) still exercised every parity assertion above.
    if not gil and cores >= 4:
        assert speedups["w4"] > SPEEDUP_TARGET, (
            f"thread backend only {speedups['w4']:.2f}x over compiled "
            f"at w=4 on a free-threaded build ({cores} cores)"
        )
        assert speedups["w4"] > speedups["w1"]
