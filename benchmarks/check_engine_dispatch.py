"""CI lint gate: no string-literal engine dispatch outside the registry.

The execution-engine refactor funneled every ``engine == "..."``
comparison through :mod:`repro.runtime.engines` (capability queries and
registry lookups).  This check keeps it that way: it fails when a
string-literal engine comparison reappears anywhere else under
``src/repro``, so dispatch cannot quietly re-scatter across call sites.

::

    python benchmarks/check_engine_dispatch.py            # lint src/repro
    python benchmarks/check_engine_dispatch.py --root src/repro
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: a string literal compared against something called ``engine`` (or an
#: attribute/key ending in it), in either order.
PATTERNS = (
    re.compile(r"""\bengine\s*[=!]=\s*["']"""),
    re.compile(r"""["'][A-Za-z_]+["']\s*[=!]=\s*\w*\.?engine\b"""),
)

#: the one place engine names may be compared/declared.
ALLOWED = pathlib.PurePosixPath("repro/runtime/engines")


def lint(root: pathlib.Path) -> list[str]:
    """All offending ``path:line: text`` hits under ``root``."""
    hits: list[str] = []
    for path in sorted(root.rglob("*.py")):
        relative = pathlib.PurePosixPath("repro") / path.relative_to(root)
        if ALLOWED in relative.parents:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if any(pattern.search(line) for pattern in PATTERNS):
                hits.append(f"{path}:{lineno}: {line.strip()}")
    return hits


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on string-literal engine comparisons outside "
        "repro/runtime/engines."
    )
    parser.add_argument(
        "--root", type=pathlib.Path, default=pathlib.Path("src/repro"),
        help="package directory to lint (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if not args.root.is_dir():
        print(f"error: no such directory {args.root}", file=sys.stderr)
        return 2

    hits = lint(args.root)
    if hits:
        print(
            f"{len(hits)} string-literal engine comparison(s) outside "
            f"repro/runtime/engines — use registry capability queries "
            f"(repro.runtime.engines) instead:",
            file=sys.stderr,
        )
        for hit in hits:
            print(f"  {hit}", file=sys.stderr)
        return 1
    print("engine dispatch clean: no string comparisons outside the registry")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
