"""CI lint gate: no string-literal engine/backend dispatch outside
their registries, and no loop-memory caches constructed outside the
profile package.

The execution-engine refactor funneled every ``engine == "..."``
comparison through :mod:`repro.runtime.engines` (capability queries and
registry lookups), and the worker-pool backends likewise compare
``backend`` names only inside :mod:`repro.runtime.parallel_backend`
(``validate_backend`` / ``make_worker_pool``).  The profile-store
refactor did the same for the runtime's cross-run memory: the verdict
cache (``ScheduleCache``) and the jit warm-up ledger (``KernelCache``)
are internal components of :mod:`repro.runtime.profile` and may only be
constructed there — everyone else goes through a
:class:`~repro.runtime.profile.LoopProfileStore`.  This check keeps it
that way: it fails when a string-literal engine or backend comparison,
or a direct cache construction, reappears anywhere else under
``src/repro``, so dispatch and loop memory cannot quietly re-scatter
across call sites.

::

    python benchmarks/check_engine_dispatch.py            # lint src/repro
    python benchmarks/check_engine_dispatch.py --root src/repro
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: a string literal compared against something called ``engine`` (or an
#: attribute/key ending in it), in either order.
PATTERNS = (
    re.compile(r"""\bengine\s*[=!]=\s*["']"""),
    re.compile(r"""["'][A-Za-z_]+["']\s*[=!]=\s*\w*\.?engine\b"""),
)

#: a string literal compared against something called ``backend``.
BACKEND_PATTERNS = (
    re.compile(r"""\bbackend\s*[=!]=\s*["']"""),
    re.compile(r"""["'][A-Za-z_]+["']\s*[=!]=\s*\w*\.?backend\b"""),
)

#: direct construction of the profile store's internal caches.
CACHE_PATTERNS = (
    re.compile(r"\bScheduleCache\s*\("),
    re.compile(r"\bKernelCache\s*\("),
)

#: the DOACROSS recovery tier dispatched by enum/string comparison.  The
#: orchestrator routes strategies through a dict and the recovery engine
#: is resolved by capability (``recovery_engine()``); a scattered
#: ``== Strategy.DOACROSS_RECOVERY`` or ``== "doacross_recovery"``
#: comparison would fork that decision.  Dict keys and ``.value``
#: assignments deliberately do not match — only comparisons do.
RECOVERY_PATTERNS = (
    re.compile(r"(?:[=!]=|\bis(?:\s+not)?)\s+Strategy\.DOACROSS_RECOVERY\b"),
    re.compile(r"\bStrategy\.DOACROSS_RECOVERY\s+(?:[=!]=|is(?:\s+not)?)\s"),
    re.compile(r"""[=!]=\s*["']doacross_recovery["']"""),
    re.compile(r"""["']doacross_recovery["']\s*[=!]="""),
)

#: direct Program construction outside the frontend layer.  The frontend
#: refactor made :mod:`repro.frontend` the only door into the IR: every
#: ``Program`` comes from a registered frontend's ``lift()`` (the dsl
#: parser and the python lifter included).  ``parse(`` matches the
#: bare parser call but not methods (``self.parse(``) or other names
#: (``parse_args(``); workloads keep their stored-source ``parse`` and
#: the dsl package implements the parser itself.
FRONTEND_PATTERNS = (
    re.compile(r"(?<![\w.])parse\s*\("),
    re.compile(r"\bProgramBuilder\s*\("),
)

#: direct construction of engines, worker pools or shadow arenas — the
#: service layer must stay a pure front end over the orchestrator, so
#: every engine comes from the registry and every pool from
#: ``make_worker_pool`` / a :class:`WorkerPoolCache`.  (``WorkerPool(``
#: deliberately does not match ``WorkerPoolCache(``.)
SERVICE_PATTERNS = (
    re.compile(r"\b[A-Z]\w*Engine\s*\("),
    re.compile(r"\b(?:Thread)?WorkerPool\s*\("),
    re.compile(r"\b(?:Shared|Thread)ShadowArena\s*\("),
    re.compile(r"\brun_parallel_doall\s*\("),
)

#: the one place engine names may be compared/declared.
ALLOWED = pathlib.PurePosixPath("repro/runtime/engines")

#: the one module backend names may be compared/declared in.
BACKEND_ALLOWED = pathlib.PurePosixPath("repro/runtime/parallel_backend.py")

#: the one package the schedule/kernel caches may be constructed in.
CACHE_ALLOWED = pathlib.PurePosixPath("repro/runtime/profile")

#: the package held to the stricter no-direct-construction rule.
SERVICE_CHECKED = pathlib.PurePosixPath("repro/service")

#: the only places Program construction (parse/ProgramBuilder) may live:
#: the frontend layer itself, the dsl package that implements it, and
#: the workloads package (whose Workload.program() re-parses stored
#: mini-Fortran source).
FRONTEND_ALLOWED = (
    pathlib.PurePosixPath("repro/frontend"),
    pathlib.PurePosixPath("repro/dsl"),
    pathlib.PurePosixPath("repro/workloads"),
)


def lint(root: pathlib.Path) -> list[str]:
    """All offending ``path:line: text`` hits under ``root``."""
    hits: list[str] = []
    for path in sorted(root.rglob("*.py")):
        relative = pathlib.PurePosixPath("repro") / path.relative_to(root)
        check_engine = ALLOWED not in relative.parents
        check_backend = relative != BACKEND_ALLOWED
        check_cache = CACHE_ALLOWED not in relative.parents
        check_service = SERVICE_CHECKED in relative.parents
        check_frontend = not any(
            allowed in relative.parents for allowed in FRONTEND_ALLOWED
        )
        if not (
            check_engine or check_backend or check_cache
            or check_service or check_frontend
        ):
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            engine_hit = check_engine and any(
                pattern.search(line)
                for pattern in PATTERNS + RECOVERY_PATTERNS
            )
            backend_hit = check_backend and any(
                pattern.search(line) for pattern in BACKEND_PATTERNS
            )
            cache_hit = check_cache and any(
                pattern.search(line) for pattern in CACHE_PATTERNS
            )
            service_hit = check_service and any(
                pattern.search(line) for pattern in SERVICE_PATTERNS
            )
            frontend_hit = check_frontend and any(
                pattern.search(line) for pattern in FRONTEND_PATTERNS
            )
            if (
                engine_hit or backend_hit or cache_hit
                or service_hit or frontend_hit
            ):
                hits.append(f"{path}:{lineno}: {line.strip()}")
    return hits


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on string-literal engine comparisons outside "
        "repro/runtime/engines and backend comparisons outside "
        "repro/runtime/parallel_backend.py."
    )
    parser.add_argument(
        "--root", type=pathlib.Path, default=pathlib.Path("src/repro"),
        help="package directory to lint (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if not args.root.is_dir():
        print(f"error: no such directory {args.root}", file=sys.stderr)
        return 2

    hits = lint(args.root)
    if hits:
        print(
            f"{len(hits)} violation(s): string-literal engine/backend "
            f"comparisons belong in their registries (use "
            f"repro.runtime.engines capability queries or "
            f"repro.runtime.parallel_backend's validate_backend/"
            f"make_worker_pool), Strategy.DOACROSS_RECOVERY and "
            f"'doacross_recovery' may not be compared against outside "
            f"repro/runtime/engines (route through the orchestrator's "
            f"strategy table and recovery_engine()), "
            f"ScheduleCache/KernelCache may only "
            f"be constructed inside repro/runtime/profile (go through "
            f"LoopProfileStore), repro/service may not construct "
            f"engines, pools or arenas directly, and Program "
            f"construction (parse/ProgramBuilder) belongs behind the "
            f"frontend registry (repro/frontend; repro/dsl and "
            f"repro/workloads excepted):",
            file=sys.stderr,
        )
        for hit in hits:
            print(f"  {hit}", file=sys.stderr)
        return 1
    print(
        "engine/backend dispatch and profile-cache construction clean: "
        "no violations outside the registries"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
