"""CI lint gate: no string-literal engine or backend dispatch outside
their registries.

The execution-engine refactor funneled every ``engine == "..."``
comparison through :mod:`repro.runtime.engines` (capability queries and
registry lookups), and the worker-pool backends likewise compare
``backend`` names only inside :mod:`repro.runtime.parallel_backend`
(``validate_backend`` / ``make_worker_pool``).  This check keeps it
that way: it fails when a string-literal engine or backend comparison
reappears anywhere else under ``src/repro``, so dispatch cannot quietly
re-scatter across call sites.

::

    python benchmarks/check_engine_dispatch.py            # lint src/repro
    python benchmarks/check_engine_dispatch.py --root src/repro
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: a string literal compared against something called ``engine`` (or an
#: attribute/key ending in it), in either order.
PATTERNS = (
    re.compile(r"""\bengine\s*[=!]=\s*["']"""),
    re.compile(r"""["'][A-Za-z_]+["']\s*[=!]=\s*\w*\.?engine\b"""),
)

#: a string literal compared against something called ``backend``.
BACKEND_PATTERNS = (
    re.compile(r"""\bbackend\s*[=!]=\s*["']"""),
    re.compile(r"""["'][A-Za-z_]+["']\s*[=!]=\s*\w*\.?backend\b"""),
)

#: the one place engine names may be compared/declared.
ALLOWED = pathlib.PurePosixPath("repro/runtime/engines")

#: the one module backend names may be compared/declared in.
BACKEND_ALLOWED = pathlib.PurePosixPath("repro/runtime/parallel_backend.py")


def lint(root: pathlib.Path) -> list[str]:
    """All offending ``path:line: text`` hits under ``root``."""
    hits: list[str] = []
    for path in sorted(root.rglob("*.py")):
        relative = pathlib.PurePosixPath("repro") / path.relative_to(root)
        check_engine = ALLOWED not in relative.parents
        check_backend = relative != BACKEND_ALLOWED
        if not (check_engine or check_backend):
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            engine_hit = check_engine and any(
                pattern.search(line) for pattern in PATTERNS
            )
            backend_hit = check_backend and any(
                pattern.search(line) for pattern in BACKEND_PATTERNS
            )
            if engine_hit or backend_hit:
                hits.append(f"{path}:{lineno}: {line.strip()}")
    return hits


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on string-literal engine comparisons outside "
        "repro/runtime/engines and backend comparisons outside "
        "repro/runtime/parallel_backend.py."
    )
    parser.add_argument(
        "--root", type=pathlib.Path, default=pathlib.Path("src/repro"),
        help="package directory to lint (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if not args.root.is_dir():
        print(f"error: no such directory {args.root}", file=sys.stderr)
        return 2

    hits = lint(args.root)
    if hits:
        print(
            f"{len(hits)} string-literal engine/backend comparison(s) "
            f"outside their registries — use repro.runtime.engines "
            f"capability queries or repro.runtime.parallel_backend's "
            f"validate_backend/make_worker_pool instead:",
            file=sys.stderr,
        )
        for hit in hits:
            print(f"  {hit}", file=sys.stderr)
        return 1
    print(
        "engine/backend dispatch clean: no string comparisons outside "
        "the registries"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
