"""CI wall-clock regression gate.

Compares the ``BENCH_*.json`` files a benchmark run just produced
against the checked-in baseline (``benchmarks/baselines/``) and fails
if any measurement's *calibration-normalized* wall time regressed by
more than the tolerance.  Normalized ratios — measured wall divided by
a fixed CPU-spin calibration run on the same machine — are what make
the gate portable across runner hardware generations.

::

    python benchmarks/check_regression.py \
        benchmarks/artifacts/BENCH_engine_speed.json \
        benchmarks/artifacts/BENCH_parallel.json \
        --baseline benchmarks/baselines/bench_baseline.json

Entries present in the current run but absent from the baseline are
reported and allowed (new benchmarks should not need a lockstep
baseline update to land); entries that regressed past the tolerance
fail the run with a per-entry report.

``--require BENCH/KEY`` (repeatable) inverts the leniency for named
entries: the run fails if a required measurement is missing from the
current results.  Use it for gate-critical entries — a benchmark that
silently stopped emitting its key would otherwise pass the gate by
omission.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = pathlib.Path(__file__).parent / "baselines" / "bench_baseline.json"
DEFAULT_TOLERANCE = 0.25


def load_current(path: pathlib.Path) -> tuple[str, dict[str, float]]:
    """Read one BENCH_*.json and return (benchmark name, normalized map)."""
    payload = json.loads(path.read_text())
    name = payload["benchmark"]
    normalized = {
        key: entry["normalized"] for key, entry in payload["entries"].items()
    }
    return name, normalized


def compare(
    current: dict[str, dict[str, float]],
    baseline: dict[str, dict],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) comparing normalized ratios."""
    regressions: list[str] = []
    notes: list[str] = []
    for bench, entries in sorted(current.items()):
        base_entries = baseline.get(bench, {}).get("entries", {})
        if not base_entries:
            notes.append(f"{bench}: no baseline recorded (allowed)")
            continue
        for key, value in sorted(entries.items()):
            base = base_entries.get(key)
            if base is None:
                notes.append(f"{bench}/{key}: new entry, no baseline (allowed)")
                continue
            limit = base * (1.0 + tolerance)
            verdict = "ok" if value <= limit else "REGRESSED"
            notes.append(
                f"{bench}/{key}: {value:.3f} vs baseline {base:.3f} "
                f"(limit {limit:.3f}) {verdict}"
            )
            if value > limit:
                regressions.append(
                    f"{bench}/{key}: normalized {value:.3f} exceeds "
                    f"baseline {base:.3f} by more than {tolerance:.0%}"
                )
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail if benchmark wall clock regressed vs the baseline."
    )
    parser.add_argument(
        "results", nargs="+", type=pathlib.Path,
        help="BENCH_*.json files from the current run",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help="checked-in baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown before failing (default: %(default)s)",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="BENCH/KEY",
        help="fail if this entry is absent from the current results "
             "(repeatable; e.g. engine_speed/vectorized_speculative)",
    )
    args = parser.parse_args(argv)

    current: dict[str, dict[str, float]] = {}
    for path in args.results:
        if not path.exists():
            print(f"error: missing benchmark result {path}", file=sys.stderr)
            return 1
        name, normalized = load_current(path)
        current[name] = normalized

    missing = []
    for spec in args.require:
        bench, _, key = spec.partition("/")
        if not key or key not in current.get(bench, {}):
            missing.append(spec)
    if missing:
        print(
            f"{len(missing)} required benchmark entr"
            f"{'y is' if len(missing) == 1 else 'ies are'} missing:",
            file=sys.stderr,
        )
        for spec in missing:
            print(f"  {spec}", file=sys.stderr)
        return 1

    baseline = json.loads(args.baseline.read_text()) if args.baseline.exists() else {}
    if not baseline:
        print(f"warning: no baseline at {args.baseline}; nothing to gate against")

    regressions, notes = compare(current, baseline, args.tolerance)
    for note in notes:
        print(note)
    if regressions:
        print(f"\n{len(regressions)} benchmark regression(s):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nbenchmark wall clock within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
