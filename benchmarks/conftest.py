"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures, prints
it, saves the rendering under ``benchmarks/artifacts/`` (the files
EXPERIMENTS.md references) and asserts the *shape* the paper reports.
"""

from __future__ import annotations

import pathlib

import pytest

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture
def artifact(capsys):
    """Write (and echo) a named evaluation artifact."""

    def write(name: str, text: str) -> None:
        ARTIFACTS.mkdir(exist_ok=True)
        path = ARTIFACTS / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n=== {name} ===")
            print(text)

    return write


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


FIGURE_PROCS = (1, 2, 4, 8, 12, 14, 16)


def loop_figure_bench(
    benchmark,
    artifact,
    workload,
    figure_name,
    *,
    include_setup=False,
    expect_inspector=True,
    min_speedup_at_8=1.5,
):
    """Shared skeleton for the per-loop speedup figures.

    Asserts the shapes common to all of the paper's loop figures:
    monotone-ish growth with processors, ideal dominating both
    strategies, and real speedup at p=8.  Returns the series dict for
    loop-specific assertions.
    """
    from repro.evalx.figures import loop_figure
    from repro.evalx.render import ascii_chart, format_figure
    from repro.machine.costmodel import fx80

    figure = run_once(
        benchmark,
        lambda: loop_figure(
            workload, procs=FIGURE_PROCS, model=fx80(), include_setup=include_setup
        ),
    )
    artifact(
        figure_name,
        format_figure(figure, title=f"{figure_name}: speedup vs processors")
        + "\n\n"
        + ascii_chart(figure, title=f"{figure_name} (speedup vs processors)"),
    )

    assert ("inspector" in figure) == expect_inspector
    ideal = figure["ideal"].speedups()
    for label, series in figure.items():
        speedups = series.speedups()
        assert speedups[-1] > speedups[0], f"{label} does not scale"
        if label != "ideal":
            for measured, bound in zip(speedups, ideal):
                assert measured <= bound + 1e-9, label

    spec_at_8 = figure["speculative"].points[3]
    assert spec_at_8.procs == 8
    assert spec_at_8.speedup > min_speedup_at_8
    return figure
