"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures, prints
it, saves the rendering under ``benchmarks/artifacts/`` (the files
EXPERIMENTS.md references) and asserts the *shape* the paper reports.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


def calibrate(rounds: int = 3) -> float:
    """Machine-speed yardstick: best-of wall clock of a fixed CPU spin.

    ``BENCH_*.json`` files store every measured wall time normalized by
    this, so the CI regression gate compares machine-portable ratios
    instead of absolute seconds from whatever runner it landed on.
    """

    def spin() -> int:
        acc = 0
        for i in range(1_500_000):
            acc += i ^ (i >> 3)
        return acc

    best = None
    for _ in range(rounds):
        begin = time.perf_counter()
        spin()
        elapsed = time.perf_counter() - begin
        if best is None or elapsed < best:
            best = elapsed
    return best


def min_wall(fn, rounds: int = 3):
    """Best-of-``rounds`` wall clock and the last round's result.

    Both sides of every engine/backend comparison are timed this way so
    the comparison is fair: neither side gets warm-cache rounds the
    other does not, and one scheduler hiccup cannot fake a regression.
    """
    best = None
    result = None
    for _ in range(rounds):
        begin = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - begin
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def write_bench_json(
    name: str,
    calibration_s: float,
    entries: dict[str, float],
    extra: dict | None = None,
    merge: bool = False,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` (the regression gate's input).

    ``entries`` maps measurement keys to wall-clock seconds; each is
    stored with its calibration-normalized ratio, which is what
    ``check_regression.py`` compares against the checked-in baseline.

    With ``merge=True`` an existing file's entries are kept and only the
    given keys replaced — for benchmarks whose measurements come from
    several tests contributing to one gate file.  Each entry carries its
    own normalized ratio, so mixing calibrations across tests is sound.
    """
    ARTIFACTS.mkdir(exist_ok=True)
    path = ARTIFACTS / f"BENCH_{name}.json"
    payload = {"benchmark": name, "entries": {}}
    if merge and path.exists():
        payload = json.loads(path.read_text())
    payload["calibration_s"] = calibration_s
    payload["entries"].update(
        {
            key: {"wall_s": wall, "normalized": wall / calibration_s}
            for key, wall in entries.items()
        }
    )
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def artifact(capsys):
    """Write (and echo) a named evaluation artifact."""

    def write(name: str, text: str) -> None:
        ARTIFACTS.mkdir(exist_ok=True)
        path = ARTIFACTS / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n=== {name} ===")
            print(text)

    return write


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


FIGURE_PROCS = (1, 2, 4, 8, 12, 14, 16)


def loop_figure_bench(
    benchmark,
    artifact,
    workload,
    figure_name,
    *,
    include_setup=False,
    expect_inspector=True,
    min_speedup_at_8=1.5,
):
    """Shared skeleton for the per-loop speedup figures.

    Asserts the shapes common to all of the paper's loop figures:
    monotone-ish growth with processors, ideal dominating both
    strategies, and real speedup at p=8.  Returns the series dict for
    loop-specific assertions.
    """
    from repro.evalx.figures import loop_figure
    from repro.evalx.render import ascii_chart, format_figure
    from repro.machine.costmodel import fx80

    figure = run_once(
        benchmark,
        lambda: loop_figure(
            workload, procs=FIGURE_PROCS, model=fx80(), include_setup=include_setup
        ),
    )
    artifact(
        figure_name,
        format_figure(figure, title=f"{figure_name}: speedup vs processors")
        + "\n\n"
        + ascii_chart(figure, title=f"{figure_name} (speedup vs processors)"),
    )

    assert ("inspector" in figure) == expect_inspector
    ideal = figure["ideal"].speedups()
    for label, series in figure.items():
        speedups = series.speedups()
        assert speedups[-1] > speedups[0], f"{label} does not scale"
        if label != "ideal":
            for measured, bound in zip(speedups, ideal):
                assert measured <= bound + 1e-9, label

    spec_at_8 = figure["speculative"].points[3]
    assert spec_at_8.procs == 8
    assert spec_at_8.speedup > min_speedup_at_8
    return figure
