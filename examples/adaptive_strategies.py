"""The strategy space in one tour: speculation, failure & rollback,
inspector/executor, and schedule reuse.

Four scenarios, one per subsection of the paper's framework:

1. a PERFECT-like loop (BDNA) under both speculative and
   inspector/executor mode;
2. a loop with genuine flow dependences — the test fails, the state is
   rolled back and the loop re-executes serially (bounded cost);
3. a TRACK-like loop whose inspector cannot be extracted — speculative
   mode is the only option;
4. an OCEAN-like loop executed many times — schedule reuse amortizes the
   test away.

Run:  python examples/adaptive_strategies.py
"""

from repro import LoopRunner, RunConfig, Strategy, fx80
from repro.errors import InspectorNotExtractable
from repro.workloads.bdna import build_bdna
from repro.workloads.ocean import build_ocean
from repro.workloads.synthetic import build_dependence_injected
from repro.workloads.track import build_track


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    config = RunConfig(model=fx80())

    banner("1. BDNA-like loop: privatization + reduction, both modes")
    workload = build_bdna()
    runner = LoopRunner(workload.program(), workload.inputs)
    for strategy in (Strategy.SPECULATIVE, Strategy.INSPECTOR):
        print(runner.run(strategy, config).describe())

    banner("2. Dependence-laden loop: speculation fails, rolls back")
    workload = build_dependence_injected(n=400, dep_fraction=0.1)
    runner = LoopRunner(workload.program(), workload.inputs)
    report = runner.run(Strategy.SPECULATIVE, config)
    print(report.describe())
    print(
        f"   failed attempt cost {report.loop_time:.0f} cycles vs serial "
        f"{report.serial_loop_time:.0f} "
        f"(x{report.loop_time / report.serial_loop_time:.2f} — bounded)"
    )

    banner("3. TRACK-like loop: the inspector cannot be extracted")
    workload = build_track()
    runner = LoopRunner(workload.program(), workload.inputs)
    try:
        runner.run(Strategy.INSPECTOR, config)
    except InspectorNotExtractable as exc:
        print(f"inspector refused: {exc}")
    print(runner.run(Strategy.SPECULATIVE, config).describe())

    banner("4. OCEAN-like loop invoked 5x: schedule reuse")
    workload = build_ocean()
    runner = LoopRunner(workload.program(), workload.inputs)
    cached = RunConfig(model=fx80(), use_schedule_cache=True)
    for invocation in range(5):
        report = runner.run(Strategy.SPECULATIVE, cached)
        tag = "reused schedule" if report.reused_schedule else "full test"
        print(
            f"invocation {invocation}: {report.loop_time:9.0f} cycles "
            f"(speedup {report.speedup:4.2f}, {tag})"
        )


if __name__ == "__main__":
    main()
