"""Binned accumulation — an indirect array reduction (``h[b[i]] += w[i]``).

Try it::

    python -m repro lift examples/corpus/histogram.py --run

The lifter turns the subscripted subscript + augmented assignment into a
marked-doall reduction statement; the LRPD test validates at run time
that every touched element was only ever updated by it.
"""

import numpy as np


def histogram(h, b, w, n):
    for i in range(n):
        h[b[i]] += w[i]


def make_inputs():
    rng = np.random.default_rng(7)
    n = 256
    return {
        "h": np.zeros(32),
        "b": rng.integers(0, 32, size=n).astype(np.int64),
        "w": rng.random(n),
        "n": n,
    }
