"""Sum of squared deviations — a reduction through a scalar temporary.

Try it::

    python -m repro lift examples/corpus/norm.py --run

The accumulation flows through ``t``, so syntactic matching misses it;
demand-driven forward substitution (the paper's §IV) recognizes
``s = s + (x(i) - mu) * (x(i) - mu)`` and the runtime privatizes ``t``.
"""

import numpy as np


def norm_temp(x, n, mu):
    s = 0.0
    for i in range(n):
        t = x[i] - mu
        s += t * t
    return s


def make_inputs():
    rng = np.random.default_rng(11)
    n = 512
    return {"x": rng.random(n), "n": n, "mu": 0.5}
