"""Sliding-window sum — an inner loop feeding independent writes.

Try it::

    python -m repro lift examples/corpus/stencil.py --run
"""

import numpy as np


def window_sum(x, y, n, w):
    for i in range(n - w):
        acc = 0.0
        for j in range(w):
            acc = acc + x[i + j]
        y[i] = acc


def make_inputs():
    rng = np.random.default_rng(13)
    n = 256
    return {"x": rng.random(n), "y": np.zeros(n), "n": n, "w": 7}
