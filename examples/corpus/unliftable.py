"""A loop the frontend must reject — ``break`` has no doall form.

Try it::

    python -m repro lift examples/corpus/unliftable.py

The lift fails with the named reason ``break-unsupported`` (exit 1);
every unsupported construct maps to a stable kebab-case reason so
rejection rates can be tracked per construct.
"""

import numpy as np


def first_negative(x, n):
    j = -1
    for i in range(n):
        if x[i] < 0.0:
            j = i
            break
    return j


def make_inputs():
    rng = np.random.default_rng(17)
    n = 64
    return {"x": rng.random(n) - 0.5, "n": n}
