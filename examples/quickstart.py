"""Quickstart: speculatively parallelize a loop the compiler cannot.

The loop below scatters through an input permutation — statically the
subscript ``idx(i)`` is opaque, so a conventional parallelizer must
leave the loop serial.  The LRPD framework speculates: it runs the loop
as a doall with shadow marking, tests the marks, and keeps the parallel
result because the writes turn out to be conflict-free.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LoopRunner, RunConfig, Strategy, fx80, parse

SOURCE = """
program quickstart
  integer i, n
  integer idx(1000)
  real a(1000), v(1000)
  do i = 1, n
    a(idx(i)) = v(i) * v(i) + 1.0
  end do
end
"""


def main() -> None:
    rng = np.random.default_rng(42)
    n = 1000
    inputs = {
        "n": n,
        "idx": rng.permutation(n) + 1,  # run-time data the compiler can't see
        "v": rng.normal(size=n),
    }

    program = parse(SOURCE)
    runner = LoopRunner(program, inputs)

    print("compiler's view:", runner.plan.static_report.explain())
    print("instrumentation plan:", runner.plan.summary())
    print()

    report = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
    print(report.describe())
    print("time breakdown (cycles):")
    for phase, cycles in report.times.nonzero_phases().items():
        print(f"  {phase:16s} {cycles:12.1f}")

    serial = runner.serial_run(fx80())
    matches = np.allclose(report.env.arrays["a"], serial.env.arrays["a"])
    print(f"\nparallel result equals serial oracle: {matches}")


if __name__ == "__main__":
    main()
