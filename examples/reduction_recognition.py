"""Reduction recognition beyond pattern matching (paper §IV).

The SPICE LOAD idiom: a matrix stamp flows through a private temporary
and mode-dependent control flow.  A syntactic matcher sees no statement
of the form ``A(e) = A(e) op c`` and gives up; the paper's demand-driven
forward substitution expresses the stored value in terms of the loaded
one across all control paths and proves the update is a sum reduction —
then the run-time test validates it for the actual subscripts.

Run:  python examples/reduction_recognition.py
"""

import numpy as np

from repro import LoopRunner, RunConfig, Strategy, fx80, parse
from repro.analysis.instrument import number_refs
from repro.analysis.reduction import find_reductions, syntactic_reductions
from repro.interp.interpreter import find_target_loop

SOURCE = """
program stamp
  integer i, n, mode
  integer node(500)
  real g(500), v(500), y(250)
  real t, gv
  do i = 1, n
    gv = g(i) * v(i)
    if (mode == 1) then
      t = y(node(i)) + gv
    else
      t = y(node(i)) - gv * 0.5
    end if
    y(node(i)) = t
  end do
end
"""


def main() -> None:
    program = parse(SOURCE)
    number_refs(program)
    loop = find_target_loop(program)

    syntactic = syntactic_reductions(loop.body, {"y"})
    print(f"syntactic pattern matcher finds: {len(syntactic)} reduction statements")

    report = find_reductions(loop, {"y"})
    print(f"forward substitution finds:      {len(report.candidates)} candidates")
    for candidate in report.candidates:
        print(
            f"  y is a '{candidate.op}' reduction at line {candidate.line} "
            f"(store ref #{candidate.store_ref_id}, "
            f"loads {sorted(candidate.load_ref_ids)})"
        )

    # And the whole framework end to end: the run-time test validates the
    # reduction per element and merges per-processor partials.
    rng = np.random.default_rng(7)
    n = 500
    inputs = {
        "n": n,
        "mode": 1,
        "node": rng.integers(1, 251, n),
        "g": rng.normal(size=n),
        "v": rng.normal(size=n),
        "y": rng.normal(scale=0.1, size=250),
    }
    runner = LoopRunner(parse(SOURCE), inputs)
    result = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
    print()
    print(result.describe())
    detail = result.test_result.details["y"]
    print(f"elements validated as reductions: {detail.reduction_elements}")

    serial = runner.serial_run(fx80())
    print(
        "parallel y equals serial oracle:",
        np.allclose(result.env.arrays["y"], serial.env.arrays["y"]),
    )


if __name__ == "__main__":
    main()
