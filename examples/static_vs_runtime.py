"""What the static compiler sees vs what the run-time test proves.

Walks a spectrum of loops through the GCD/Banerjee dependence tests and
then through the LRPD framework, printing both verdicts side by side —
the paper's motivating observation in executable form: the statically
UNKNOWN loops are frequently dynamic doalls.

Run:  python examples/static_vs_runtime.py
"""

import numpy as np

from repro import LoopRunner, RunConfig, Strategy, fx80, parse

CASES = [
    (
        "affine, provably parallel",
        """
program c1
  integer i, n
  real a(64), b(64)
  do i = 1, n
    a(i) = b(i) * 2.0
  end do
end
""",
        {"n": 64, "b": np.arange(64.0)},
    ),
    (
        "affine recurrence (dependence suspected)",
        """
program c2
  integer i, n
  real a(64)
  do i = 2, n
    a(i) = a(i - 1) + 1.0
  end do
end
""",
        {"n": 64},
    ),
    (
        "subscripted subscript, dynamically parallel",
        """
program c3
  integer i, n
  integer idx(512)
  real a(512), v(512)
  do i = 1, n
    a(idx(i)) = v(i) * v(i) + sqrt(abs(v(i)))
  end do
end
""",
        {"n": 512, "idx": np.random.default_rng(0).permutation(512) + 1,
         "v": np.arange(512.0)},
    ),
    (
        "subscripted subscript, dynamically serial",
        """
program c4
  integer i, n
  integer w(64), r(64)
  real a(128), v(64)
  do i = 1, n
    a(w(i)) = a(r(i)) + v(i)
  end do
end
""",
        {
            "n": 64,
            "w": np.arange(1, 65),
            "r": np.concatenate(([65], np.arange(1, 64))),  # chain
            "v": np.arange(64.0),
        },
    ),
    (
        "irregular reduction, dynamically parallel with transform",
        """
program c5
  integer i, n
  integer idx(512)
  real f(64), v(512)
  do i = 1, n
    f(idx(i)) = f(idx(i)) + v(i) * v(i)
  end do
end
""",
        {"n": 512, "idx": np.random.default_rng(1).integers(1, 65, 512),
         "v": np.arange(512.0)},
    ),
]


def main() -> None:
    print(f"{'loop':44s}  {'static verdict':16s}  {'run-time outcome'}")
    print("-" * 100)
    for name, source, inputs in CASES:
        runner = LoopRunner(parse(source), inputs)
        static = runner.plan.static_report.verdict.value
        if runner.plan.statically_parallel and not runner.plan.tested_arrays:
            outcome = "doall at compile time (no test needed)"
        else:
            report = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
            if report.passed is None:
                outcome = "refused (loop-carried scalar): serial"
            elif report.passed:
                outcome = (
                    f"test PASSED -> parallel (speedup {report.speedup:.2f} at p=8)"
                )
            else:
                outcome = "test FAILED -> serial re-execution"
        print(f"{name:44s}  {static:16s}  {outcome}")


if __name__ == "__main__":
    main()
