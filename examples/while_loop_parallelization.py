"""Parallelizing a ``do while`` linked-list loop (paper [33] + §V SPICE).

A while loop has no iteration space, so it cannot be a doall directly.
The technique: split it into a serial traversal that collects the
cursor values, then run the body as a ``do`` over the collected nodes —
which the LRPD framework can then speculate on.  The serial traversal
is the Amdahl component that caps the speedup (the paper's explanation
for SPICE's modest numbers).

Run:  python examples/while_loop_parallelization.py
"""

import numpy as np

from repro import LoopRunner, RunConfig, Strategy, fx80, parse, to_source
from repro.analysis.while_transform import transform_list_traversal

SOURCE = """
program device_walk
  integer p, head, n
  integer nxt(600), node(600)
  real y(300), g(600)
  real t
  p = head
  do while (p > 0)
    t = g(p) * g(p) + 1.0
    y(node(p)) = y(node(p)) + t
    p = nxt(p)
  end do
end
"""


def main() -> None:
    rng = np.random.default_rng(11)
    n = 600
    perm = rng.permutation(n) + 1
    nxt = np.zeros(n, dtype=np.int64)
    for a, b in zip(perm[:-1], perm[1:]):
        nxt[a - 1] = b
    nxt[perm[-1] - 1] = 0
    inputs = {
        "head": int(perm[0]),
        "nxt": nxt,
        "node": rng.integers(1, 301, n),
        "g": rng.normal(size=n),
        "y": rng.normal(scale=0.1, size=300),
    }

    transformed = transform_list_traversal(parse(SOURCE))
    print("transformed program:")
    print(to_source(transformed))

    runner = LoopRunner(transformed, inputs)
    print("plan:", runner.plan.summary())
    report = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
    print(report.describe())

    serial = runner.serial_run(fx80())
    # Charge the serial traversal to both sides (Amdahl).
    amdahl = (serial.loop_time + serial.setup_time) / (
        report.loop_time + serial.setup_time
    )
    print(f"speedup with the serial traversal charged: {amdahl:.2f}")
    print(
        "y equals the serial oracle:",
        np.allclose(report.env.arrays["y"], serial.env.arrays["y"]),
    )


if __name__ == "__main__":
    main()
