"""Legacy setup shim.

The canonical metadata lives in pyproject.toml.  This file exists so the
package can be installed in environments without the `wheel` package
(``python setup.py develop``) or added to sys.path via a .pth file.
"""

from setuptools import setup

setup()
