"""repro — a reproduction of Rauchwerger & Padua's LRPD test (PLDI 1995).

Speculative run-time parallelization of loops with privatization and
reduction parallelization, built on a mini-Fortran DSL, a compile-time
analysis pipeline, a run-time marking/test library and a simulated
shared-memory multiprocessor.

Quickstart — programs enter through a *frontend* (mini-Fortran text via
``dsl``, real Python ``for`` loops via ``python``)::

    from repro import LoopRunner, RunConfig, Strategy, fx80, get_frontend

    result = get_frontend("dsl").lift(SOURCE)
    runner = LoopRunner(result.require(), inputs={"n": 1000, ...})
    report = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
    print(report.describe())
"""

from repro.analysis import build_plan
from repro.core.outcomes import TestMode
from repro.core.shadow import Granularity
from repro.dsl import parse, to_source
from repro.errors import ReproError
from repro.frontend import LiftResult, frontend_names, get_frontend
from repro.machine import CostModel, fx80, fx2800
from repro.machine.schedule import ScheduleKind
from repro.runtime import ExecutionReport, LoopRunner, RunConfig, Strategy

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "ExecutionReport",
    "Granularity",
    "LiftResult",
    "LoopRunner",
    "ReproError",
    "RunConfig",
    "ScheduleKind",
    "Strategy",
    "TestMode",
    "build_plan",
    "frontend_names",
    "fx80",
    "fx2800",
    "get_frontend",
    "parse",
    "to_source",
    "__version__",
]
