"""Compile-time analysis and instrumentation for the LRPD framework.

The paper's division of labour: the compiler (a) tries to prove the loop
parallel statically, (b) when it cannot, picks the arrays to test, the
transformations to apply speculatively (privatization, reduction
parallelization) and inserts calls to the run-time marking library.  This
package implements that compiler side:

* :mod:`repro.analysis.symtab` — use/def summaries of loop bodies;
* :mod:`repro.analysis.affine` — affine subscript extraction;
* :mod:`repro.analysis.dependence` — GCD / Banerjee static dependence
  tests, i.e. the conventional parallelizer that fails on the paper's
  loops;
* :mod:`repro.analysis.reduction` — reduction recognition: syntactic
  pattern matching plus the paper's demand-driven forward substitution
  that sees through private temporaries and control flow;
* :mod:`repro.analysis.classify` — scalar classification and per-array
  speculative transform selection;
* :mod:`repro.analysis.instrument` — reference numbering and the
  instrumentation plan handed to the run-time system.
"""

from repro.analysis.classify import ScalarClass, classify_scalars, plan_transforms
from repro.analysis.dependence import StaticVerdict, analyze_loop_statically
from repro.analysis.instrument import InstrumentationPlan, build_plan, number_refs
from repro.analysis.reduction import ReductionCandidate, find_reductions

__all__ = [
    "InstrumentationPlan",
    "ReductionCandidate",
    "ScalarClass",
    "StaticVerdict",
    "analyze_loop_statically",
    "build_plan",
    "classify_scalars",
    "find_reductions",
    "number_refs",
    "plan_transforms",
]
