"""Affine subscript extraction.

A subscript is *statically affine* in the loop variable ``i`` when it has
the form ``a*i + b`` with integer literal ``a`` and ``b``.  Anything else —
subscripted subscripts (``idx(i)``), values computed from data, scalars
whose values the compiler does not know — is statically insufficiently
defined, which is precisely the situation that motivates the paper's
run-time test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.ast_nodes import ArrayRef, BinOp, Call, Expr, Num, UnaryOp, Var


@dataclass(frozen=True)
class Affine:
    """The form ``coef * var + const`` over integer literals."""

    coef: int
    const: int

    def at(self, i: int) -> int:
        """Evaluate at iteration ``i``."""
        return self.coef * i + self.const


def affine_of(expr: Expr, loop_var: str) -> Affine | None:
    """Extract ``a*loop_var + b`` from ``expr``; None if not affine.

    Only integer literals and the loop variable are considered known;
    any other variable, array reference or intrinsic makes the subscript
    non-affine (statically insufficiently defined).
    """
    if isinstance(expr, Num):
        if not expr.is_int:
            return None
        return Affine(coef=0, const=int(expr.value))
    if isinstance(expr, Var):
        if expr.name == loop_var:
            return Affine(coef=1, const=0)
        return None
    if isinstance(expr, UnaryOp):
        if expr.op != "-":
            return None
        inner = affine_of(expr.operand, loop_var)
        if inner is None:
            return None
        return Affine(coef=-inner.coef, const=-inner.const)
    if isinstance(expr, BinOp):
        return _affine_binop(expr, loop_var)
    if isinstance(expr, (ArrayRef, Call)):
        return None
    return None


def _affine_binop(expr: BinOp, loop_var: str) -> Affine | None:
    left = affine_of(expr.left, loop_var)
    right = affine_of(expr.right, loop_var)
    if left is None or right is None:
        return None
    if expr.op == "+":
        return Affine(coef=left.coef + right.coef, const=left.const + right.const)
    if expr.op == "-":
        return Affine(coef=left.coef - right.coef, const=left.const - right.const)
    if expr.op == "*":
        # At least one side must be a pure constant for linearity.
        if left.coef == 0:
            return Affine(coef=left.const * right.coef, const=left.const * right.const)
        if right.coef == 0:
            return Affine(coef=right.const * left.coef, const=right.const * left.const)
        return None
    return None
