"""Scalar classification and speculative transform selection.

Mirrors the compiler stage that decides, per variable, how the
speculatively parallelized loop will treat it:

* scalars: loop variable, read-only, privatizable, reduction, or
  loop-carried (the last makes the loop non-parallelizable as-is);
* arrays: statically safe (provably independent accesses), candidates for
  the run-time test (with privatization applied speculatively), or
  reduction arrays (validated at run time via the ``A_nx`` shadow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.analysis.affine import affine_of
from repro.analysis.dependence import may_cross_depend
from repro.analysis.liveness import exposed_scalar_reads
from repro.analysis.reduction import ReductionReport
from repro.analysis.symtab import iter_array_refs, summarize_body
from repro.dsl.ast_nodes import Do


class ScalarClass(Enum):
    LOOP_VAR = "loop-var"
    READ_ONLY = "read-only"
    PRIVATE = "private"
    REDUCTION = "reduction"
    CARRIED = "loop-carried"


def classify_scalars(loop: Do, reductions: ReductionReport) -> dict[str, ScalarClass]:
    """Classify every scalar that appears in the loop body."""
    summary = summarize_body(loop.body)
    exposed = exposed_scalar_reads(loop.body, initial_assigned={loop.var})
    classes: dict[str, ScalarClass] = {loop.var: ScalarClass.LOOP_VAR}

    for name in summary.scalars_written | summary.scalars_read:
        if name == loop.var:
            continue
        if name not in summary.scalars_written:
            classes[name] = ScalarClass.READ_ONLY
        elif name in reductions.scalar_reductions:
            classes[name] = ScalarClass.REDUCTION
        elif name in exposed:
            classes[name] = ScalarClass.CARRIED
        else:
            classes[name] = ScalarClass.PRIVATE
    return classes


@dataclass
class ArrayPlan:
    """How one array is handled during speculative execution."""

    name: str
    written: bool
    statically_safe: bool
    tested: bool
    has_reduction_refs: bool
    has_non_reduction_writes: bool


@dataclass
class TransformPlan:
    """The per-loop speculative transformation decision."""

    arrays: dict[str, ArrayPlan] = field(default_factory=dict)
    scalar_classes: dict[str, ScalarClass] = field(default_factory=dict)

    @property
    def tested_arrays(self) -> set[str]:
        return {a.name for a in self.arrays.values() if a.tested}

    @property
    def reduction_arrays(self) -> set[str]:
        return {a.name for a in self.arrays.values() if a.has_reduction_refs}

    @property
    def written_arrays(self) -> set[str]:
        return {a.name for a in self.arrays.values() if a.written}

    @property
    def carried_scalars(self) -> set[str]:
        return {
            name
            for name, cls in self.scalar_classes.items()
            if cls is ScalarClass.CARRIED
        }


def plan_transforms(
    loop: Do,
    reductions: ReductionReport,
    *,
    trip_count: int | None = None,
) -> TransformPlan:
    """Decide, per array, whether the run-time test is needed.

    An array is *statically safe* when every reference (outside validated
    reduction statements) has an affine subscript and no pair of its
    references can touch the same element in different iterations.  All
    other written arrays become tested arrays: they are checkpointed,
    privatized speculatively and marked at run time.
    """
    plan = TransformPlan(scalar_classes=classify_scalars(loop, reductions))
    sites = list(iter_array_refs(loop.body))
    arrays = {site.ref.name for site in sites}

    for name in sorted(arrays):
        own_sites = [s for s in sites if s.ref.name == name]
        written = any(s.is_store for s in own_sites)
        non_redux = [
            s for s in own_sites if s.ref.ref_id not in reductions.redux_refs
        ]
        has_redux = len(non_redux) < len(own_sites)
        non_redux_writes = any(s.is_store for s in non_redux)

        statically_safe = True
        if written:
            if non_redux:
                statically_safe = _array_statically_safe(loop, non_redux, trip_count)
                if has_redux:
                    # Mixed reduction / ordinary references cannot be proven
                    # disjoint statically (element sets may overlap at run
                    # time); the A_nx shadow must decide.
                    statically_safe = False
            else:
                # Pure reduction array: statically valid when all subscripts
                # are affine and a single operator is involved — then no
                # run-time validation is needed (only the parallel reduction
                # execution itself).
                ops = {reductions.redux_refs[s.ref.ref_id] for s in own_sites}
                all_affine = all(
                    affine_of(s.ref.index, loop.var) is not None for s in own_sites
                )
                statically_safe = len(ops) == 1 and all_affine

        tested = written and not statically_safe
        plan.arrays[name] = ArrayPlan(
            name=name,
            written=written,
            statically_safe=statically_safe,
            tested=tested,
            has_reduction_refs=has_redux,
            has_non_reduction_writes=non_redux_writes,
        )
    return plan


def _array_statically_safe(loop: Do, sites, trip_count: int | None) -> bool:
    forms = []
    for site in sites:
        form = affine_of(site.ref.index, loop.var)
        if form is None:
            return False
        forms.append((site, form))
    for wsite, wform in forms:
        if not wsite.is_store:
            continue
        for site, form in forms:
            if site is wsite:
                continue
            if may_cross_depend(wform, form, trip_count):
                return False
    return True
