"""Static data dependence testing (the conventional parallelizing compiler).

Implements the classic subscript tests — the GCD test and the Banerjee
bounds test — over affine subscript pairs, plus a whole-loop verdict.
This is the compiler the paper's loops defeat: whenever a subscript is not
statically affine the verdict degrades to UNKNOWN, and a conventional
compiler must leave the loop serial.  The LRPD framework picks those loops
up at run time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.analysis.affine import Affine, affine_of
from repro.analysis.symtab import RefSite, iter_array_refs, summarize_body
from repro.dsl.ast_nodes import Do


class StaticVerdict(Enum):
    """Outcome of static analysis for a loop."""

    PARALLEL = "parallel"           # provably a doall
    NOT_PARALLEL = "not-parallel"   # provably has a cross-iteration dependence
    UNKNOWN = "unknown"             # statically insufficiently defined


class DepKind(Enum):
    FLOW = "flow"      # write then read
    ANTI = "anti"      # read then write
    OUTPUT = "output"  # write then write


@dataclass(frozen=True)
class StaticDependence:
    """A (possible) cross-iteration dependence found statically."""

    array: str
    kind: DepKind
    certain: bool  # True: dependence definitely exists for some i != j


@dataclass
class StaticReport:
    """The static parallelizer's result for one loop."""

    verdict: StaticVerdict
    dependences: list[StaticDependence] = field(default_factory=list)
    unknown_subscripts: list[str] = field(default_factory=list)
    carried_scalars: list[str] = field(default_factory=list)

    def explain(self) -> str:
        """Human-readable one-paragraph explanation."""
        parts = [f"verdict: {self.verdict.value}"]
        if self.unknown_subscripts:
            parts.append(
                "statically insufficient subscripts on: "
                + ", ".join(sorted(set(self.unknown_subscripts)))
            )
        if self.dependences:
            parts.append(
                "possible dependences: "
                + ", ".join(f"{d.array}({d.kind.value})" for d in self.dependences)
            )
        if self.carried_scalars:
            parts.append("loop-carried scalars: " + ", ".join(self.carried_scalars))
        return "; ".join(parts)


def gcd_test(a: Affine, b: Affine) -> bool:
    """GCD test: can ``a.coef*i + a.const == b.coef*j + b.const`` have an
    integer solution at all?  Returns True when a dependence is *possible*.
    """
    g = math.gcd(abs(a.coef), abs(b.coef))
    diff = b.const - a.const
    if g == 0:
        return diff == 0
    return diff % g == 0


def banerjee_test(a: Affine, b: Affine, n: int) -> bool:
    """Banerjee bounds test over ``i, j ∈ [1, n]``.

    Returns True when ``a(i) == b(j)`` may hold for some pair in range
    (conservatively, by interval arithmetic on ``a(i) - b(j)``).
    """
    lo = _affine_min(a, n) - _affine_max(b, n)
    hi = _affine_max(a, n) - _affine_min(b, n)
    return lo <= 0 <= hi


def _affine_min(f: Affine, n: int) -> int:
    return min(f.at(1), f.at(n))


def _affine_max(f: Affine, n: int) -> int:
    return max(f.at(1), f.at(n))


def cross_iteration_solution_exists(a: Affine, b: Affine, n: int) -> bool:
    """Exact check: is there ``i != j`` in ``[1, n]`` with a(i) == b(j)?

    Used both as the precise test for small known bounds and as the oracle
    in property tests of the conservative tests above.
    """
    # a(i) == b(j)  <=>  a.coef*i - b.coef*j == b.const - a.const
    for i in range(1, n + 1):
        value = a.at(i)
        if b.coef == 0:
            if value == b.const:
                for j in range(1, n + 1):
                    if j != i:
                        return True
            continue
        numerator = value - b.const
        if numerator % b.coef == 0:
            j = numerator // b.coef
            if 1 <= j <= n and j != i:
                return True
    return False


def may_cross_depend(a: Affine, b: Affine, n: int | None) -> bool:
    """Conservative: may iterations i != j touch the same element?

    Applies the GCD test, the Banerjee test (when ``n`` is known) and a
    special case for identical subscript functions: ``a == b`` with a
    nonzero coefficient maps distinct iterations to distinct elements.
    """
    if a == b and a.coef != 0:
        return False
    if not gcd_test(a, b):
        return False
    if n is not None:
        if not banerjee_test(a, b, n):
            return False
        if n <= 4096:  # exact for small, known iteration counts
            return cross_iteration_solution_exists(a, b, n)
    return True


def analyze_loop_statically(
    loop: Do,
    *,
    trip_count: int | None = None,
    reduction_stmt_ids: frozenset[int] = frozenset(),
) -> StaticReport:
    """Run the conventional static parallelizer on ``loop``.

    ``reduction_stmt_ids`` are ``id()``s of assignment statements already
    recognized (and transformable) as reductions; their references are
    excluded from the dependence check, matching a compiler that combines
    dependence testing with reduction substitution.

    Scalars assigned inside the loop are assumed privatizable when they are
    written before read on every path; an exposed read of a written scalar
    is reported as a loop-carried scalar dependence.
    """
    report = StaticReport(verdict=StaticVerdict.PARALLEL)
    refs = [
        site
        for site in iter_array_refs(loop.body)
        if site.stmt is None or id(site.stmt) not in reduction_stmt_ids
    ]
    refs = [
        site
        for site in refs
        if not (site.stmt is not None and id(site.stmt) in reduction_stmt_ids)
    ]

    affine_refs: dict[int, Affine] = {}
    for position, site in enumerate(refs):
        form = affine_of(site.ref.index, loop.var)
        if form is None:
            report.unknown_subscripts.append(site.ref.name)
        else:
            affine_refs[position] = form

    writers = [p for p, site in enumerate(refs) if site.is_store]
    for wp in writers:
        for p, site in enumerate(refs):
            if refs[wp].ref.name != site.ref.name:
                continue
            if p == wp:
                continue
            kind = _dep_kind(refs[wp], site, wp < p)
            if wp not in affine_refs or p not in affine_refs:
                # At least one side statically insufficient: unknown.
                report.dependences.append(
                    StaticDependence(site.ref.name, kind, certain=False)
                )
                report.verdict = StaticVerdict.UNKNOWN
                continue
            if may_cross_depend(affine_refs[wp], affine_refs[p], trip_count):
                report.dependences.append(
                    StaticDependence(site.ref.name, kind, certain=trip_count is not None)
                )
                if report.verdict is StaticVerdict.PARALLEL:
                    report.verdict = (
                        StaticVerdict.NOT_PARALLEL
                        if trip_count is not None
                        else StaticVerdict.UNKNOWN
                    )

    carried = _carried_scalars(loop)
    if carried:
        report.carried_scalars = sorted(carried)
        if report.verdict is StaticVerdict.PARALLEL:
            report.verdict = StaticVerdict.NOT_PARALLEL

    # Writes under non-affine subscripts are themselves unknown (possible
    # output dependences) even if no other reference pairs with them.
    if report.unknown_subscripts and report.verdict is StaticVerdict.PARALLEL:
        written_unknown = {
            site.ref.name
            for site in refs
            if site.is_store and affine_of(site.ref.index, loop.var) is None
        }
        if written_unknown:
            report.verdict = StaticVerdict.UNKNOWN
    return report


def _dep_kind(writer: RefSite, other: RefSite, writer_first: bool) -> DepKind:
    if other.is_store:
        return DepKind.OUTPUT
    return DepKind.FLOW if writer_first else DepKind.ANTI


def _carried_scalars(loop: Do) -> set[str]:
    """Scalars written in the body that may be read before being written.

    Computed by a definite-assignment walk over the body: a scalar read
    that is not definitely assigned earlier in the iteration, for a scalar
    that the body writes somewhere, is loop-carried (conservatively).
    Inner-loop variables are excluded (they are always written first).
    """
    from repro.analysis.liveness import exposed_scalar_reads

    summary = summarize_body(loop.body)
    written = summary.scalars_written - summary.inner_loop_vars - {loop.var}
    exposed = exposed_scalar_reads(loop.body, initial_assigned={loop.var})
    return {name for name in exposed if name in written}
