"""Data dependence testing: static subscript tests and run-time distances.

Implements the classic subscript tests — the GCD test and the Banerjee
bounds test — over affine subscript pairs, plus a whole-loop verdict.
This is the compiler the paper's loops defeat: whenever a subscript is not
statically affine the verdict degrades to UNKNOWN, and a conventional
compiler must leave the loop serial.  The LRPD framework picks those loops
up at run time.

The second half of this module runs *after* a failed LRPD test: the
shadow arrays the test populated carry, per element, the earliest write
granule and the earliest/latest exposed-read granules, which bound every
cross-iteration dependence distance the loop actually exercised.
:func:`measure_shadow_distances` folds them into one
:class:`DistanceReport` — the minimum distance is what the speculative
DOACROSS recovery tier synchronizes at, and the report's veto conditions
(distance ≤ 1 chains, multiply-written elements) are what make that
recovery safe to price.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.affine import Affine, affine_of
from repro.analysis.symtab import RefSite, iter_array_refs, summarize_body
from repro.dsl.ast_nodes import Do

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.shadow import ShadowMarker


class StaticVerdict(Enum):
    """Outcome of static analysis for a loop."""

    PARALLEL = "parallel"           # provably a doall
    NOT_PARALLEL = "not-parallel"   # provably has a cross-iteration dependence
    UNKNOWN = "unknown"             # statically insufficiently defined


class DepKind(Enum):
    FLOW = "flow"      # write then read
    ANTI = "anti"      # read then write
    OUTPUT = "output"  # write then write


@dataclass(frozen=True)
class StaticDependence:
    """A (possible) cross-iteration dependence found statically."""

    array: str
    kind: DepKind
    certain: bool  # True: dependence definitely exists for some i != j


@dataclass
class StaticReport:
    """The static parallelizer's result for one loop."""

    verdict: StaticVerdict
    dependences: list[StaticDependence] = field(default_factory=list)
    unknown_subscripts: list[str] = field(default_factory=list)
    carried_scalars: list[str] = field(default_factory=list)

    def explain(self) -> str:
        """Human-readable one-paragraph explanation."""
        parts = [f"verdict: {self.verdict.value}"]
        if self.unknown_subscripts:
            parts.append(
                "statically insufficient subscripts on: "
                + ", ".join(sorted(set(self.unknown_subscripts)))
            )
        if self.dependences:
            parts.append(
                "possible dependences: "
                + ", ".join(f"{d.array}({d.kind.value})" for d in self.dependences)
            )
        if self.carried_scalars:
            parts.append("loop-carried scalars: " + ", ".join(self.carried_scalars))
        return "; ".join(parts)


def gcd_test(a: Affine, b: Affine) -> bool:
    """GCD test: can ``a.coef*i + a.const == b.coef*j + b.const`` have an
    integer solution at all?  Returns True when a dependence is *possible*.
    """
    g = math.gcd(abs(a.coef), abs(b.coef))
    diff = b.const - a.const
    if g == 0:
        return diff == 0
    return diff % g == 0


def banerjee_test(a: Affine, b: Affine, n: int) -> bool:
    """Banerjee bounds test over ``i, j ∈ [1, n]``.

    Returns True when ``a(i) == b(j)`` may hold for some pair in range
    (conservatively, by interval arithmetic on ``a(i) - b(j)``).
    """
    lo = _affine_min(a, n) - _affine_max(b, n)
    hi = _affine_max(a, n) - _affine_min(b, n)
    return lo <= 0 <= hi


def _affine_min(f: Affine, n: int) -> int:
    return min(f.at(1), f.at(n))


def _affine_max(f: Affine, n: int) -> int:
    return max(f.at(1), f.at(n))


def cross_iteration_solution_exists(a: Affine, b: Affine, n: int) -> bool:
    """Exact check: is there ``i != j`` in ``[1, n]`` with a(i) == b(j)?

    Used both as the precise test for small known bounds and as the oracle
    in property tests of the conservative tests above.
    """
    # a(i) == b(j)  <=>  a.coef*i - b.coef*j == b.const - a.const
    for i in range(1, n + 1):
        value = a.at(i)
        if b.coef == 0:
            if value == b.const:
                for j in range(1, n + 1):
                    if j != i:
                        return True
            continue
        numerator = value - b.const
        if numerator % b.coef == 0:
            j = numerator // b.coef
            if 1 <= j <= n and j != i:
                return True
    return False


def may_cross_depend(a: Affine, b: Affine, n: int | None) -> bool:
    """Conservative: may iterations i != j touch the same element?

    Applies the GCD test, the Banerjee test (when ``n`` is known) and a
    special case for identical subscript functions: ``a == b`` with a
    nonzero coefficient maps distinct iterations to distinct elements.
    """
    if a == b and a.coef != 0:
        return False
    if not gcd_test(a, b):
        return False
    if n is not None:
        if not banerjee_test(a, b, n):
            return False
        if n <= 4096:  # exact for small, known iteration counts
            return cross_iteration_solution_exists(a, b, n)
    return True


def analyze_loop_statically(
    loop: Do,
    *,
    trip_count: int | None = None,
    reduction_stmt_ids: frozenset[int] = frozenset(),
) -> StaticReport:
    """Run the conventional static parallelizer on ``loop``.

    ``reduction_stmt_ids`` are ``id()``s of assignment statements already
    recognized (and transformable) as reductions; their references are
    excluded from the dependence check, matching a compiler that combines
    dependence testing with reduction substitution.

    Scalars assigned inside the loop are assumed privatizable when they are
    written before read on every path; an exposed read of a written scalar
    is reported as a loop-carried scalar dependence.
    """
    report = StaticReport(verdict=StaticVerdict.PARALLEL)
    refs = [
        site
        for site in iter_array_refs(loop.body)
        if site.stmt is None or id(site.stmt) not in reduction_stmt_ids
    ]
    refs = [
        site
        for site in refs
        if not (site.stmt is not None and id(site.stmt) in reduction_stmt_ids)
    ]

    affine_refs: dict[int, Affine] = {}
    for position, site in enumerate(refs):
        form = affine_of(site.ref.index, loop.var)
        if form is None:
            report.unknown_subscripts.append(site.ref.name)
        else:
            affine_refs[position] = form

    writers = [p for p, site in enumerate(refs) if site.is_store]
    for wp in writers:
        for p, site in enumerate(refs):
            if refs[wp].ref.name != site.ref.name:
                continue
            if p == wp:
                continue
            kind = _dep_kind(refs[wp], site, wp < p)
            if wp not in affine_refs or p not in affine_refs:
                # At least one side statically insufficient: unknown.
                report.dependences.append(
                    StaticDependence(site.ref.name, kind, certain=False)
                )
                report.verdict = StaticVerdict.UNKNOWN
                continue
            if may_cross_depend(affine_refs[wp], affine_refs[p], trip_count):
                report.dependences.append(
                    StaticDependence(site.ref.name, kind, certain=trip_count is not None)
                )
                if report.verdict is StaticVerdict.PARALLEL:
                    report.verdict = (
                        StaticVerdict.NOT_PARALLEL
                        if trip_count is not None
                        else StaticVerdict.UNKNOWN
                    )

    carried = _carried_scalars(loop)
    if carried:
        report.carried_scalars = sorted(carried)
        if report.verdict is StaticVerdict.PARALLEL:
            report.verdict = StaticVerdict.NOT_PARALLEL

    # Writes under non-affine subscripts are themselves unknown (possible
    # output dependences) even if no other reference pairs with them.
    if report.unknown_subscripts and report.verdict is StaticVerdict.PARALLEL:
        written_unknown = {
            site.ref.name
            for site in refs
            if site.is_store and affine_of(site.ref.index, loop.var) is None
        }
        if written_unknown:
            report.verdict = StaticVerdict.UNKNOWN
    return report


def _dep_kind(writer: RefSite, other: RefSite, writer_first: bool) -> DepKind:
    if other.is_store:
        return DepKind.OUTPUT
    return DepKind.FLOW if writer_first else DepKind.ANTI


# ---------------------------------------------------------------------------
# Run-time dependence distances from merged shadow arrays
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ElementDistance:
    """One shadow element's contribution to the loop dependence distance.

    ``exact`` is True when the distance is the element's true minimum
    (singly-written element whose exposed reads all follow the write);
    otherwise it is a safe lower bound of 1.
    """

    array: str
    element: int
    kind: DepKind
    distance: int
    exact: bool


@dataclass
class DistanceReport:
    """Run-time dependence distances measured from one failed LRPD run.

    Granule numbering must follow serial order (iteration-wise marking),
    so a distance of ``d`` means "iteration ``i`` may depend on
    iteration ``i - d`` and nothing closer".  Elements written by more
    than one granule (output dependences) and reduction/ordinary mixes
    serialize at distance 1 conservatively.
    """

    num_granules: int
    distances: list[ElementDistance] = field(default_factory=list)
    #: elements written by >1 granule — pipelining must assume the
    #: tightest chain for them (they contribute distance 1 above).
    multi_written: int = 0

    @property
    def min_distance(self) -> int | None:
        """The loop's minimum cross-iteration distance (None: no
        cross-granule dependence was measured at all)."""
        if not self.distances:
            return None
        return min(entry.distance for entry in self.distances)

    def pipelinable(self) -> bool:
        """True when post/wait at :attr:`min_distance` buys real overlap
        — i.e. some dependence was measured and none forms a distance-≤1
        serial chain."""
        d = self.min_distance
        return d is not None and d > 1

    def explain(self) -> str:
        d = self.min_distance
        if d is None:
            return "no cross-iteration dependence measured"
        exact = all(entry.exact for entry in self.distances)
        tightest = min(self.distances, key=lambda entry: entry.distance)
        return (
            f"min dependence distance {d}"
            f"{' (exact)' if exact else ' (lower bound)'} at "
            f"{tightest.array}[{tightest.element}] ({tightest.kind.value}); "
            f"{len(self.distances)} dependent element(s), "
            f"{self.multi_written} multiply written"
        )


def measure_shadow_distances(
    marker: "ShadowMarker", num_granules: int
) -> DistanceReport:
    """Extract per-element minimum dependence distances from shadows.

    For each element with a cross-granule conflict the directional
    stamps give the distance the LRPD run actually exercised:

    - singly-written element, all exposed reads after the write → the
      exact flow distance ``min_exposed_read - min_write``;
    - singly-written element, all exposed reads before the write → the
      exact anti distance ``min_write - max_exposed_read`` (a pipelined
      re-execution without privatization must respect it);
    - reads straddling the write, multiply-written elements, and
      reduction/ordinary mixes → a conservative distance of 1.

    Elements never written, or only touched by one granule, carry no
    cross-iteration dependence and are skipped — as are consistent
    reduction elements (recovery re-executes them in granule order,
    which any distance permits, so they never tighten the wavefront).
    """
    report = DistanceReport(num_granules=num_granules)
    for shadow in marker.shadows.values():
        min_w = shadow.min_write_granules()
        min_r = shadow.min_exposed_read_granules()
        max_r = shadow.max_exposed_read_granules()
        flow = shadow.flow_mask()
        redux_mixed = shadow.redux_touched & shadow.nx
        multi = shadow.multi_w
        report.multi_written += int(np.count_nonzero(multi))
        # Consistent reductions look like flows to the directional stamps
        # (their RMW reads trail their first write) but recovery folds them
        # in granule order, which any distance permits — drop them.
        consistent_redux = shadow.reduction_mask()
        conflict = ((flow & ~consistent_redux) | redux_mixed | multi) & shadow.w
        anti = (
            shadow.w & shadow.np_ & ~conflict & (max_r >= 0)
            & ~shadow.redux_touched
        )
        for element in np.flatnonzero(conflict | anti):
            e = int(element)
            if multi[e] or redux_mixed[e]:
                kind = DepKind.OUTPUT if multi[e] else DepKind.FLOW
                report.distances.append(
                    ElementDistance(shadow.name, e, kind, 1, exact=False)
                )
                continue
            w0 = int(min_w[e])
            if anti[e]:
                # All exposed reads precede the (single) write.
                if int(max_r[e]) < w0:
                    report.distances.append(ElementDistance(
                        shadow.name, e, DepKind.ANTI,
                        w0 - int(max_r[e]), exact=True,
                    ))
                continue
            if int(min_r[e]) > w0:
                report.distances.append(ElementDistance(
                    shadow.name, e, DepKind.FLOW,
                    int(min_r[e]) - w0, exact=True,
                ))
            else:
                # Exposed reads straddle the write: some flow distance
                # exists but the stamps cannot separate it from the anti
                # side — assume the tightest chain.
                report.distances.append(ElementDistance(
                    shadow.name, e, DepKind.FLOW, 1, exact=False
                ))
    return report


def _carried_scalars(loop: Do) -> set[str]:
    """Scalars written in the body that may be read before being written.

    Computed by a definite-assignment walk over the body: a scalar read
    that is not definitely assigned earlier in the iteration, for a scalar
    that the body writes somewhere, is loop-carried (conservatively).
    Inner-loop variables are excluded (they are always written first).
    """
    from repro.analysis.liveness import exposed_scalar_reads

    summary = summarize_body(loop.body)
    written = summary.scalars_written - summary.inner_loop_vars - {loop.var}
    exposed = exposed_scalar_reads(loop.body, initial_assigned={loop.var})
    return {name for name in exposed if name in written}
