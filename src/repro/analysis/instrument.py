"""Reference numbering, inspector slicing and the instrumentation plan.

This is the last compiler stage: it combines the static dependence
verdict, reduction recognition and variable classification into a single
:class:`InstrumentationPlan` that the run-time system (speculative or
inspector/executor) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import ScalarClass, TransformPlan, plan_transforms
from repro.analysis.dependence import (
    StaticReport,
    StaticVerdict,
    analyze_loop_statically,
)
from repro.analysis.liveness import scalars_read_after
from repro.analysis.reduction import ReductionReport, find_reductions
from repro.analysis.symtab import iter_array_refs, scalar_reads_in, summarize_body
from repro.dsl.ast_nodes import (
    ArrayRef,
    Assign,
    Do,
    If,
    Program,
    Stmt,
    Var,
    While,
    walk_expressions,
)
from repro.interp.interpreter import find_target_loop, split_at_loop


def number_refs(program: Program) -> int:
    """Assign a unique ``ref_id`` to every array reference; returns count."""
    counter = 0
    for stmt in _walk_program(program.body):
        for root in _stmt_expr_roots(stmt):
            for node in walk_expressions(root):
                if isinstance(node, ArrayRef):
                    node.ref_id = counter
                    counter += 1
    return counter


def _walk_program(body: list[Stmt]):
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk_program(stmt.then_body)
            yield from _walk_program(stmt.else_body)
        elif isinstance(stmt, (Do, While)):
            yield from _walk_program(stmt.body)


def _stmt_expr_roots(stmt: Stmt):
    if isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.expr
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, Do):
        yield stmt.start
        yield stmt.stop
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, While):
        yield stmt.cond


@dataclass
class InstrumentationPlan:
    """Everything the run-time system needs to know about one loop."""

    loop: Do
    tested_arrays: frozenset[str]
    reduction_arrays: frozenset[str]
    redux_refs: dict[int, str]
    scalar_classes: dict[str, ScalarClass]
    scalar_reductions: dict[str, str]
    checkpoint_arrays: frozenset[str]
    live_out_scalars: frozenset[str]
    static_report: StaticReport
    transform_plan: TransformPlan
    reductions: ReductionReport
    inspector_extractable: bool
    inspector_obstacles: list[str] = field(default_factory=list)
    slice_stmt_ids: frozenset[int] = frozenset()
    #: written work arrays the inspector recomputes into private scratch.
    inspector_recompute_arrays: frozenset[str] = frozenset()

    @property
    def statically_parallel(self) -> bool:
        return self.static_report.verdict is StaticVerdict.PARALLEL

    @property
    def parallelizable_scalars(self) -> bool:
        """False when a loop-carried (non-reduction) scalar blocks the loop."""
        return not any(
            cls is ScalarClass.CARRIED for cls in self.scalar_classes.values()
        )

    def summary(self) -> str:
        """Short human-readable plan description."""
        parts = [
            f"tested={sorted(self.tested_arrays)}",
            f"reductions={sorted(self.reduction_arrays)}",
            f"scalar_reductions={sorted(self.scalar_reductions)}",
            f"static={self.static_report.verdict.value}",
            f"inspector={'yes' if self.inspector_extractable else 'no'}",
        ]
        return ", ".join(parts)


def build_plan(program: Program, loop: Do | None = None, *,
               trip_count: int | None = None) -> InstrumentationPlan:
    """Run the full compiler pipeline for ``program``'s target loop."""
    number_refs(program)
    if loop is None:
        loop = find_target_loop(program)

    _before, after = split_at_loop(program, loop)
    live_out = frozenset(scalars_read_after(after))

    summary = summarize_body(loop.body)
    written_arrays = frozenset(summary.arrays_written)

    reductions = find_reductions(loop, set(written_arrays), live_out)
    static_report = analyze_loop_statically(
        loop,
        trip_count=trip_count,
        reduction_stmt_ids=reductions.reduction_stmt_ids,
    )
    transform_plan = plan_transforms(loop, reductions, trip_count=trip_count)

    tested = frozenset(transform_plan.tested_arrays)
    slice_ids, recompute, extractable, obstacles = _inspector_slice(
        loop, tested, transform_plan, written_arrays
    )

    return InstrumentationPlan(
        loop=loop,
        tested_arrays=tested,
        reduction_arrays=frozenset(transform_plan.reduction_arrays),
        redux_refs=dict(reductions.redux_refs),
        scalar_classes=dict(transform_plan.scalar_classes),
        scalar_reductions=dict(reductions.scalar_reductions),
        checkpoint_arrays=written_arrays,
        live_out_scalars=live_out,
        static_report=static_report,
        transform_plan=transform_plan,
        reductions=reductions,
        inspector_extractable=extractable,
        inspector_obstacles=obstacles,
        slice_stmt_ids=slice_ids,
        inspector_recompute_arrays=recompute,
    )


def _inspector_slice(
    loop: Do,
    tested: frozenset[str],
    transform_plan: TransformPlan,
    written_arrays: frozenset[str],
) -> tuple[frozenset[int], frozenset[str], bool, list[str]]:
    """Compute the address/control slice and inspector extractability.

    The inspector must recompute every tested-array address and replay the
    loop's control flow without the loop's global side effects.  Written
    arrays in the backward slice are allowed only when they are
    per-iteration work arrays (whole-array written-before-read): the
    inspector then *recomputes* them into private scratch storage (the
    BDNA ``ind`` situation).  A written slice array that may be read
    before the iteration writes it carries values across iterations —
    the TRACK situation — and makes the inspector inextractable, as do
    order-dependent scalars in the slice.

    Returns (slice statement ids, recomputed arrays, extractable,
    obstacles).
    """
    from repro.analysis.liveness import array_exposed_reads

    seeds: set[str] = set()
    arrays_needed: set[str] = set()

    def absorb_expr(expr) -> None:
        seeds.update(scalar_reads_in(expr))
        for node in walk_expressions(expr):
            if isinstance(node, ArrayRef):
                arrays_needed.add(node.name)

    for site in iter_array_refs(loop.body):
        if site.ref.name in tested:
            absorb_expr(site.ref.index)
    for stmt in _walk_program(loop.body):
        if isinstance(stmt, If):
            absorb_expr(stmt.cond)
        elif isinstance(stmt, Do):
            absorb_expr(stmt.start)
            absorb_expr(stmt.stop)
            if stmt.step is not None:
                absorb_expr(stmt.step)
        elif isinstance(stmt, While):
            absorb_expr(stmt.cond)

    exposed_arrays = array_exposed_reads(loop.body)
    closure = set(seeds)
    slice_ids: set[int] = set()
    recompute: set[str] = set()
    blocked: set[str] = set()

    changed = True
    while changed:
        changed = False
        for name in sorted((arrays_needed & set(written_arrays)) - recompute - blocked):
            if name in exposed_arrays:
                blocked.add(name)
            else:
                recompute.add(name)
            changed = True
        for stmt in _walk_program(loop.body):
            if not isinstance(stmt, Assign) or id(stmt) in slice_ids:
                continue
            target = stmt.target
            in_slice = (
                isinstance(target, Var) and target.name in closure
            ) or (isinstance(target, ArrayRef) and target.name in recompute)
            if not in_slice:
                continue
            slice_ids.add(id(stmt))
            changed = True
            closure |= scalar_reads_in(stmt.expr)
            if isinstance(target, ArrayRef):
                closure |= scalar_reads_in(target.index)
            for root in ([target.index] if isinstance(target, ArrayRef) else []) + [stmt.expr]:
                for node in walk_expressions(root):
                    if isinstance(node, ArrayRef):
                        arrays_needed.add(node.name)

    obstacles: list[str] = []
    if blocked:
        obstacles.append(
            "addresses/control depend on values the loop computes across "
            "iterations (arrays: " + ", ".join(sorted(blocked)) + ")"
        )
    order_dependent = {
        name
        for name in closure
        if transform_plan.scalar_classes.get(name)
        in (ScalarClass.CARRIED, ScalarClass.REDUCTION)
    }
    if order_dependent:
        obstacles.append(
            "addresses/control depend on order-dependent scalars: "
            + ", ".join(sorted(order_dependent))
        )

    return frozenset(slice_ids), frozenset(recompute), not obstacles, obstacles


def require_inspector(plan: InstrumentationPlan) -> None:
    """Raise :class:`AnalysisError` when the inspector cannot be extracted."""
    if not plan.inspector_extractable:
        from repro.errors import InspectorNotExtractable

        raise InspectorNotExtractable(
            "; ".join(plan.inspector_obstacles) or "inspector not extractable"
        )
