"""Definite-assignment and liveness helpers for scalars.

Used to decide scalar privatizability (a scalar written before any read on
every path through an iteration is private to the iteration) and to find
exposed reads (potential loop-carried scalar dependences).
"""

from __future__ import annotations

from repro.dsl.ast_nodes import (
    ArrayRef,
    Assign,
    Do,
    Expr,
    If,
    Stmt,
    Var,
    While,
    walk_expressions,
)


def exposed_scalar_reads(
    body: list[Stmt], initial_assigned: set[str] | frozenset[str] = frozenset()
) -> set[str]:
    """Scalars that may be read before being assigned in ``body``.

    Conservative in the safe direction: a read is counted as exposed
    unless the scalar is *definitely* assigned on every path reaching it.
    Bodies of inner loops are analyzed as if they may execute zero times,
    except that reads inside an inner loop may see assignments made
    earlier in the same inner body pass (standard init-then-accumulate
    patterns are therefore not flagged).
    """
    assigned = set(initial_assigned)
    exposed: set[str] = set()
    _scan_block(body, assigned, exposed)
    return exposed


def _scan_block(body: list[Stmt], assigned: set[str], exposed: set[str]) -> None:
    for stmt in body:
        _scan_stmt(stmt, assigned, exposed)


def _scan_stmt(stmt: Stmt, assigned: set[str], exposed: set[str]) -> None:
    if isinstance(stmt, Assign):
        if isinstance(stmt.target, ArrayRef):
            _scan_expr(stmt.target.index, assigned, exposed)
        _scan_expr(stmt.expr, assigned, exposed)
        if isinstance(stmt.target, Var):
            assigned.add(stmt.target.name)
    elif isinstance(stmt, If):
        _scan_expr(stmt.cond, assigned, exposed)
        then_assigned = set(assigned)
        else_assigned = set(assigned)
        _scan_block(stmt.then_body, then_assigned, exposed)
        _scan_block(stmt.else_body, else_assigned, exposed)
        assigned |= then_assigned & else_assigned
    elif isinstance(stmt, Do):
        _scan_expr(stmt.start, assigned, exposed)
        _scan_expr(stmt.stop, assigned, exposed)
        if stmt.step is not None:
            _scan_expr(stmt.step, assigned, exposed)
        inner = set(assigned)
        inner.add(stmt.var)
        _scan_block(stmt.body, inner, exposed)
        # The loop may execute zero times: only the loop variable is
        # definitely assigned afterwards.
        assigned.add(stmt.var)
    elif isinstance(stmt, While):
        _scan_expr(stmt.cond, assigned, exposed)
        inner = set(assigned)
        _scan_block(stmt.body, inner, exposed)
    else:
        raise TypeError(f"not a statement: {stmt!r}")


def _scan_expr(expr: Expr, assigned: set[str], exposed: set[str]) -> None:
    for node in walk_expressions(expr):
        if isinstance(node, Var) and node.name not in assigned:
            exposed.add(node.name)


def array_exposed_reads(body: list[Stmt]) -> set[str]:
    """Arrays that may be read before being written, at whole-array
    granularity.

    Any write to an array counts as defining the whole array, and loop
    bodies are assumed to execute at least once.  This is a *heuristic*
    used only to decide whether the inspector may recompute a written
    work array into scratch storage (BDNA-style ``ind``): if the array
    can be read before the iteration writes it, its slice values may flow
    from other iterations and the inspector cannot reproduce them (the
    TRACK situation).  Soundness does not rest on this heuristic — the
    run-time test validates the actual access pattern either way.
    """
    assigned: set[str] = set()
    exposed: set[str] = set()
    _scan_arrays_block(body, assigned, exposed)
    return exposed


def _scan_arrays_block(body: list[Stmt], assigned: set[str], exposed: set[str]) -> None:
    for stmt in body:
        _scan_arrays_stmt(stmt, assigned, exposed)


def _scan_arrays_stmt(stmt: Stmt, assigned: set[str], exposed: set[str]) -> None:
    if isinstance(stmt, Assign):
        if isinstance(stmt.target, ArrayRef):
            _array_reads(stmt.target.index, assigned, exposed)
        _array_reads(stmt.expr, assigned, exposed)
        if isinstance(stmt.target, ArrayRef):
            assigned.add(stmt.target.name)
    elif isinstance(stmt, If):
        _array_reads(stmt.cond, assigned, exposed)
        then_assigned = set(assigned)
        else_assigned = set(assigned)
        _scan_arrays_block(stmt.then_body, then_assigned, exposed)
        _scan_arrays_block(stmt.else_body, else_assigned, exposed)
        assigned |= then_assigned & else_assigned
    elif isinstance(stmt, Do):
        for bound in (stmt.start, stmt.stop, stmt.step):
            if bound is not None:
                _array_reads(bound, assigned, exposed)
        # Optimistic: the loop body runs at least once (heuristic use only).
        _scan_arrays_block(stmt.body, assigned, exposed)
    elif isinstance(stmt, While):
        _array_reads(stmt.cond, assigned, exposed)
        _scan_arrays_block(stmt.body, assigned, exposed)


def _array_reads(expr: Expr, assigned: set[str], exposed: set[str]) -> None:
    for node in walk_expressions(expr):
        if isinstance(node, ArrayRef) and node.name not in assigned:
            exposed.add(node.name)


def scalars_read_after(body: list[Stmt]) -> set[str]:
    """All scalar names read anywhere in ``body`` (used for live-out sets)."""
    out: set[str] = set()
    for stmt in body:
        _collect_reads(stmt, out)
    return out


def _collect_reads(stmt: Stmt, out: set[str]) -> None:
    if isinstance(stmt, Assign):
        if isinstance(stmt.target, ArrayRef):
            _all_vars(stmt.target.index, out)
        _all_vars(stmt.expr, out)
    elif isinstance(stmt, If):
        _all_vars(stmt.cond, out)
        for child in stmt.then_body:
            _collect_reads(child, out)
        for child in stmt.else_body:
            _collect_reads(child, out)
    elif isinstance(stmt, Do):
        _all_vars(stmt.start, out)
        _all_vars(stmt.stop, out)
        if stmt.step is not None:
            _all_vars(stmt.step, out)
        for child in stmt.body:
            _collect_reads(child, out)
    elif isinstance(stmt, While):
        _all_vars(stmt.cond, out)
        for child in stmt.body:
            _collect_reads(child, out)


def _all_vars(expr: Expr, out: set[str]) -> None:
    for node in walk_expressions(expr):
        if isinstance(node, Var):
            out.add(node.name)
