"""Reduction recognition, including the paper's forward-substitution method.

Two recognizers are provided:

* :func:`syntactic_reductions` — the conventional compile-time approach:
  match statements of the exact form ``A(e) = A(e) op c``.  This is the
  baseline the paper improves on.
* :func:`find_reductions` — the paper's method (§IV): demand-driven
  forward substitution of scalar right-hand sides, with control
  dependences converted to data dependences (gated/gamma values).  It
  recognizes reductions whose value flows through private scalar
  temporaries and statically unpredictable control flow — the SPICE
  ``LOAD`` idiom — and reductions nested in inner loops.

Recognition produces *candidates*: the run-time LRPD test still validates
(via the ``A_nx`` shadow) that each array element was touched only by
reduction statements with a consistent operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sym import (
    SConst,
    SDef,
    SGamma,
    SInit,
    SLoad,
    SOp,
    SUnknown,
    SymExpr,
    contains_array_load,
    contains_init,
    gamma_leaves,
    inits_in,
    loads_in,
    make_op,
)
from repro.analysis.symtab import summarize_body
from repro.dsl.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    Expr,
    If,
    Num,
    Stmt,
    UnaryOp,
    Var,
    While,
    expr_key,
)

REDUCTION_OPS = ("+", "*", "min", "max")

#: Marker for a control path that leaves the element unchanged.
_IDENTITY = "id"


@dataclass(frozen=True)
class ReductionCandidate:
    """A validated-at-compile-time reduction update site."""

    array: str
    op: str
    store_ref_id: int
    load_ref_ids: frozenset[int]
    line: int


@dataclass
class ReductionReport:
    """Everything reduction recognition learned about a loop body."""

    candidates: list[ReductionCandidate] = field(default_factory=list)
    scalar_reductions: dict[str, str] = field(default_factory=dict)  # name -> op
    #: ref_id -> operator for every reference inside a validated reduction
    #: statement (both the load and the store side); consumed by the
    #: interpreter's marking and by the access router.
    redux_refs: dict[int, str] = field(default_factory=dict)
    #: id() of each validated reduction Assign statement.
    reduction_stmt_ids: frozenset[int] = frozenset()
    #: demand-driven substitution counters: scalar definitions recorded
    #: during symbolic execution vs. actually expanded at a demand point.
    #: ``defs_expanded < defs_recorded`` whenever a definition died
    #: (was overwritten) before any observable use.
    defs_recorded: int = 0
    defs_expanded: int = 0

    def arrays(self) -> set[str]:
        return {c.array for c in self.candidates}


# ---------------------------------------------------------------------------
# Baseline: purely syntactic matching
# ---------------------------------------------------------------------------


def syntactic_reductions(body: list[Stmt], candidate_arrays: set[str]) -> list[Assign]:
    """Statements of the literal form ``A(e) = A(e) op c`` (c free of A).

    No forward substitution, no control-flow reasoning: this is the
    pattern-matching baseline of conventional compilers.
    """
    matches: list[Assign] = []
    for stmt in _walk(body):
        if not isinstance(stmt, Assign) or not isinstance(stmt.target, ArrayRef):
            continue
        array = stmt.target.name
        if array not in candidate_arrays:
            continue
        if _syntactic_op(stmt) is not None:
            matches.append(stmt)
    return matches


def _syntactic_op(stmt: Assign) -> str | None:
    target = stmt.target
    assert isinstance(target, ArrayRef)
    expr = stmt.expr
    target_key = expr_key(target)

    def is_self(e: Expr) -> bool:
        return expr_key(e) == target_key

    def free_of_array(e: Expr) -> bool:
        from repro.analysis.symtab import arrays_in

        return target.name not in arrays_in(e)

    if isinstance(expr, BinOp) and expr.op in ("+", "-", "*"):
        if is_self(expr.left) and free_of_array(expr.right):
            return "+" if expr.op in ("+", "-") else "*"
        if expr.op in ("+", "*") and is_self(expr.right) and free_of_array(expr.left):
            return "+" if expr.op == "+" else "*"
    if isinstance(expr, Call) and expr.func in ("min", "max"):
        a, b = expr.args
        if is_self(a) and free_of_array(b):
            return expr.func
        if is_self(b) and free_of_array(a):
            return expr.func
    return None


def _walk(body: list[Stmt]):
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk(stmt.then_body)
            yield from _walk(stmt.else_body)
        elif isinstance(stmt, (Do, While)):
            yield from _walk(stmt.body)


# ---------------------------------------------------------------------------
# The paper's method: forward substitution with gated merges
# ---------------------------------------------------------------------------


@dataclass
class _StoreRecord:
    array: str
    sub: SymExpr
    rhs: SymExpr
    store_ref_id: int
    stmt: Assign


@dataclass
class _ScalarDef:
    """One recorded scalar assignment, unexpanded.

    The right-hand side stays AST; ``env`` and ``versions`` snapshot the
    scalar bindings and array store counters it closes over, so the
    definition can be expanded later with exactly the values it would
    have seen at assignment time.
    """

    expr: Expr
    env: dict[str, SymExpr]
    versions: dict[str, int]


class _SymExec:
    """Demand-driven symbolic execution of one loop iteration.

    Scalar assignments are *recorded*, not evaluated: the environment
    binds the name to an :class:`~repro.analysis.sym.SDef` placeholder
    and the right-hand side is kept as unevaluated AST together with a
    snapshot of the bindings it closes over (:class:`_ScalarDef`).
    Forward substitution happens only when a value reaches a *demand
    point* — a store's subscript or right-hand side, a branch or loop
    condition, an inner loop's exit merge, or the end-of-iteration
    finals (:meth:`finalize`) — which is the paper's demand-driven
    formulation of the GSSA substitution (§IV): a definition that is
    overwritten before any observable use is never expanded, and its
    array subscripts never pollute the escaped sets.
    """

    def __init__(self) -> None:
        self.env: dict[str, SymExpr] = {}
        self.stores: list[_StoreRecord] = []
        self.escaped_loads: set[int] = set()
        self.escaped_inits: set[str] = set()
        self._array_version: dict[str, int] = {}
        self._scalar_version: dict[str, int] = {}
        self._defs: dict[tuple[str, int], _ScalarDef] = {}
        self._expanded: dict[tuple[str, int], SymExpr] = {}

    @property
    def defs_recorded(self) -> int:
        return len(self._defs)

    @property
    def defs_expanded(self) -> int:
        return len(self._expanded)

    # -- statements -------------------------------------------------------

    def exec_block(self, body: list[Stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self._exec_assign(stmt)
        elif isinstance(stmt, If):
            self._exec_if(stmt)
        elif isinstance(stmt, Do):
            self._exec_inner_loop(stmt, bounds=(stmt.start, stmt.stop, stmt.step))
        elif isinstance(stmt, While):
            self._escape(self.resolve(self.eval(stmt.cond)))
            self._exec_inner_loop(stmt, bounds=())
        else:
            raise TypeError(f"not a statement: {stmt!r}")

    def _exec_assign(self, stmt: Assign) -> None:
        if isinstance(stmt.target, Var):
            # Record, don't expand: the value may be dead.
            name = stmt.target.name
            version = self._scalar_version.get(name, 0)
            self._scalar_version[name] = version + 1
            self._defs[(name, version)] = _ScalarDef(
                expr=stmt.expr,
                env=dict(self.env),
                versions=dict(self._array_version),
            )
            self.env[name] = SDef(name, version)
            return
        # A store is a demand point for both its value and its subscript.
        target = stmt.target
        rhs = self.resolve(self.eval(stmt.expr))
        sub = self.resolve(self.eval(target.index))
        self._escape(sub)
        self.stores.append(
            _StoreRecord(
                array=target.name,
                sub=sub,
                rhs=rhs,
                store_ref_id=target.ref_id,
                stmt=stmt,
            )
        )
        # Later loads of this array may observe the new value.
        self._array_version[target.name] = self._array_version.get(target.name, 0) + 1

    def _exec_if(self, stmt: If) -> None:
        cond = self.resolve(self.eval(stmt.cond))
        self._escape(cond)
        before = dict(self.env)
        self.exec_block(stmt.then_body)
        then_env = self.env
        self.env = dict(before)
        self.exec_block(stmt.else_body)
        else_env = self.env
        merged: dict[str, SymExpr] = {}
        for name in set(then_env) | set(else_env):
            then_value = then_env.get(name, before.get(name, SInit(name)))
            else_value = else_env.get(name, before.get(name, SInit(name)))
            if then_value == else_value:
                merged[name] = then_value
            else:
                merged[name] = SGamma(cond, then_value, else_value)
        self.env = merged

    def _exec_inner_loop(self, stmt: Do | While, bounds: tuple) -> None:
        for bound in bounds:
            if bound is not None:
                self._escape(self.resolve(self.eval(bound)))
        body = stmt.body
        summary = summarize_body(body)
        assigned = set(summary.scalars_written)
        if isinstance(stmt, Do):
            assigned.add(stmt.var)

        before = dict(self.env)
        # Previous-inner-iteration values are unknown.
        unknowns = {name: SUnknown() for name in assigned}
        self.env.update(unknowns)
        self.exec_block(body)

        # The exit merge demands each assigned scalar's final value.
        after = self.env
        merged = dict(before)
        for name in assigned:
            pre = before.get(name, SInit(name))
            final = self.resolve(after.get(name, unknowns[name]))
            op = _accumulation_op(final, unknowns[name])
            if op == _IDENTITY:
                merged[name] = pre
            elif op is not None:
                # The loop's net effect is pre ⊕ (opaque contribution); a
                # zero-trip loop leaves pre, which also matches pre ⊕ id.
                merged[name] = SGamma(SUnknown(), pre, make_op(op, (pre, SUnknown())))
            else:
                merged[name] = SUnknown()
        self.env = merged

    def finalize(self) -> None:
        """Demand every end-of-iteration scalar final, in place.

        Called once after the body executes, before the driver inspects
        the environment: scalar finals are observable (they feed the
        next iteration), so their definitions must be expanded.  Dead
        intermediate definitions stay unexpanded.
        """
        for name, value in list(self.env.items()):
            self.env[name] = self.resolve(value)

    # -- expressions ---------------------------------------------------------

    def eval(
        self,
        expr: Expr,
        env: dict[str, SymExpr] | None = None,
        versions: dict[str, int] | None = None,
    ) -> SymExpr:
        """Evaluate AST to a symbolic value, without expanding definitions.

        ``env``/``versions`` default to the live execution state; a
        definition being expanded passes its snapshots instead.  The
        result may contain :class:`SDef` placeholders — demand points
        push it through :meth:`resolve`.
        """
        if env is None:
            env = self.env
        if versions is None:
            versions = self._array_version
        if isinstance(expr, Num):
            return SConst(int(expr.value) if expr.is_int else expr.value)
        if isinstance(expr, Var):
            return env.get(expr.name, SInit(expr.name))
        if isinstance(expr, ArrayRef):
            sub = self.eval(expr.index, env, versions)
            self._escape(sub)
            return SLoad(expr.ref_id, expr.name, sub, versions.get(expr.name, 0))
        if isinstance(expr, BinOp):
            return make_op(
                expr.op,
                (self.eval(expr.left, env, versions), self.eval(expr.right, env, versions)),
            )
        if isinstance(expr, UnaryOp):
            if expr.op == "-":
                return make_op("neg", (self.eval(expr.operand, env, versions),))
            return make_op("not", (self.eval(expr.operand, env, versions),))
        if isinstance(expr, Call):
            return make_op(
                expr.func, tuple(self.eval(a, env, versions) for a in expr.args)
            )
        raise TypeError(f"not an expression: {expr!r}")

    def resolve(self, sym: SymExpr) -> SymExpr:
        """Expand every :class:`SDef` in ``sym`` (memoized per definition).

        This is the actual forward substitution: a placeholder expands by
        evaluating its recorded right-hand side against its snapshots,
        recursively.  Unchanged subtrees are returned as-is so load
        ``ref_id`` identities survive; rebuilt operator nodes go back
        through :func:`make_op` so the size ceiling applies to the
        expanded tree exactly as it would have eagerly.
        """
        if isinstance(sym, SDef):
            key = (sym.name, sym.version)
            cached = self._expanded.get(key)
            if cached is None:
                definition = self._defs[key]
                cached = self.resolve(
                    self.eval(definition.expr, definition.env, definition.versions)
                )
                self._expanded[key] = cached
            return cached
        if isinstance(sym, SOp):
            args = tuple(self.resolve(a) for a in sym.args)
            if all(a is b for a, b in zip(args, sym.args)):
                return sym
            return make_op(sym.op, args)
        if isinstance(sym, SGamma):
            cond = self.resolve(sym.cond)
            then_value = self.resolve(sym.then_value)
            else_value = self.resolve(sym.else_value)
            if (
                cond is sym.cond
                and then_value is sym.then_value
                and else_value is sym.else_value
            ):
                return sym
            return SGamma(cond, then_value, else_value)
        if isinstance(sym, SLoad):
            sub = self.resolve(sym.sub)
            if sub is sym.sub:
                return sym
            # The subscript materialized new loads/inits: they escape,
            # exactly as the eager evaluation of this load would have.
            self._escape(sub)
            return SLoad(sym.ref_id, sym.array, sub, sym.version)
        return sym

    def _escape(self, sym: SymExpr) -> None:
        for load in loads_in(sym):
            self.escaped_loads.add(load.ref_id)
        for init in inits_in(sym):
            self.escaped_inits.add(init.name)


def _accumulation_op(after: SymExpr, unknown_pre: SymExpr) -> str | None:
    """Does ``after`` equal ``unknown_pre ⊕ c`` for every control path?

    Returns the operator, :data:`_IDENTITY` when the value is unchanged on
    all paths, or None when the scalar is not a self-accumulation.
    """
    leaves = gamma_leaves(after)
    if leaves is None:
        return None
    ops: set[str] = set()
    for leaf in leaves:
        op = _match_self_update(leaf, unknown_pre)
        if op is None:
            return None
        if op != _IDENTITY:
            ops.add(op)
    if not ops:
        return _IDENTITY
    if len(ops) == 1:
        return ops.pop()
    return None


# ---------------------------------------------------------------------------
# Update-shape matching
# ---------------------------------------------------------------------------


def _match_self_update(leaf: SymExpr, self_value: SymExpr) -> str | None:
    """Match ``leaf == self_value ⊕ c`` with c free of ``self_value``."""
    if leaf == self_value:
        return _IDENTITY

    def is_self(e: SymExpr) -> bool:
        return e == self_value

    def free_of_self(e: SymExpr) -> bool:
        return not _contains(e, self_value)

    return _match_update_shape(leaf, is_self, free_of_self)


def _match_array_update(leaf: SymExpr, array: str, sub_key: tuple) -> tuple[str, frozenset[int]] | None:
    """Match ``leaf == A(sub) ⊕ c`` (c free of A); returns (op, load ids)."""

    def is_self(e: SymExpr) -> bool:
        return isinstance(e, SLoad) and e.array == array and e.sub.key() == sub_key

    def free_of_self(e: SymExpr) -> bool:
        return not contains_array_load(e, array)

    if is_self(leaf):
        return (_IDENTITY, frozenset({leaf.ref_id}))  # type: ignore[union-attr]
    op = _match_update_shape(leaf, is_self, free_of_self)
    if op is None or op == _IDENTITY:
        return None if op is None else (op, frozenset())
    matched = frozenset(
        load.ref_id
        for load in loads_in(leaf)
        if load.array == array and load.sub.key() == sub_key
    )
    return (op, matched)


def _match_update_shape(leaf: SymExpr, is_self, free_of_self) -> str | None:
    """Shared shape matching for additive / multiplicative / min-max."""
    # Additive: flatten over +, -, neg into signed terms.
    terms = _additive_terms(leaf)
    if terms is not None:
        self_terms = [(t, s) for t, s in terms if is_self(t)]
        others = [(t, s) for t, s in terms if not is_self(t)]
        if len(self_terms) == 1 and self_terms[0][1] == 1:
            if all(free_of_self(t) for t, _ in others) and others:
                return "+"
    # Multiplicative: flatten over *.
    factors = _multiplicative_factors(leaf)
    if factors is not None:
        self_factors = [f for f in factors if is_self(f)]
        others = [f for f in factors if not is_self(f)]
        if len(self_factors) == 1 and others and all(free_of_self(f) for f in others):
            return "*"
    # min / max, single level.
    if isinstance(leaf, SOp) and leaf.op in ("min", "max") and len(leaf.args) == 2:
        a, b = leaf.args
        if is_self(a) and free_of_self(b):
            return leaf.op
        if is_self(b) and free_of_self(a):
            return leaf.op
    return None


def _additive_terms(expr: SymExpr) -> list[tuple[SymExpr, int]] | None:
    """Flatten over + / - / neg; None when the top level is not additive."""
    if not (isinstance(expr, SOp) and expr.op in ("+", "-", "neg")):
        return None
    terms: list[tuple[SymExpr, int]] = []

    def collect(e: SymExpr, sign: int) -> None:
        if isinstance(e, SOp) and e.op == "+":
            collect(e.args[0], sign)
            collect(e.args[1], sign)
        elif isinstance(e, SOp) and e.op == "-":
            collect(e.args[0], sign)
            collect(e.args[1], -sign)
        elif isinstance(e, SOp) and e.op == "neg":
            collect(e.args[0], -sign)
        else:
            terms.append((e, sign))

    collect(expr, 1)
    return terms


def _multiplicative_factors(expr: SymExpr) -> list[SymExpr] | None:
    if not (isinstance(expr, SOp) and expr.op == "*"):
        return None
    factors: list[SymExpr] = []

    def collect(e: SymExpr) -> None:
        if isinstance(e, SOp) and e.op == "*":
            collect(e.args[0])
            collect(e.args[1])
        else:
            factors.append(e)

    collect(expr)
    return factors


def _contains(expr: SymExpr, needle: SymExpr) -> bool:
    if expr == needle:
        return True
    if isinstance(expr, SOp):
        return any(_contains(a, needle) for a in expr.args)
    if isinstance(expr, SGamma):
        return (
            _contains(expr.cond, needle)
            or _contains(expr.then_value, needle)
            or _contains(expr.else_value, needle)
        )
    if isinstance(expr, SLoad):
        return _contains(expr.sub, needle)
    return False


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def find_reductions(
    loop: Do,
    candidate_arrays: set[str],
    live_out_scalars: frozenset[str] = frozenset(),
) -> ReductionReport:
    """Run forward-substitution reduction recognition on ``loop``.

    ``candidate_arrays`` are the (written) arrays worth considering;
    ``live_out_scalars`` are scalars whose value is used after the loop —
    a scalar reduction whose running value leaks into another live-out
    scalar is rejected.

    Requires references to have been numbered (see
    :func:`repro.analysis.instrument.number_refs`).
    """
    execu = _SymExec()
    execu.env[loop.var] = SInit(loop.var)
    execu.exec_block(loop.body)
    # End-of-iteration finals are observable: demand them now so the
    # escape pass and scalar-reduction scan below see expanded values.
    execu.finalize()

    report = ReductionReport()
    report.defs_recorded = execu.defs_recorded
    report.defs_expanded = execu.defs_expanded
    validated_loads_by_store: dict[int, frozenset[int]] = {}
    provisional: list[tuple[_StoreRecord, str, frozenset[int]]] = []

    for record in execu.stores:
        if record.array not in candidate_arrays:
            continue
        result = _validate_store(record)
        if result is not None:
            op, load_ids = result
            provisional.append((record, op, load_ids))
            validated_loads_by_store[id(record)] = load_ids

    # Escape pass: loads feeding non-reduction stores escape; loads feeding
    # a reduction store escape unless they are that store's matched loads.
    # Iteration-entry scalar values reaching any store also escape: a
    # scalar whose *running* value lands in memory is order dependent and
    # cannot be a reduction accumulator.
    escaped = set(execu.escaped_loads)
    for record in execu.stores:
        exempt = validated_loads_by_store.get(id(record), frozenset())
        for load in loads_in(record.rhs):
            if load.ref_id not in exempt:
                escaped.add(load.ref_id)
        for init in inits_in(record.rhs):
            execu.escaped_inits.add(init.name)

    for record, op, load_ids in provisional:
        if load_ids & escaped:
            continue  # the loaded value is also used elsewhere
        candidate = ReductionCandidate(
            array=record.array,
            op=op,
            store_ref_id=record.store_ref_id,
            load_ref_ids=load_ids,
            line=record.stmt.line,
        )
        report.candidates.append(candidate)
        report.redux_refs[record.store_ref_id] = op
        for ref_id in load_ids:
            report.redux_refs[ref_id] = op

    report.reduction_stmt_ids = frozenset(
        id(record.stmt) for record, _, loads in provisional
        if not (loads & escaped)
    )

    _find_scalar_reductions(execu, loop, live_out_scalars, report)
    return report


def _validate_store(record: _StoreRecord) -> tuple[str, frozenset[int]] | None:
    leaves = gamma_leaves(record.rhs)
    if leaves is None:
        return None
    sub_key = record.sub.key()
    ops: set[str] = set()
    load_ids: set[int] = set()
    for leaf in leaves:
        match = _match_array_update(leaf, record.array, sub_key)
        if match is None:
            return None
        op, ids = match
        load_ids |= ids
        if op != _IDENTITY:
            ops.add(op)
    if len(ops) != 1:
        return None
    return ops.pop(), frozenset(load_ids)


def _find_scalar_reductions(
    execu: _SymExec,
    loop: Do,
    live_out_scalars: frozenset[str],
    report: ReductionReport,
) -> None:
    for name, final in execu.env.items():
        if name == loop.var:
            continue
        if not contains_init(final, name):
            continue
        if final == SInit(name):
            continue  # never updated
        if name in execu.escaped_inits:
            continue
        # The running value must not leak into other live-out scalars.
        if any(
            contains_init(execu.env.get(other, SInit(other)), name)
            for other in live_out_scalars
            if other != name
        ):
            continue
        op = _accumulation_op(final, SInit(name))
        if op is not None and op != _IDENTITY:
            report.scalar_reductions[name] = op
