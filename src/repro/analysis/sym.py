"""Symbolic values for demand-driven forward substitution.

The paper's reduction recognition "beyond syntactic pattern matching"
(§IV) forward-substitutes the scalars on the right-hand side of a store,
converting control dependences into data dependences (gated SSA style),
until the stored value is expressed in terms of array loads.  These are
the symbolic values that expression evaluates to:

* :class:`SConst` — a literal;
* :class:`SInit`  — the iteration-entry value of a scalar (read before
  any write in the iteration);
* :class:`SLoad`  — an array element load, identified by its syntactic
  reference site (``ref_id``) and its *symbolic* subscript;
* :class:`SUnknown` — an opaque value (two SUnknowns with the same id are
  the same value);
* :class:`SOp`    — an operator applied to symbolic operands;
* :class:`SGamma` — a gated merge: the value is ``then_value`` when the
  (opaque) condition held, else ``else_value``;
* :class:`SDef`   — a *not-yet-substituted* scalar definition.  The
  executor binds an assigned scalar to its numbered definition instead of
  its expanded value; substitution happens only when the value reaches a
  demand point (that is what makes the substitution demand driven — dead
  definitions are never expanded).
"""

from __future__ import annotations

import itertools
from typing import Iterator

#: Node-count ceiling; larger expressions collapse to SUnknown.
MAX_NODES = 400
#: Gamma-leaf ceiling for :func:`gamma_leaves`.
MAX_LEAVES = 32

_unknown_counter = itertools.count()


class SymExpr:
    """Base class for symbolic values."""

    __slots__ = ()

    def key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SymExpr) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class SConst(SymExpr):
    __slots__ = ("value",)

    def __init__(self, value: float | int):
        self.value = value

    def key(self) -> tuple:
        return ("const", self.value, type(self.value).__name__)

    def __repr__(self) -> str:
        return f"SConst({self.value!r})"


class SInit(SymExpr):
    """The value a scalar had when the iteration started."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def key(self) -> tuple:
        return ("init", self.name)

    def __repr__(self) -> str:
        return f"SInit({self.name})"


class SLoad(SymExpr):
    """An array load; ``sub`` is the symbolic subscript.

    Equality is *value* identity: two loads of the same array at the same
    symbolic subscript denote the same value as long as no store to that
    array intervened — ``version`` is the array's store counter at load
    time.  ``ref_id`` records the syntactic site (for marking) but does
    not participate in equality.
    """

    __slots__ = ("ref_id", "array", "sub", "version")

    def __init__(self, ref_id: int, array: str, sub: SymExpr, version: int = 0):
        self.ref_id = ref_id
        self.array = array
        self.sub = sub
        self.version = version

    def key(self) -> tuple:
        return ("load", self.array, self.sub.key(), self.version)

    def __repr__(self) -> str:
        return f"SLoad(#{self.ref_id} {self.array}[{self.sub!r}]@v{self.version})"


class SUnknown(SymExpr):
    """An opaque value; identity is the generated ``uid``."""

    __slots__ = ("uid",)

    def __init__(self, uid: int | None = None):
        self.uid = next(_unknown_counter) if uid is None else uid

    def key(self) -> tuple:
        return ("unknown", self.uid)

    def __repr__(self) -> str:
        return f"SUnknown(#{self.uid})"


class SOp(SymExpr):
    __slots__ = ("op", "args")

    def __init__(self, op: str, args: tuple[SymExpr, ...]):
        self.op = op
        self.args = args

    def key(self) -> tuple:
        return ("op", self.op, tuple(a.key() for a in self.args))

    def __repr__(self) -> str:
        return f"SOp({self.op}, {list(self.args)!r})"


class SDef(SymExpr):
    """A recorded-but-unexpanded scalar definition (GSSA-style name).

    ``version`` is the per-scalar assignment counter, so equality means
    "the very same definition".  The reduction recognizer's environment
    binds assigned scalars to these placeholders; the definition's
    right-hand side stays unevaluated AST until a demand point resolves
    it (see :class:`repro.analysis.reduction._SymExec.resolve`).  A
    resolved symbolic value never contains an :class:`SDef`.
    """

    __slots__ = ("name", "version")

    def __init__(self, name: str, version: int):
        self.name = name
        self.version = version

    def key(self) -> tuple:
        return ("def", self.name, self.version)

    def __repr__(self) -> str:
        return f"SDef({self.name}@{self.version})"


class SGamma(SymExpr):
    """Control-flow merge with an opaque condition."""

    __slots__ = ("cond", "then_value", "else_value")

    def __init__(self, cond: SymExpr, then_value: SymExpr, else_value: SymExpr):
        self.cond = cond
        self.then_value = then_value
        self.else_value = else_value

    def key(self) -> tuple:
        return ("gamma", self.cond.key(), self.then_value.key(), self.else_value.key())

    def __repr__(self) -> str:
        return f"SGamma({self.cond!r}, {self.then_value!r}, {self.else_value!r})"


# ---------------------------------------------------------------------------
# Construction and traversal helpers
# ---------------------------------------------------------------------------


def node_count(expr: SymExpr) -> int:
    """Number of nodes in ``expr`` (gammas count both branches)."""
    if isinstance(expr, SOp):
        return 1 + sum(node_count(a) for a in expr.args)
    if isinstance(expr, SGamma):
        return 1 + node_count(expr.cond) + node_count(expr.then_value) + node_count(
            expr.else_value
        )
    if isinstance(expr, SLoad):
        return 1 + node_count(expr.sub)
    return 1


def make_op(op: str, args: tuple[SymExpr, ...]) -> SymExpr:
    """Build an SOp, collapsing to SUnknown above the size ceiling."""
    expr = SOp(op, args)
    if node_count(expr) > MAX_NODES:
        return SUnknown()
    return expr


def gamma_leaves(expr: SymExpr) -> list[SymExpr] | None:
    """Enumerate the gamma-free alternatives of ``expr``.

    Gammas are distributed over operators (each combination of branch
    choices yields one leaf).  Returns None when more than
    :data:`MAX_LEAVES` alternatives would result.
    """
    leaves = list(_leaves(expr))
    if len(leaves) > MAX_LEAVES:
        return None
    return leaves


def _leaves(expr: SymExpr) -> Iterator[SymExpr]:
    if isinstance(expr, SGamma):
        yield from _leaves(expr.then_value)
        yield from _leaves(expr.else_value)
    elif isinstance(expr, SOp):
        choices = [list(_leaves(a)) for a in expr.args]
        total = 1
        for c in choices:
            total *= len(c)
            if total > MAX_LEAVES:
                # Overflow: yield enough sentinels for the caller to bail.
                for _ in range(MAX_LEAVES + 1):
                    yield SUnknown()
                return
        for combo in itertools.product(*choices):
            yield SOp(expr.op, tuple(combo))
    elif isinstance(expr, SLoad):
        # Subscript gammas are not distributed; loads compare by key.
        yield expr
    else:
        yield expr


def loads_in(expr: SymExpr) -> Iterator[SLoad]:
    """Yield every SLoad inside ``expr`` (including inside subscripts)."""
    if isinstance(expr, SLoad):
        yield expr
        yield from loads_in(expr.sub)
    elif isinstance(expr, SOp):
        for arg in expr.args:
            yield from loads_in(arg)
    elif isinstance(expr, SGamma):
        yield from loads_in(expr.cond)
        yield from loads_in(expr.then_value)
        yield from loads_in(expr.else_value)


def inits_in(expr: SymExpr) -> Iterator[SInit]:
    """Yield every SInit inside ``expr``."""
    if isinstance(expr, SInit):
        yield expr
    elif isinstance(expr, SLoad):
        yield from inits_in(expr.sub)
    elif isinstance(expr, SOp):
        for arg in expr.args:
            yield from inits_in(arg)
    elif isinstance(expr, SGamma):
        yield from inits_in(expr.cond)
        yield from inits_in(expr.then_value)
        yield from inits_in(expr.else_value)


def contains_array_load(expr: SymExpr, array: str) -> bool:
    """Does ``expr`` contain any load of ``array``?"""
    return any(load.array == array for load in loads_in(expr))


def contains_init(expr: SymExpr, name: str) -> bool:
    """Does ``expr`` contain SInit(name)?"""
    return any(init.name == name for init in inits_in(expr))
