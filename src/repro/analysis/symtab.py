"""Use/def summaries of statements and loop bodies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.dsl.ast_nodes import (
    ArrayRef,
    Assign,
    Do,
    Expr,
    If,
    Stmt,
    Var,
    While,
    walk_expressions,
)


@dataclass(frozen=True)
class RefSite:
    """One syntactic array reference with its access direction."""

    ref: ArrayRef
    is_store: bool
    stmt: Assign | None = None  # the owning assignment, for stores


@dataclass
class BodySummary:
    """Names used and defined by a loop body."""

    arrays_written: set[str] = field(default_factory=set)
    arrays_read: set[str] = field(default_factory=set)
    scalars_written: set[str] = field(default_factory=set)
    scalars_read: set[str] = field(default_factory=set)
    inner_loop_vars: set[str] = field(default_factory=set)


def iter_array_refs(body: list[Stmt]) -> Iterator[RefSite]:
    """Yield every array reference site in ``body``, stores flagged.

    Subscript expressions of a store target are *reads* and are yielded
    separately (as part of the target's index expression).
    """
    for stmt in _walk(body):
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, ArrayRef):
                yield RefSite(ref=stmt.target, is_store=True, stmt=stmt)
                yield from _expr_refs(stmt.target.index)
            yield from _expr_refs(stmt.expr)
        elif isinstance(stmt, If):
            yield from _expr_refs(stmt.cond)
        elif isinstance(stmt, Do):
            yield from _expr_refs(stmt.start)
            yield from _expr_refs(stmt.stop)
            if stmt.step is not None:
                yield from _expr_refs(stmt.step)
        elif isinstance(stmt, While):
            yield from _expr_refs(stmt.cond)


def _walk(body: list[Stmt]) -> Iterator[Stmt]:
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk(stmt.then_body)
            yield from _walk(stmt.else_body)
        elif isinstance(stmt, (Do, While)):
            yield from _walk(stmt.body)


def _expr_refs(expr: Expr) -> Iterator[RefSite]:
    for node in walk_expressions(expr):
        if isinstance(node, ArrayRef):
            yield RefSite(ref=node, is_store=False)


def summarize_body(body: list[Stmt]) -> BodySummary:
    """Compute the use/def summary of ``body``."""
    summary = BodySummary()
    for site in iter_array_refs(body):
        if site.is_store:
            summary.arrays_written.add(site.ref.name)
        else:
            summary.arrays_read.add(site.ref.name)
    for stmt in _walk(body):
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, Var):
                summary.scalars_written.add(stmt.target.name)
            for expr_root in _stmt_exprs(stmt):
                _collect_scalar_reads(expr_root, summary.scalars_read)
        elif isinstance(stmt, If):
            _collect_scalar_reads(stmt.cond, summary.scalars_read)
        elif isinstance(stmt, Do):
            summary.inner_loop_vars.add(stmt.var)
            summary.scalars_written.add(stmt.var)
            for bound in (stmt.start, stmt.stop, stmt.step):
                if bound is not None:
                    _collect_scalar_reads(bound, summary.scalars_read)
        elif isinstance(stmt, While):
            _collect_scalar_reads(stmt.cond, summary.scalars_read)
    return summary


def _stmt_exprs(stmt: Assign) -> Iterator[Expr]:
    if isinstance(stmt.target, ArrayRef):
        yield stmt.target.index
    yield stmt.expr


def _collect_scalar_reads(expr: Expr, out: set[str]) -> None:
    for node in walk_expressions(expr):
        if isinstance(node, Var):
            out.add(node.name)


def scalar_reads_in(expr: Expr) -> set[str]:
    """Scalar names read anywhere inside ``expr``."""
    out: set[str] = set()
    _collect_scalar_reads(expr, out)
    return out


def arrays_in(expr: Expr) -> set[str]:
    """Array names referenced anywhere inside ``expr``."""
    return {node.name for node in walk_expressions(expr) if isinstance(node, ArrayRef)}
