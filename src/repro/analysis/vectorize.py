"""Static vectorizability classifier for the whole-block engine.

Decides whether a target loop body can be lowered to NumPy index-vector
kernels (:mod:`repro.interp.vectorized_spec`): straight-line
gather/compute/scatter assignments, mask-convertible ``if``s, nested
counted ``do`` loops, and syntactically matched reductions.  Everything
else — ``while`` loops, writes to untested shared arrays, reduction
dataflow through temporaries, intrinsics whose NumPy kernels are not
bit-identical to the scalar interpreter (``exp``/``log``/``sin``/
``cos``), dynamic-kind operators (``**``) — is rejected with a recorded
reason, and the caller falls back to the compiled per-iteration engine.

The classifier is deliberately conservative: acceptance promises that
the vectorized lowering is *bit-identical* to the compiled engine on
runs it commits; rejection only costs the fallback's speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.dsl.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    Expr,
    If,
    Num,
    Program,
    Stmt,
    UnaryOp,
    Var,
    While,
    expr_equal,
)

#: intrinsics whose NumPy element-wise kernels are bit-identical to the
#: interpreter's Python/math implementations (IEEE-exact operations).
#: exp/log/sin/cos are excluded: libm and NumPy's SIMD kernels may
#: differ in the last ulp, which would break engine parity.
SAFE_INTRINSICS = frozenset(
    {"abs", "sqrt", "floor", "int", "real", "sign", "mod", "min", "max"}
)


@dataclass(frozen=True)
class VectorizeDecision:
    """Outcome of classifying one loop for the vectorized engine."""

    ok: bool
    reason: str | None = None

    def __bool__(self) -> bool:
        return self.ok


def _reject(reason: str) -> VectorizeDecision:
    return VectorizeDecision(False, reason)


class _Reject(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _Classifier:
    def __init__(self, program: Program, plan) -> None:
        self.kinds: dict[str, str] = {d.name: d.kind for d in program.decls}
        self.arrays = set(program.array_decls())
        self.tested = set(plan.tested_arrays)
        self.redux_refs: Mapping[int, str] = plan.redux_refs
        self.scalar_reductions: Mapping[str, str] = plan.scalar_reductions
        self._redux_ops_seen: dict[str, set[str]] = {}

    # -- expression kinds ---------------------------------------------------

    def kind_of(self, expr: Expr) -> str:
        """Static value kind ('integer' | 'real'), mirroring the scalar
        interpreter's numeric rules; rejects dynamically-kinded forms."""
        if isinstance(expr, Num):
            return "integer" if expr.is_int else "real"
        if isinstance(expr, Var):
            kind = self.kinds.get(expr.name)
            if kind is None:
                raise _Reject(f"undeclared scalar {expr.name!r}")
            return kind
        if isinstance(expr, ArrayRef):
            if expr.name not in self.arrays:
                raise _Reject(f"undeclared array {expr.name!r}")
            if self.redux_refs.get(expr.ref_id) is not None:
                raise _Reject(
                    "reduction-array load outside its own update statement"
                )
            self.check_expr(expr.index)
            return self.kinds[expr.name]
        if isinstance(expr, BinOp):
            if expr.op == "**":
                raise _Reject("** operator has a value-dependent result kind")
            left = self.kind_of(expr.left)
            right = self.kind_of(expr.right)
            if expr.op in ("==", "/=", "<", "<=", ">", ">=", "and", "or"):
                return "integer"
            if expr.op in ("+", "-", "*", "/"):
                return "integer" if left == right == "integer" else "real"
            raise _Reject(f"operator {expr.op!r} not vectorizable")
        if isinstance(expr, UnaryOp):
            if expr.op == "not":
                self.kind_of(expr.operand)
                return "integer"
            return self.kind_of(expr.operand)
        if isinstance(expr, Call):
            return self.kind_of_call(expr)
        raise _Reject(f"cannot vectorize {type(expr).__name__}")

    def kind_of_call(self, expr: Call) -> str:
        func = expr.func
        if func not in SAFE_INTRINSICS:
            raise _Reject(
                f"intrinsic {func!r} is not bit-exact under vectorization"
            )
        arg_kinds = [self.kind_of(arg) for arg in expr.args]
        if func in ("min", "max"):
            if len(set(arg_kinds)) > 1:
                raise _Reject(
                    f"{func}() over mixed integer/real arguments has a "
                    "value-dependent result kind"
                )
            return arg_kinds[0]
        if func == "sqrt":
            return "real"
        if func in ("floor", "int"):
            return "integer"
        if func == "real":
            return "real"
        if func in ("abs", "sign"):
            return arg_kinds[0]
        if func == "mod":
            return "integer" if set(arg_kinds) == {"integer"} else "real"
        raise _Reject(f"intrinsic {func!r} is not vectorizable")

    def check_expr(self, expr: Expr) -> None:
        self.kind_of(expr)

    # -- statements ---------------------------------------------------------

    def check_block(self, body: list[Stmt]) -> None:
        for stmt in body:
            self.check_stmt(stmt)

    def check_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.check_assign(stmt)
        elif isinstance(stmt, If):
            self.check_expr(stmt.cond)
            self.check_block(stmt.then_body)
            self.check_block(stmt.else_body)
        elif isinstance(stmt, Do):
            self.check_expr(stmt.start)
            self.check_expr(stmt.stop)
            if stmt.step is not None:
                self.check_expr(stmt.step)
            if self.kinds.get(stmt.var) is None:
                raise _Reject(f"undeclared scalar {stmt.var!r}")
            self.check_block(stmt.body)
        elif isinstance(stmt, While):
            raise _Reject("while loop (data-dependent trip count)")
        else:
            raise _Reject(f"cannot vectorize {type(stmt).__name__}")

    def check_assign(self, stmt: Assign) -> None:
        target = stmt.target
        if isinstance(target, Var):
            if self.kinds.get(target.name) is None:
                raise _Reject(f"undeclared scalar {target.name!r}")
            if target.name in self.scalar_reductions:
                self.check_scalar_reduction(stmt)
                return
            self.check_expr(stmt.expr)
            return
        assert isinstance(target, ArrayRef)
        if target.name not in self.arrays:
            raise _Reject(f"undeclared array {target.name!r}")
        self.check_expr(target.index)
        if self.redux_refs.get(target.ref_id) is not None:
            self.check_array_reduction(stmt, target)
            return
        if target.name not in self.tested:
            raise _Reject(
                f"writes untested shared array {target.name!r} "
                "(cross-iteration visibility)"
            )
        self._forbid_redux_loads(stmt.expr)
        self.check_expr(stmt.expr)

    def check_array_reduction(self, stmt: Assign, target: ArrayRef) -> None:
        """Accept only the direct forms ``A(e) = A(e) ± rest``,
        ``A(e) = rest + A(e)`` / ``rest * A(e)``, ``A(e) = A(e) * rest``:
        the per-row contribution is then ``rest`` (negated for ``-``) and
        the partial is a pure exec-order ufunc fold."""
        if self.kinds.get(target.name) == "integer":
            raise _Reject(
                f"integer-kind reduction array {target.name!r} "
                "(float64 partial fold would change truncation points)"
            )
        ops = self._redux_ops_seen.setdefault(target.name, set())
        ops.add(self.redux_refs[target.ref_id])
        if len(ops) > 1:
            raise _Reject(
                f"mixed reduction operators on {target.name!r} "
                "(a single exec-order ufunc fold cannot interleave them)"
            )
        rest = self.reduction_rest(stmt, target)
        self._forbid_redux_loads(rest)
        self.check_expr(rest)

    def reduction_rest(self, stmt: Assign, target: ArrayRef) -> Expr:
        """The non-self operand of a direct reduction update (validated)."""
        expr = stmt.expr
        op = self.redux_refs[target.ref_id]
        if op not in ("+", "*"):
            raise _Reject(f"{op}-reduction is not vectorizable")
        if not isinstance(expr, BinOp):
            raise _Reject("reduction dataflow through temporaries")

        def is_self(node: Expr) -> bool:
            return (
                isinstance(node, ArrayRef)
                and node.name == target.name
                and self.redux_refs.get(node.ref_id) is not None
                and expr_equal(node.index, target.index)
            )

        allowed = ("+", "-") if op == "+" else ("*",)
        if expr.op in allowed and is_self(expr.left):
            return expr.right
        if expr.op in ("+", "*") and expr.op in allowed and is_self(expr.right):
            return expr.left
        raise _Reject("reduction dataflow through temporaries")

    def check_scalar_reduction(self, stmt: Assign) -> None:
        rest = self.scalar_reduction_rest(stmt)
        from repro.analysis.symtab import scalar_reads_in

        used = scalar_reads_in(rest) & set(self.scalar_reductions)
        if used:
            raise _Reject(
                f"scalar reduction {sorted(used)[0]!r} read outside its update"
            )
        self.check_expr(rest)

    def scalar_reduction_rest(self, stmt: Assign) -> Expr:
        """The contribution operand of a direct scalar reduction update."""
        assert isinstance(stmt.target, Var)
        name = stmt.target.name
        expr = stmt.expr

        def is_self(node: Expr) -> bool:
            return isinstance(node, Var) and node.name == name

        def reads_self(node: Expr) -> bool:
            from repro.dsl.ast_nodes import walk_expressions

            return any(
                isinstance(sub, Var) and sub.name == name
                for sub in walk_expressions(node)
            )

        if isinstance(expr, BinOp) and expr.op in ("+", "*", "-"):
            if is_self(expr.left) and not reads_self(expr.right):
                return expr.right
            if expr.op in ("+", "*") and is_self(expr.right) and not reads_self(expr.left):
                return expr.left
        raise _Reject(
            f"scalar reduction {name!r} not in direct ``s = s op expr`` form"
        )

    def _forbid_redux_loads(self, expr: Expr) -> None:
        from repro.dsl.ast_nodes import walk_expressions

        for node in walk_expressions(expr):
            if (
                isinstance(node, ArrayRef)
                and self.redux_refs.get(node.ref_id) is not None
            ):
                raise _Reject(
                    "reduction-array load outside its own update statement"
                )

    def check_scalar_reduction_usage(self, body: list[Stmt]) -> None:
        """Scalar-reduction variables may be read only inside their own
        update statement (the vectorized fold never materializes the
        running value per row)."""
        from repro.analysis.symtab import scalar_reads_in
        from repro.dsl.ast_nodes import walk_statements

        names = set(self.scalar_reductions)
        if not names:
            return
        for stmt in walk_statements(body):
            if isinstance(stmt, Assign):
                if (
                    isinstance(stmt.target, Var)
                    and stmt.target.name in names
                ):
                    continue  # validated separately by check_scalar_reduction
                exprs = [stmt.expr]
                if isinstance(stmt.target, ArrayRef):
                    exprs.append(stmt.target.index)
            elif isinstance(stmt, If):
                exprs = [stmt.cond]
            elif isinstance(stmt, Do):
                exprs = [stmt.start, stmt.stop]
                if stmt.step is not None:
                    exprs.append(stmt.step)
            elif isinstance(stmt, While):
                exprs = [stmt.cond]
            else:
                continue
            for expr in exprs:
                used = scalar_reads_in(expr) & names
                if used:
                    raise _Reject(
                        "scalar reduction "
                        f"{sorted(used)[0]!r} read outside its update"
                    )


def classify_loop(program: Program, loop: Do, plan) -> VectorizeDecision:
    """Classify ``loop`` for whole-block vectorized execution.

    ``plan`` is the loop's :class:`InstrumentationPlan`.  Returns an
    accepting decision or the first rejection reason encountered (the
    reason the CLI reports when the engine degrades to compiled).
    """
    classifier = _Classifier(program, plan)
    if classifier.kinds.get(loop.var) is None:
        return _reject(f"undeclared loop variable {loop.var!r}")
    try:
        classifier.check_scalar_reduction_usage(loop.body)
        classifier.check_block(loop.body)
    except _Reject as reject:
        return _reject(reject.reason)
    return VectorizeDecision(True)
