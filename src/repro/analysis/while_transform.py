"""While-loop parallelization (the technique of Rauchwerger & Padua [33]).

SPICE's LOAD loop traverses a linked list with a ``do while`` — no
iteration space for a doall.  The paper parallelizes such loops by
splitting them: a (serial) traversal collects the cursor values into an
order array, then the body runs as a ``do`` over the collected nodes,
which the LRPD framework can speculate on.  The serial traversal is the
Amdahl component of SPICE's modest speedup.

:func:`detect_list_traversal` matches the canonical shape::

    do while (p > 0)        ! or p /= 0
      ...body...            ! p not assigned here
      p = nxt(p)            ! the only assignment to the cursor
    end do

with ``nxt`` not written inside the loop.  :func:`transform_list_traversal`
rewrites the program::

    lw_i = 0
    do while (p > 0)
      lw_i = lw_i + 1
      lw_order(lw_i) = p
      p = nxt(p)
    end do
    lw_n = lw_i
    lw_term = p
    do lw_i = 1, lw_n
      p = lw_order(lw_i)
      ...body...
    end do
    p = lw_term

which preserves serial semantics exactly (including the cursor's
terminal value) and exposes the ``do`` to the speculative runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.symtab import summarize_body
from repro.dsl.ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Do,
    Num,
    Program,
    ScalarDecl,
    Stmt,
    Var,
    While,
)
from repro.errors import AnalysisError


@dataclass(frozen=True)
class ListTraversalPattern:
    """A recognized cursor-chasing while loop."""

    loop: While
    cursor: str       # the traversal scalar
    next_array: str   # the link array advanced through
    body: tuple[Stmt, ...]  # the body minus the cursor advance


def detect_list_traversal(program: Program, loop: While) -> ListTraversalPattern | None:
    """Match the linked-list traversal shape; None when it doesn't fit."""
    cursor = _cursor_of_condition(loop.cond)
    if cursor is None or not loop.body:
        return None

    advance = loop.body[-1]
    if not (
        isinstance(advance, Assign)
        and isinstance(advance.target, Var)
        and advance.target.name == cursor
        and isinstance(advance.expr, ArrayRef)
        and isinstance(advance.expr.index, Var)
        and advance.expr.index.name == cursor
    ):
        return None
    next_array = advance.expr.name

    if program.scalar_decls().get(cursor) is None:
        return None
    if program.scalar_decls()[cursor].kind != "integer":
        return None

    rest = loop.body[:-1]
    summary = summarize_body(list(rest))
    if cursor in summary.scalars_written:
        return None  # cursor mutated elsewhere: not a plain traversal
    whole = summarize_body(loop.body)
    if next_array in whole.arrays_written:
        return None  # the loop rewires the list while walking it

    return ListTraversalPattern(
        loop=loop, cursor=cursor, next_array=next_array, body=tuple(rest)
    )


def _cursor_of_condition(cond) -> str | None:
    """``p > 0`` or ``p /= 0`` with integer literal zero."""
    if not isinstance(cond, BinOp) or cond.op not in (">", "/="):
        return None
    if not isinstance(cond.left, Var):
        return None
    if not (isinstance(cond.right, Num) and cond.right.value == 0):
        return None
    return cond.left.name


def transform_list_traversal(program: Program, loop: While | None = None) -> Program:
    """Rewrite the first matching top-level while into traversal + doall.

    Raises :class:`AnalysisError` when no top-level while loop matches the
    linked-list pattern.
    """
    candidates = [s for s in program.body if isinstance(s, While)]
    if loop is not None:
        candidates = [loop]
    pattern = None
    for candidate in candidates:
        pattern = detect_list_traversal(program, candidate)
        if pattern is not None:
            loop = candidate
            break
    if pattern is None:
        raise AnalysisError("no top-level while loop matches the list-traversal shape")

    order_name, index_name, count_name, term_name = _fresh_names(program)
    capacity = program.array_decls()[pattern.next_array].size

    decls = list(program.decls) + [
        ArrayDecl(name=order_name, kind="integer", size=capacity),
        ScalarDecl(name=index_name, kind="integer"),
        ScalarDecl(name=count_name, kind="integer"),
        ScalarDecl(name=term_name, kind="integer"),
    ]

    cursor = pattern.cursor
    traversal = While(
        cond=pattern.loop.cond,
        body=[
            Assign(target=Var(name=index_name), expr=Var(name=index_name) + 1),
            Assign(
                target=ArrayRef(name=order_name, index=Var(name=index_name)),
                expr=Var(name=cursor),
            ),
            Assign(
                target=Var(name=cursor),
                expr=ArrayRef(name=pattern.next_array, index=Var(name=cursor)),
            ),
        ],
    )
    doall = Do(
        var=index_name,
        start=Num(value=1.0, is_int=True),
        stop=Var(name=count_name),
        body=[
            Assign(
                target=Var(name=cursor),
                expr=ArrayRef(name=order_name, index=Var(name=index_name)),
            )
        ]
        + list(pattern.body),
    )

    new_body: list[Stmt] = []
    for stmt in program.body:
        if stmt is loop:
            new_body.extend(
                [
                    Assign(target=Var(name=index_name), expr=Num(value=0.0, is_int=True)),
                    traversal,
                    Assign(target=Var(name=count_name), expr=Var(name=index_name)),
                    Assign(target=Var(name=term_name), expr=Var(name=cursor)),
                    doall,
                    Assign(target=Var(name=cursor), expr=Var(name=term_name)),
                ]
            )
        else:
            new_body.append(stmt)

    return Program(name=program.name, decls=decls, body=new_body)


def _fresh_names(program: Program) -> tuple[str, str, str, str]:
    taken = {d.name for d in program.decls}
    names = []
    for base in ("lw_order", "lw_i", "lw_n", "lw_term"):
        name = base
        suffix = 0
        while name in taken:
            suffix += 1
            name = f"{base}{suffix}"
        taken.add(name)
        names.append(name)
    return tuple(names)  # type: ignore[return-value]
