"""Related-work run-time parallelization methods (paper Table II & §VI).

Executable implementations of the methods the paper compares against.
Each takes the loop's access trace (what its inspector would compute) and
produces a *wavefront schedule* — a partition of the iterations into
stages such that executing the stages in order, with a barrier between
stages and the iterations of a stage in parallel, respects the
dependences the method tracks.

=======================  ====================================================
``zhu_yew``              Zhu & Yew [49]: phased min-iteration scheme;
                         concurrent reads of one element serialize
``midkiff_padua``        Midkiff & Padua [27]: separate read/write shadows;
                         concurrent reads allowed
``krothapalli``          Krothapalli & Sadayappan [18]: run-time renaming
                         removes anti/output dependences (P)
``chen_yew_torrellas``   Chen, Yew & Torrellas [13]: Zhu/Yew variant with
                         private-storage hot-spot handling
``xu_chaudhary``         Xu & Chaudhary [46,45]: time-stamping, no
                         serialization on concurrent reads
``saltz``                Saltz et al. [35,37]: inspector topological sort;
                         requires no output dependences
``leung_zahorjan``       Leung & Zahorjan [22]: sectioned parallel
                         inspector; suboptimal (concatenated) schedule
``polychronopoulos``     Polychronopoulos [30]: maximal contiguous
                         dependence-free blocks
=======================  ====================================================

:mod:`repro.baselines.capabilities` reproduces Table II itself;
:mod:`repro.baselines.executor` prices a staged schedule on the simulated
machine so the methods can be compared against the LRPD strategies.
"""

from repro.baselines.capabilities import TABLE_II_ROWS, MethodCapabilities
from repro.baselines.executor import staged_execution_time
from repro.baselines.methods import (
    ALL_METHODS,
    MethodSchedule,
    schedule_chen_yew_torrellas,
    schedule_krothapalli,
    schedule_leung_zahorjan,
    schedule_midkiff_padua,
    schedule_polychronopoulos,
    schedule_saltz,
    schedule_xu_chaudhary,
    schedule_zhu_yew,
)
from repro.baselines.trace import IterationTrace, extract_trace

__all__ = [
    "ALL_METHODS",
    "IterationTrace",
    "MethodCapabilities",
    "MethodSchedule",
    "TABLE_II_ROWS",
    "extract_trace",
    "schedule_chen_yew_torrellas",
    "schedule_krothapalli",
    "schedule_leung_zahorjan",
    "schedule_midkiff_padua",
    "schedule_polychronopoulos",
    "schedule_saltz",
    "schedule_xu_chaudhary",
    "schedule_zhu_yew",
    "staged_execution_time",
]
