"""Table II: qualitative comparison of run-time parallelization methods.

The row data transcribes the paper's table (footnotes included); the
``empirical`` companion produced by :func:`repro.evalx.table2.build_table2`
backs the schedule-quality claims with measured stage depths from the
executable implementations in :mod:`repro.baselines.methods`.

Column meanings (paper's wording):

* ``optimal_schedule`` — does the method obtain a minimum-depth schedule?
* ``sequential_portions`` — does it contain significant sequential parts?
* ``global_sync`` — does it require global synchronization?
* ``restricts_loop`` — is it applicable only to restricted loop types?
* ``priv_or_reductions`` — does it privatize or find reductions
  (P = privatization, R = reductions)?
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MethodCapabilities:
    method: str
    optimal_schedule: str
    sequential_portions: str
    global_sync: str
    restricts_loop: str
    priv_or_reductions: str
    footnotes: str = ""


#: Transcription of the paper's Table II (footnote digits kept inline).
TABLE_II_ROWS: tuple[MethodCapabilities, ...] = (
    MethodCapabilities(
        "Rauchwerger/Amato/Padua [31]", "Yes", "No", "No", "No", "P,R"
    ),
    MethodCapabilities(
        "Zhu/Yew [49]", "No(1)", "No", "Yes(2)", "No", "No",
        footnotes="(1) phases serialize concurrent reads; (2) CAS per access",
    ),
    MethodCapabilities(
        "Midkiff/Padua [27]", "Yes", "No", "Yes(2)", "No", "No"
    ),
    MethodCapabilities(
        "Krothapalli/Sadayappan [18]", "No(3)", "No", "Yes(2)", "No", "P",
        footnotes="(3) renaming overhead on every access",
    ),
    MethodCapabilities(
        "Chen/Yew/Torrellas [13]", "No(1,3)", "No", "Yes", "No", "No"
    ),
    MethodCapabilities(
        "Xu/Chaudhary [46,45]", "Yes", "No", "Yes", "No", "No"
    ),
    MethodCapabilities(
        "Saltz/Mirchandaney [35]", "No(3)", "No", "Yes", "Yes(5)", "No",
        footnotes="(5) loops without output dependences only",
    ),
    MethodCapabilities(
        "Saltz et al. [37]", "Yes", "Yes(4)", "Yes", "Yes(5)", "No",
        footnotes="(4) sequential inspector (topological sort)",
    ),
    MethodCapabilities(
        "Leung/Zahorjan [22]", "Yes", "No", "Yes", "Yes(5)", "No"
    ),
    MethodCapabilities(
        "Polychronopoulos [30]", "No", "No", "No", "No", "No"
    ),
    MethodCapabilities(
        "Rauchwerger/Padua [32,34] (this work)", "No(6)", "No", "No", "No", "P,R",
        footnotes="(6) produces a doall or falls back to serial — no staging",
    ),
)
