"""The preprocessed DOACROSS of Saltz & Mirchandaney [35].

Unlike the staged (wavefront) methods, DOACROSS pipelines the loop:
iterations are dealt to processors in wrapped (cyclic) order and run
concurrently, with busy-waits ensuring that every value is produced
before it is consumed.  Applicable only when the loop has no output
dependences (old/new copies handle the anti dependences).

The simulation computes per-iteration completion times directly::

    start(i)  = max(completion of the previous iteration on i's processor,
                    completion of every flow predecessor + sync delay)
    completion(i) = start(i) + body cost(i)

which exposes DOACROSS's character: perfectly parallel prefixes pipeline
well, but a dependence chain serializes the pipeline with a sync penalty
per hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.trace import IterationTrace
from repro.errors import BaselineInapplicable
from repro.interp.costs import IterationCost
from repro.machine.costmodel import CostModel


@dataclass
class DoacrossTime:
    """Simulated DOACROSS execution of one loop."""

    total: float
    completion: list[float]
    sync_waits: int  # number of cross-processor producer waits

    @property
    def method(self) -> str:
        return "Saltz/Mirchandaney (DOACROSS)"


def simulate_doacross(
    trace: IterationTrace,
    iteration_costs: list[IterationCost],
    model: CostModel,
) -> DoacrossTime:
    """Price a wrapped DOACROSS execution of the traced loop."""
    if trace.has_output_dependences():
        raise BaselineInapplicable(
            "DOACROSS requires a loop with no output dependences"
        )
    p = model.num_procs
    preds = trace.flow_predecessors()
    cycles = [model.iteration_cycles(c) for c in iteration_costs]

    completion: list[float] = [0.0] * trace.num_iterations
    proc_free = [0.0] * p
    sync_waits = 0
    for i in range(trace.num_iterations):
        proc = i % p  # wrapped assignment
        start = proc_free[proc] + model.dispatch_per_iteration
        for pred in preds[i]:
            producer_done = completion[pred] + model.critical_section
            if producer_done > start:
                start = producer_done
                sync_waits += 1
        completion[i] = start + cycles[i]
        proc_free[proc] = completion[i]
    total = max(completion) if completion else 0.0
    return DoacrossTime(total=total, completion=completion, sync_waits=sync_waits)
