"""Timing a staged (wavefront) execution on the simulated machine.

A staged schedule runs stage after stage with a global barrier between
stages; within a stage the iterations spread over the processors.  The
method's inspector cost (per tracked access, possibly sequential) and
critical-section traffic are added, so the Table II methods can be
compared against the LRPD strategies on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.methods import MethodSchedule
from repro.interp.costs import IterationCost
from repro.machine.costmodel import CostModel
from repro.machine.schedule import assign_iterations, makespan
from repro.machine.schedule import ScheduleKind


@dataclass
class StagedTime:
    """Simulated time decomposition of one staged execution."""

    inspector: float
    stages: float
    barriers: float
    synchronization: float

    def total(self) -> float:
        return self.inspector + self.stages + self.barriers + self.synchronization


def staged_execution_time(
    schedule: MethodSchedule,
    iteration_costs: list[IterationCost],
    model: CostModel,
    *,
    inspector_access_cost: float = 4.0,
) -> StagedTime:
    """Price ``schedule`` on ``model``.

    ``inspector_access_cost`` is the abstract per-access unit each
    method's ``inspector_accesses`` field counts in.
    """
    p = model.num_procs
    cycles = [model.iteration_cycles(c) for c in iteration_costs]

    inspector_work = schedule.inspector_accesses * inspector_access_cost
    inspector = inspector_work / p if schedule.parallel_inspector else inspector_work

    stage_time = 0.0
    for stage in schedule.stages:
        assignment = assign_iterations(
            len(stage), p, ScheduleKind.DYNAMIC, costs=[cycles[i] for i in stage]
        )
        stage_cycles = [cycles[i] for i in stage]
        stage_time += makespan(assignment, stage_cycles, model.dispatch_per_iteration)

    barriers = model.barrier(p) * max(1, len(schedule.stages))
    synchronization = schedule.critical_sections * model.critical_section / p
    return StagedTime(
        inspector=inspector,
        stages=stage_time,
        barriers=barriers,
        synchronization=synchronization,
    )
