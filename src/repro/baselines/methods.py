"""Wavefront schedulers for the Table II methods.

Every scheduler maps an :class:`~repro.baselines.trace.IterationTrace` to
a :class:`MethodSchedule`.  The schedule-validity invariant — checked by
property tests — is that for each method, every predecessor relation the
method tracks is satisfied: a predecessor iteration is always placed in a
strictly earlier stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.trace import IterationTrace
from repro.errors import BaselineInapplicable


@dataclass
class MethodSchedule:
    """A staged (wavefront) schedule produced by one method."""

    method: str
    stages: list[list[int]]
    #: abstract inspector cost: per-access work in method-specific units.
    inspector_accesses: int = 0
    #: whether the inspector itself is parallelizable in the method.
    parallel_inspector: bool = True
    #: per-access critical-section count (methods built on synchronization).
    critical_sections: int = 0
    notes: str = ""

    @property
    def depth(self) -> int:
        return len(self.stages)

    def iteration_stage(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for stage_index, stage in enumerate(self.stages):
            for iteration in stage:
                out[iteration] = stage_index
        return out


def _stages_from_predecessors(preds: list[set[int]]) -> list[list[int]]:
    """Minimal-depth staging: each iteration's stage is 1 + max of its
    predecessors' stages (the classic longest-path levels)."""
    n = len(preds)
    level = [0] * n
    for iteration in range(n):
        if preds[iteration]:
            level[iteration] = 1 + max(level[p] for p in preds[iteration])
    depth = (max(level) + 1) if n else 0
    stages: list[list[int]] = [[] for _ in range(depth)]
    for iteration in range(n):
        stages[level[iteration]].append(iteration)
    return stages


def schedule_zhu_yew(trace: IterationTrace) -> MethodSchedule:
    """Zhu & Yew [49]: phased minimum-iteration selection.

    One shadow cell per element; in each phase the lowest-numbered
    unassigned iteration accessing each element wins, and an iteration
    executes once it wins *all* its elements.  Concurrent reads of one
    element conflict (a single shadow cell), so read-sharing iterations
    serialize.
    """
    preds = trace.conflict_predecessors(reads_conflict=True)
    stages = _stages_from_predecessors(preds)
    return MethodSchedule(
        method="Zhu/Yew",
        stages=stages,
        inspector_accesses=trace.total_accesses() * max(1, len(stages)),
        parallel_inspector=True,
        critical_sections=trace.total_accesses(),
        notes="phased; concurrent reads serialize; CAS per access per phase",
    )


def schedule_midkiff_padua(trace: IterationTrace) -> MethodSchedule:
    """Midkiff & Padua [27]: separate read/write shadows; concurrent reads."""
    preds = trace.conflict_predecessors(reads_conflict=False)
    stages = _stages_from_predecessors(preds)
    return MethodSchedule(
        method="Midkiff/Padua",
        stages=stages,
        inspector_accesses=trace.total_accesses() * max(1, len(stages)),
        parallel_inspector=True,
        critical_sections=trace.total_accesses(),
        notes="concurrent reads allowed",
    )


def schedule_krothapalli(trace: IterationTrace) -> MethodSchedule:
    """Krothapalli & Sadayappan [18]: run-time renaming removes anti and
    output dependences; only flow dependences stage the loop."""
    preds = trace.flow_predecessors()
    stages = _stages_from_predecessors(preds)
    return MethodSchedule(
        method="Krothapalli/Sadayappan",
        stages=stages,
        inspector_accesses=trace.total_accesses() * 2,  # renaming indirection
        parallel_inspector=True,
        critical_sections=trace.total_accesses(),
        notes="anti/output removed by renaming (privatization-like)",
    )


def schedule_chen_yew_torrellas(trace: IterationTrace) -> MethodSchedule:
    """Chen, Yew & Torrellas [13]: Zhu/Yew variant with private-storage
    preprocessing that tolerates hot spots (cheaper constants, same
    conservative read serialization on the shared phase)."""
    preds = trace.conflict_predecessors(reads_conflict=True)
    stages = _stages_from_predecessors(preds)
    return MethodSchedule(
        method="Chen/Yew/Torrellas",
        stages=stages,
        inspector_accesses=trace.total_accesses(),  # hot-spot work is private
        parallel_inspector=True,
        critical_sections=max(1, trace.total_accesses() // 4),
        notes="hot-spot accesses preprocessed in private storage",
    )


def schedule_xu_chaudhary(trace: IterationTrace) -> MethodSchedule:
    """Xu & Chaudhary [46,45]: time-stamping; no serialization on reads."""
    preds = trace.conflict_predecessors(reads_conflict=False)
    stages = _stages_from_predecessors(preds)
    return MethodSchedule(
        method="Xu/Chaudhary",
        stages=stages,
        inspector_accesses=trace.total_accesses() * 2,  # timestamp maintenance
        parallel_inspector=True,
        critical_sections=max(1, trace.total_accesses() // 4),
        notes="time-stamp algorithm, minimal depth",
    )


def schedule_saltz(trace: IterationTrace) -> MethodSchedule:
    """Saltz, Mirchandaney & Crowley [35,37]: sequential-inspector
    topological sort over flow dependences; anti dependences handled with
    old/new versions.  Requires a loop with no output dependences."""
    if trace.has_output_dependences():
        raise BaselineInapplicable(
            "Saltz et al. requires a loop with no output dependences"
        )
    preds = trace.flow_predecessors()
    stages = _stages_from_predecessors(preds)
    return MethodSchedule(
        method="Saltz et al.",
        stages=stages,
        inspector_accesses=trace.total_accesses(),
        parallel_inspector=False,  # the topological sort is sequential
        critical_sections=0,
        notes="sequential inspector; no output dependences allowed",
    )


def schedule_leung_zahorjan(
    trace: IterationTrace, num_sections: int = 8
) -> MethodSchedule:
    """Leung & Zahorjan [22]: *sectioning* parallelizes Saltz's inspector
    by splitting the iteration space into contiguous sections whose
    subschedules are computed independently and concatenated — a correct
    but generally deeper-than-minimal schedule."""
    if trace.has_output_dependences():
        raise BaselineInapplicable(
            "Leung/Zahorjan (sectioning) inherits Saltz's no-output-"
            "dependence restriction"
        )
    preds = trace.flow_predecessors()
    n = trace.num_iterations
    section_size = max(1, math.ceil(n / num_sections))
    stages: list[list[int]] = []
    for begin in range(0, n, section_size):
        end = min(begin + section_size, n)
        local_preds = [
            {p - begin for p in preds[i] if begin <= p < end}
            for i in range(begin, end)
        ]
        for stage in _stages_from_predecessors(local_preds):
            stages.append([begin + i for i in stage])
    return MethodSchedule(
        method="Leung/Zahorjan",
        stages=stages,
        inspector_accesses=trace.total_accesses(),
        parallel_inspector=True,
        critical_sections=0,
        notes=f"sectioned inspector ({num_sections} sections), concatenated",
    )


def schedule_polychronopoulos(trace: IterationTrace) -> MethodSchedule:
    """Polychronopoulos [30]: maximal *contiguous* blocks of iterations
    with no dependence into the current block."""
    preds = trace.conflict_predecessors(reads_conflict=False)
    stages: list[list[int]] = []
    current: list[int] = []
    current_set: set[int] = set()
    for iteration in range(trace.num_iterations):
        if preds[iteration] & current_set:
            stages.append(current)
            current = []
            current_set = set()
        current.append(iteration)
        current_set.add(iteration)
    if current:
        stages.append(current)
    return MethodSchedule(
        method="Polychronopoulos",
        stages=stages,
        inspector_accesses=trace.total_accesses(),
        parallel_inspector=False,
        critical_sections=0,
        notes="contiguous dependence-free blocks (not minimal depth)",
    )


#: name -> scheduler, in Table II order.
ALL_METHODS = {
    "Zhu/Yew": schedule_zhu_yew,
    "Midkiff/Padua": schedule_midkiff_padua,
    "Krothapalli/Sadayappan": schedule_krothapalli,
    "Chen/Yew/Torrellas": schedule_chen_yew_torrellas,
    "Xu/Chaudhary": schedule_xu_chaudhary,
    "Saltz et al.": schedule_saltz,
    "Leung/Zahorjan": schedule_leung_zahorjan,
    "Polychronopoulos": schedule_polychronopoulos,
}
