"""Access-trace extraction for the related-work schedulers.

All the Table II methods are inspector/executor style: they analyze the
loop's (address) trace before executing it.  The trace is obtained by a
reference-based serial interpretation with a recording observer — every
executed reference of the arrays of interest, tagged with its iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.ast_nodes import Program
from repro.interp.env import Environment
from repro.interp.events import READ, REDUX, WRITE, TraceRecorder
from repro.interp.interpreter import Interpreter, find_target_loop, split_at_loop
from repro.runtime.serial import loop_iteration_values


@dataclass
class IterationTrace:
    """Per-iteration element access sets over the traced arrays."""

    num_iterations: int
    #: iteration -> ordered list of (kind, array, element) accesses
    accesses: list[list[tuple[str, str, int]]] = field(default_factory=list)
    #: per-iteration operation cost (marks excluded), for the executor sim.
    iteration_costs: list = field(default_factory=list)

    def reads(self, iteration: int) -> set[tuple[str, int]]:
        return {
            (array, element)
            for kind, array, element in self.accesses[iteration]
            if kind in (READ, REDUX)
        }

    def writes(self, iteration: int) -> set[tuple[str, int]]:
        return {
            (array, element)
            for kind, array, element in self.accesses[iteration]
            if kind in (WRITE, REDUX)
        }

    def touched(self, iteration: int) -> set[tuple[str, int]]:
        return {(a, e) for _k, a, e in self.accesses[iteration]}

    def has_output_dependences(self) -> bool:
        """Is any element written by more than one iteration?"""
        writers: dict[tuple[str, int], int] = {}
        for iteration in range(self.num_iterations):
            for element in self.writes(iteration):
                if writers.setdefault(element, iteration) != iteration:
                    return True
        return False

    def flow_predecessors(self) -> list[set[int]]:
        """For each iteration, the earlier iterations whose writes it may
        read (conservative: every earlier writer of a read element)."""
        writers: dict[tuple[str, int], list[int]] = {}
        preds: list[set[int]] = [set() for _ in range(self.num_iterations)]
        for iteration in range(self.num_iterations):
            for element in self.reads(iteration):
                for writer in writers.get(element, ()):
                    preds[iteration].add(writer)
            for element in self.writes(iteration):
                writers.setdefault(element, []).append(iteration)
        return preds

    def conflict_predecessors(self, *, reads_conflict: bool) -> list[set[int]]:
        """Earlier iterations an iteration conflicts with.

        A write conflicts with every earlier access to the element; a
        read conflicts with earlier writers, and — when
        ``reads_conflict`` — with earlier readers as well (Zhu/Yew's
        single shadow cell serializes concurrent reads).
        """
        readers: dict[tuple[str, int], list[int]] = {}
        writers: dict[tuple[str, int], list[int]] = {}
        preds: list[set[int]] = [set() for _ in range(self.num_iterations)]
        for iteration in range(self.num_iterations):
            for element in self.reads(iteration):
                for writer in writers.get(element, ()):
                    preds[iteration].add(writer)
                if reads_conflict:
                    for reader in readers.get(element, ()):
                        preds[iteration].add(reader)
            for element in self.writes(iteration):
                for writer in writers.get(element, ()):
                    preds[iteration].add(writer)
                for reader in readers.get(element, ()):
                    preds[iteration].add(reader)
            for element in self.reads(iteration):
                readers.setdefault(element, []).append(iteration)
            for element in self.writes(iteration):
                writers.setdefault(element, []).append(iteration)
        return preds

    def total_accesses(self) -> int:
        return sum(len(per_iter) for per_iter in self.accesses)


def extract_trace(
    program: Program,
    inputs: dict,
    arrays: set[str] | None = None,
) -> IterationTrace:
    """Serially interpret the target loop, recording its access trace.

    ``arrays`` defaults to every array the loop writes (the arrays whose
    dependences matter for scheduling).
    """
    env = Environment(program, inputs)
    loop = find_target_loop(program)
    before, _after = split_at_loop(program, loop)

    if arrays is None:
        from repro.analysis.symtab import summarize_body

        arrays = set(summarize_body(loop.body).arrays_written)

    setup = Interpreter(program, env, value_based=False)
    setup.exec_block(before)

    recorder = TraceRecorder()
    interp = Interpreter(
        program, env, observer=recorder, tested=arrays, value_based=False
    )
    start, stop, step = interp.eval_loop_bounds(loop)
    values = loop_iteration_values(start, stop, step)

    trace = IterationTrace(num_iterations=len(values))
    for position, value in enumerate(values):
        recorder.iteration = position
        interp.exec_iteration(loop, value)
        trace.iteration_costs.append(interp.cost.iteration_costs[-1])
    grouped = recorder.by_iteration()
    for position in range(len(values)):
        trace.accesses.append(
            [(a.kind, a.array, a.index) for a in grouped.get(position, [])]
        )
    return trace
