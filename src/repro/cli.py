"""Command-line interface.

::

    python -m repro list                         # available workloads
    python -m repro analyze loop.f               # compiler's view of a file
    python -m repro lift kernel.py --run         # lift a real Python loop
    python -m repro lift corpus/histogram --run  # ... or a corpus loop
    python -m repro run bdna --strategy inspector --procs 14
    python -m repro table1                       # regenerate Table I
    python -m repro table2                       # regenerate Table II
    python -m repro figure mdg                   # speedup-vs-procs series
    python -m repro serve --socket /tmp/repro.sock   # loop-execution daemon
    python -m repro submit ocean --socket /tmp/repro.sock

Workload names are the short forms: track, bdna, mdg, adm, ocean,
spice, dyfesm.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.outcomes import TestMode
from repro.core.shadow import Granularity
from repro.machine.costmodel import fx80, fx2800
from repro.runtime.engines import DEFAULT_ENGINE, engine_names, get_engine
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads import PAPER_LOOPS

#: short name -> canonical Table I name.
SHORT_NAMES = {name.split("_")[0].lower(): name for name in PAPER_LOOPS}

_MACHINES = {"fx80": fx80, "fx2800": fx2800}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The LRPD test (Rauchwerger & Padua, PLDI 1995), reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in workloads")

    analyze = sub.add_parser("analyze", help="static analysis of a program file")
    analyze.add_argument(
        "file",
        help="source file; the frontend is chosen by suffix "
        "(.py lifts a real Python loop, anything else parses as "
        "mini-Fortran)",
    )

    from repro.frontend import frontend_names

    lift = sub.add_parser(
        "lift",
        help="lift a real Python for loop into the marked-doall IR "
        "(show the IR and classifier verdict; optionally run it)",
    )
    lift.add_argument(
        "target",
        help="a corpus loop name (corpus/<name> or bare <name>, see "
        "'repro list') or a path to a Python file defining the kernel "
        "(and optionally a make_inputs() builder)",
    )
    lift.add_argument(
        "--frontend", choices=["auto", *frontend_names()], default="auto",
        help="ingestion frontend (auto: by corpus name or file suffix)",
    )
    lift.add_argument(
        "--func", default=None, metavar="NAME",
        help="function to lift from a file (default: the first def)",
    )
    lift.add_argument(
        "--run", action="store_true",
        help="execute the lifted loop under the LRPD runtime and, for "
        "corpus targets, compare against native Python execution",
    )
    lift.add_argument(
        "--strategy", choices=[s.value for s in Strategy], default="speculative"
    )
    lift.add_argument("--machine", choices=sorted(_MACHINES), default="fx80")
    lift.add_argument("--procs", type=int, default=None)
    lift.add_argument(
        "--engine", choices=engine_names(), default=DEFAULT_ENGINE
    )

    run = sub.add_parser("run", help="run a built-in workload")
    run.add_argument("workload", choices=sorted(SHORT_NAMES))
    run.add_argument(
        "--strategy", choices=[s.value for s in Strategy], default="speculative"
    )
    run.add_argument("--machine", choices=sorted(_MACHINES), default="fx80")
    run.add_argument("--procs", type=int, default=None)
    run.add_argument(
        "--granularity", choices=[g.value for g in Granularity],
        default="iteration",
    )
    run.add_argument(
        "--test-mode", choices=[m.value for m in TestMode], default="lrpd"
    )
    run.add_argument(
        "--engine",
        choices=engine_names(),
        default=DEFAULT_ENGINE,
        help="doall iteration executor (walk = reference tree walker, "
        "parallel = real worker processes with shared-memory shadows, "
        "vectorized = whole-block NumPy lowering with bulk marking; "
        "jit = the vectorized lanes with Numba-compiled native kernels, "
        "falling back to vectorized when Numba is absent; "
        "classifier-rejected loops fall back to compiled; auto = "
        "per-loop adaptive selection)",
    )
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the worker-sharding engines "
        "(default for parallel: one per usable core)",
    )
    from repro.runtime.parallel_backend import BACKENDS, DEFAULT_BACKEND

    run.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=DEFAULT_BACKEND,
        help="worker-pool flavour for the worker-sharding engines "
        "(fork = processes over shared-memory shadows, threads = "
        "in-process workers with no fork or shared-memory setup)",
    )
    run.add_argument(
        "--verbose", action="store_true",
        help="print per-loop engine selection and fallback decisions "
        "with their reasons",
    )
    run.add_argument(
        "--strip-size", type=int, default=None, metavar="N",
        help="strip-mine speculation into strips of N iterations "
        "(implies --strategy stripped semantics; with the stripped "
        "strategy and no size, the whole loop is one strip)",
    )
    run.add_argument(
        "--adaptive-strips", action="store_true",
        help="grow/shrink the strip size from per-strip pass/fail feedback",
    )
    run.add_argument(
        "--profile-path", default=None, metavar="FILE",
        help="persist the loop-profile store (cached LRPD verdicts, "
        "per-engine run observations) as JSON at FILE: loaded before "
        "the run, saved atomically after; enables schedule reuse so a "
        "second invocation gets a verdict-cache hit",
    )

    serve = sub.add_parser(
        "serve",
        help="run the loop-execution daemon (unix socket, many clients)",
    )
    serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix-domain socket path to listen on",
    )
    serve.add_argument(
        "--queue-size", type=int, default=None, metavar="N",
        help="bound on accepted-but-unfinished jobs; a full queue "
        "rejects new jobs with a clean queue-full reply (default 64)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline before the daemon answers with a "
        "timeout error (the job keeps running and warms the profile "
        "store; default 120)",
    )
    serve.add_argument(
        "--profile-path", default=None, metavar="FILE",
        help="persist the fleet-shared loop-profile store at FILE: "
        "loaded at startup, flushed on graceful shutdown, so verdicts "
        "learned by one daemon lifetime seed the next",
    )

    submit = sub.add_parser(
        "submit", help="submit one job to a running repro serve daemon"
    )
    submit.add_argument("workload", help="servable workload name")
    submit.add_argument(
        "--socket", required=True, metavar="PATH",
        help="the daemon's unix-domain socket path",
    )
    submit.add_argument(
        "--strategy", choices=[s.value for s in Strategy], default="speculative"
    )
    submit.add_argument("--machine", choices=sorted(_MACHINES), default="fx80")
    submit.add_argument("--procs", type=int, default=None)
    submit.add_argument(
        "--engine", choices=engine_names(), default=DEFAULT_ENGINE
    )
    submit.add_argument("--workers", type=int, default=None, metavar="N")
    submit.add_argument("--strip-size", type=int, default=None, metavar="N")
    submit.add_argument(
        "--no-schedule-cache", action="store_true",
        help="force a fresh LRPD test even if the daemon's fleet store "
        "already holds a verdict for this loop",
    )
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="client-side wait for the reply (default: forever)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="print the raw report payload as JSON instead of a summary",
    )
    submit.add_argument(
        "--verbose", action="store_true",
        help="print the served report's per-loop engine selection and "
        "fallback decisions with their reasons (they cross the wire "
        "with the rest of the report)",
    )

    sub.add_parser("table1", help="regenerate Table I (all seven loops)")
    sub.add_parser("table2", help="regenerate Table II (method comparison)")

    report = sub.add_parser(
        "report",
        help="regenerate every evaluation artifact into a directory",
    )
    report.add_argument("--out", default="artifacts", help="output directory")
    report.add_argument(
        "--quick", action="store_true",
        help="smaller workloads / fewer processor counts (for smoke runs)",
    )

    figure = sub.add_parser("figure", help="speedup-vs-processors series")
    figure.add_argument("workload", choices=sorted(SHORT_NAMES))
    figure.add_argument("--machine", choices=sorted(_MACHINES), default="fx80")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "analyze":
        return _cmd_analyze(args.file)
    if args.command == "lift":
        return _cmd_lift(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "table2":
        return _cmd_table2()
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "report":
        return _cmd_report(args)
    return 2  # pragma: no cover - argparse enforces choices


def _cmd_list() -> int:
    from repro.workloads.pycorpus import CORPUS

    for short, name in sorted(SHORT_NAMES.items()):
        workload = PAPER_LOOPS[name]()
        print(f"{short:8s} {name:24s} {workload.description}")
    print()
    print("python corpus (repro lift corpus/<name>):")
    for name, loop in CORPUS.items():
        tag = "lifts " if loop.liftable else "reject"
        print(f"  corpus/{name:16s} {tag} {loop.description}")
    return 0


def _lift_file(path: str, frontend_name: str = "auto", func: str | None = None):
    """Lift a source file through the frontend registry.

    Returns a :class:`~repro.frontend.LiftResult`, or None after printing
    an error (unreadable file, broken module).  Python files may define a
    ``make_inputs()`` builder next to the kernel; its bindings give the
    lifter the array sizes and kinds.
    """
    from repro.frontend import get_frontend, registry

    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    if frontend_name == "auto":
        frontend = registry.for_path(path)
    else:
        frontend = get_frontend(frontend_name)
    inputs: dict = {}
    if frontend.name == "python":
        namespace: dict = {}
        try:
            exec(compile(text, path, "exec"), namespace)
        except Exception as exc:
            print(f"error: executing {path}: {exc}", file=sys.stderr)
            return None
        builder = namespace.get("make_inputs")
        if callable(builder):
            inputs = builder()
    return frontend.lift(text, name=func, inputs=inputs)


def _cmd_analyze(path: str) -> int:
    from repro.analysis.instrument import build_plan
    from repro.errors import ReproError

    result = _lift_file(path)
    if result is None:
        return 1
    try:
        if not result:
            print(f"error: {result.decision.explain()}", file=sys.stderr)
            return 1
        program = result.require()
        plan = build_plan(program)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"program {program.name}: target loop over '{plan.loop.var}'")
    print("static analysis :", plan.static_report.explain())
    print("plan            :", plan.summary())
    if plan.inspector_obstacles:
        for obstacle in plan.inspector_obstacles:
            print("inspector       :", obstacle)
    for name, cls in sorted(plan.scalar_classes.items()):
        print(f"scalar {name:12s}: {cls.value}")
    return 0


def _cmd_lift(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis.instrument import build_plan
    from repro.analysis.vectorize import classify_loop
    from repro.errors import ReproError
    from repro.workloads.pycorpus import CORPUS, lift_corpus_loop, run_native

    corpus_loop = CORPUS.get(args.target.removeprefix("corpus/"))
    if corpus_loop is not None:
        result = lift_corpus_loop(corpus_loop)
    else:
        result = _lift_file(args.target, args.frontend, args.func)
        if result is None:
            return 1

    print(f"frontend : {result.frontend}")
    print(f"lift     : {result.decision.explain()}")
    if not result:
        return 1
    program = result.require()
    print("--- lifted IR " + "-" * 50)
    print(result.source, end="")
    print("-" * 64)
    try:
        plan = build_plan(program)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("plan     :", plan.summary())
    verdict = classify_loop(program, plan.loop, plan)
    print(
        "vectorize:",
        "ok" if verdict else f"rejected ({verdict.reason})",
    )
    if not args.run:
        return 0

    model = _MACHINES[args.machine]()
    if args.procs is not None:
        model = model.with_procs(args.procs)
    config = RunConfig(model=model, engine=args.engine)
    runner = LoopRunner(program, result.inputs)
    report = runner.run(Strategy(args.strategy), config)
    print(report.describe())
    if corpus_loop is None or not corpus_loop.liftable:
        return 0
    arrays, scalars = run_native(corpus_loop)
    exact = True
    close = True
    for name in corpus_loop.check_arrays:
        lifted = report.env.arrays[name]
        native = arrays[name]
        exact = exact and lifted.tobytes() == native.tobytes()
        close = close and bool(np.allclose(lifted, native))
    for name in corpus_loop.returns:
        lifted_scalar = report.env.scalars.get(f"{name}_out")
        native_scalar = scalars[name]
        exact = exact and lifted_scalar == native_scalar
        close = close and bool(np.isclose(lifted_scalar, native_scalar))
    if exact:
        print("parity   : bit-identical to native Python execution")
    elif close:
        print("parity   : allclose to native Python execution "
              "(parallel reduction merge reassociates)")
    else:
        print("parity   : DIVERGED from native Python execution")
        return 1
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    workload = PAPER_LOOPS[SHORT_NAMES[args.workload]]()
    model = _MACHINES[args.machine]()
    if args.procs is not None:
        model = model.with_procs(args.procs)
    strategy = Strategy(args.strategy)
    if (args.strip_size is not None or args.adaptive_strips) and strategy in (
        Strategy.SPECULATIVE,
        Strategy.STRIPPED,
    ):
        strategy = Strategy.STRIPPED
    config = RunConfig(
        model=model,
        granularity=Granularity(args.granularity),
        test_mode=TestMode(args.test_mode),
        engine=args.engine,
        workers=args.workers,
        backend=args.backend,
        strip_size=args.strip_size,
        adaptive_strip_sizing=args.adaptive_strips,
        # A persistent profile exists to be reused: verdict lookups on.
        use_schedule_cache=args.profile_path is not None,
    )
    profiles = None
    if args.profile_path is not None:
        from repro.runtime.profile import LoopProfileStore

        profiles = LoopProfileStore(path=args.profile_path)
        if profiles.load_error is not None:
            print(
                f"profile store: starting empty ({profiles.load_error})",
                file=sys.stderr,
            )
    runner = LoopRunner(workload.program(), workload.inputs, profiles=profiles)

    from repro.errors import InspectorNotExtractable

    print(f"{workload.name}: {workload.description}")
    print("plan:", runner.plan.summary())
    try:
        report = runner.run(strategy, config)
    except InspectorNotExtractable as exc:
        print(f"inspector strategy unavailable: {exc}", file=sys.stderr)
        return 1
    print(report.describe())
    if args.verbose:
        for loop_key, reason in report.engine_decisions:
            print(
                f"engine decision : {loop_key}: "
                f"{report.engine_used} ({reason})"
            )
        requested = get_engine(args.engine)
        if report.fallbacks:
            for loop_key, reason in report.fallbacks:
                print(
                    f"engine fallback : {loop_key}: "
                    f"{args.engine} -> {report.engine_used} ({reason})"
                )
        elif requested.caps.whole_block or (
            report.engine_used is not None
            and get_engine(report.engine_used).caps.whole_block
        ):
            print("engine fallback : none (vectorized block committed)")
        if report.cache_stats:
            counters = ", ".join(
                f"{key}={value}" for key, value in report.cache_stats.items()
            )
            print(f"profile cache   : {counters}")
        if report.reused_schedule:
            print("schedule reuse  : verdict served from the profile store")
    print("phase breakdown (cycles):")
    for phase, cycles in report.times.nonzero_phases().items():
        print(f"  {phase:16s} {cycles:14.1f}")
    if report.wall is not None and report.wall.total() > 0.0:
        print(f"measured wall clock (s, engine={args.engine}):")
        for phase, seconds in report.wall.as_dict().items():
            if seconds > 0.0:
                print(f"  {phase:16s} {seconds:14.6f}")
    if report.strips:
        print("strips (index, first value, iters, outcome, cycles):")
        for s in report.strips:
            outcome = "pass" if s.passed else ("abort" if s.aborted else "fail")
            print(
                f"  #{s.index:<3d} @{s.first_value:<6d} x{s.iterations:<5d} "
                f"{outcome:5s} {s.time:14.1f}"
            )
    if profiles is not None:
        profiles.save()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import (
        DEFAULT_QUEUE_SIZE,
        DEFAULT_REQUEST_TIMEOUT,
        serve_forever,
    )

    return serve_forever(
        args.socket,
        queue_size=(
            args.queue_size if args.queue_size is not None
            else DEFAULT_QUEUE_SIZE
        ),
        request_timeout=(
            args.timeout if args.timeout is not None
            else DEFAULT_REQUEST_TIMEOUT
        ),
        profile_path=args.profile_path,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServiceError
    from repro.service.client import ReproClient
    from repro.service.protocol import JobRequest

    job = JobRequest(
        workload=args.workload,
        strategy=args.strategy,
        machine=args.machine,
        procs=args.procs,
        engine=args.engine,
        workers=args.workers,
        strip_size=args.strip_size,
        schedule_cache=not args.no_schedule_cache,
    )
    try:
        with ReproClient(args.socket, timeout=args.timeout) as client:
            if args.json:
                print(json.dumps(
                    client.submit_raw(job), indent=2, sort_keys=True
                ))
                return 0
            report = client.submit(job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.describe())
    if report.reused_schedule:
        print("schedule reuse  : verdict served from the daemon's fleet store")
    if args.verbose:
        for loop_key, reason in report.engine_decisions:
            print(
                f"engine decision : {loop_key}: "
                f"{report.engine_used} ({reason})"
            )
        for loop_key, reason in report.fallbacks:
            print(
                f"engine fallback : {loop_key}: "
                f"{args.engine} -> {report.engine_used} ({reason})"
            )
    print("phase breakdown (cycles):")
    for phase, cycles in report.times.nonzero_phases().items():
        print(f"  {phase:16s} {cycles:14.1f}")
    print(f"post-loop state : sha256 {report.env_digest[:16]}…")
    return 0


def _cmd_table1() -> int:
    from repro.evalx.table1 import build_table1, render_table1

    print(render_table1(build_table1()))
    return 0


def _cmd_table2() -> int:
    from repro.evalx.table2 import build_table2, render_table2

    print(render_table2(build_table2()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Regenerate every table/figure artifact without pytest."""
    import pathlib

    from repro.evalx.figures import (
        failure_cost_series,
        loop_figure,
        marking_overhead_series,
        partial_parallel_series,
        pd_vs_lpd_comparison,
        procwise_qualification,
        schedule_reuse_series,
    )
    from repro.evalx.render import ascii_chart, format_figure, format_table
    from repro.evalx.table1 import build_table1, render_table1
    from repro.evalx.table2 import build_table2, render_table2

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    quick = args.quick
    procs = (1, 2, 4, 8) if quick else (1, 2, 4, 8, 12, 14, 16)

    def write(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"wrote {out / name}.txt")

    if quick:
        from repro.workloads.bdna import build_bdna
        from repro.workloads.track import build_track

        loops = {
            "TRACK_NLFILT_do300": lambda: build_track(n=150),
            "BDNA_ACTFOR_do240": lambda: build_bdna(n=100),
        }
        table1_loops = loops
        figure_loops = loops
    else:
        table1_loops = None
        figure_loops = PAPER_LOOPS

    write("table1", render_table1(build_table1(table1_loops)))
    write("table2", render_table2(build_table2(n=120 if quick else 240)))

    for name, builder in figure_loops.items():
        workload = builder()
        figure = loop_figure(
            workload, procs=procs,
            include_setup=(name == "SPICE_LOAD_do40"),
        )
        short = name.split("_")[0].lower()
        write(
            f"fig_{short}",
            format_figure(figure, title=f"{name}: speedup vs processors")
            + "\n\n" + ascii_chart(figure, title=name),
        )

    points = failure_cost_series(
        fractions=(0.0, 0.1) if quick else (0.0, 0.02, 0.05, 0.1, 0.25, 0.5),
        n=200 if quick else 400,
    )
    write(
        "fig_failure",
        format_table(
            ["dep fraction", "passed", "time / serial"],
            [[p.dep_fraction, p.passed, p.slowdown_vs_serial] for p in points],
            title="Failed-speculation cost",
        ),
    )

    pp_points = partial_parallel_series(
        procs=(2, 8) if quick else (2, 4, 8, 14),
        n=200 if quick else 400,
        band_length=16 if quick else 24,
        strip_size=25 if quick else 50,
    )
    write(
        "fig_partial",
        format_table(
            ["procs", "unstripped", "stripped", "strips", "rolled back"],
            [[p.procs, p.unstripped_speedup, p.stripped_speedup,
              p.strips, p.strips_failed] for p in pp_points],
            title="Partially parallel loop: all-or-nothing vs strip-mined",
        ),
    )

    pd_points = pd_vs_lpd_comparison(live_fractions=(0.0, 1.0))
    write(
        "ablation_pd_vs_lpd",
        format_table(
            ["live fraction", "PD passes", "LPD passes"],
            [[p.live_fraction, p.pd_passed, p.lpd_passed] for p in pd_points],
            title="PD vs LPD",
        ),
    )

    pw_points = procwise_qualification(procs=(2, 4, 8) if quick else (2, 4, 7, 8, 12))
    write(
        "ablation_procwise",
        format_table(
            ["procs", "iteration-wise", "processor-wise", "speedup"],
            [[p.procs, p.iteration_wise_passed, p.processor_wise_passed,
              p.processor_wise_speedup] for p in pw_points],
            title="Iteration- vs processor-wise",
        ),
    )

    mk_points = marking_overhead_series(
        mark_costs=(0.0, 4.0, 16.0) if quick else (0.0, 2.0, 4.0, 8.0, 16.0)
    )
    write(
        "ablation_marking",
        format_table(
            ["mark cost", "overhead factor", "speedup at p=8"],
            [[p.mark_cost, p.overhead_factor, p.speedup_at_p] for p in mk_points],
            title="Marking-cost sensitivity",
        ),
    )

    without, with_cache = schedule_reuse_series(invocations=3 if quick else 8)
    write(
        "fig_ocean_reuse",
        format_table(
            ["invocation", "no reuse", "with reuse", "reused?"],
            [[a.invocation, a.time, b.time, b.reused]
             for a, b in zip(without, with_cache)],
            title="OCEAN schedule reuse",
        ),
    )
    print(f"report complete: {out}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.evalx.figures import loop_figure
    from repro.evalx.render import format_figure

    name = SHORT_NAMES[args.workload]
    workload = PAPER_LOOPS[name]()
    figure = loop_figure(
        workload,
        model=_MACHINES[args.machine](),
        include_setup=(name == "SPICE_LOAD_do40"),
    )
    print(format_figure(figure, title=f"{name}: speedup vs processors"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
