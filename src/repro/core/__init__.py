"""The LRPD run-time library: the paper's primary contribution.

* :mod:`repro.core.shadow` — shadow arrays, the ``markread`` /
  ``markwrite`` / ``markredux`` operations and the counters ``tw``/``tm``;
* :mod:`repro.core.lrpd` — the post-execution (fully parallel) analysis
  phase of the LRPD test, plus the reference-based PD-test variant;
* :mod:`repro.core.checkpoint` — state saving/restoring for speculation;
* :mod:`repro.core.privatize` — per-processor private array copies with
  dynamic last-value assignment;
* :mod:`repro.core.reduction_exec` — per-processor reduction partial
  accumulators and their parallel merge.

Schedule reuse across invocations (paper §IV.D) lives in
:mod:`repro.runtime.profile` together with the rest of the runtime's
per-loop memory.
"""

from repro.core.checkpoint import Checkpoint
from repro.core.lrpd import LrpdResult, analyze_shadows
from repro.core.outcomes import ArrayTestDetail, TestMode
from repro.core.privatize import PrivateCopies
from repro.core.reduction_exec import REDUCTION_IDENTITY, ReductionPartials
from repro.core.shadow import Granularity, ShadowArray, ShadowMarker

__all__ = [
    "ArrayTestDetail",
    "Checkpoint",
    "Granularity",
    "LrpdResult",
    "PrivateCopies",
    "REDUCTION_IDENTITY",
    "ReductionPartials",
    "ShadowArray",
    "ShadowMarker",
    "TestMode",
    "analyze_shadows",
]
