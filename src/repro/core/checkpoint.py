"""Checkpointing for speculative execution.

Before the speculative doall runs, every array the loop may write (and
the scalar state) is saved; if the test fails the state is rolled back
and the loop re-executes serially.  The paper charges this as part of the
speculation overhead; :attr:`elements_saved` feeds the machine model.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.interp.env import Environment


class Checkpoint:
    """A restorable snapshot of the arrays a loop may modify."""

    def __init__(self, env: Environment, arrays: Iterable[str]):
        self._env = env
        self._arrays: dict[str, np.ndarray] = env.snapshot_arrays(sorted(set(arrays)))
        self._scalars = env.snapshot_scalars()
        self.elements_saved = int(sum(a.size for a in self._arrays.values()))

    @property
    def array_names(self) -> tuple[str, ...]:
        return tuple(self._arrays)

    def saved_array(self, name: str) -> np.ndarray:
        """Read-only view of the saved copy (used for private copy-in)."""
        return self._arrays[name]

    def restore(self) -> None:
        """Roll the environment back to the captured state."""
        self._env.restore_arrays(self._arrays)
        self._env.restore_scalars(self._scalars)
