"""Native (Numba-lowered) kernels for the speculative hot paths.

The ``jit`` execution engine lowers the two hot inner loops of the
whole-block lane executor to native code: the fused shadow-marking
replay (:meth:`repro.core.shadow.ShadowArray.stage_stream_vec` hands the
sorted access stream to :func:`stage_stream_kernel`) and the commit-side
scatters/folds of :class:`repro.interp.vectorized_spec._BlockExecutor`
(:func:`fold_partials_kernel`, :func:`scatter_writes_kernel`).

The kernels are written as plain Python functions over numpy arrays —
runnable (and property-tested) without Numba — and lazily compiled with
``numba.njit(cache=True)`` when Numba is importable.  The dependency is
strictly optional: :func:`load_kernels` returns ``None`` when Numba is
absent or compilation fails, and :func:`unavailable_reason` carries the
reason the jit engine records on its :class:`EngineFallback`.

Bit-identity is by construction, not by luck: marking is independent
per element, so a sequential replay of the (element, rank)-sorted stream
segment by segment applies exactly the per-access rules of
``mark_write``/``mark_read``/``mark_redux`` — the same rules the numpy
segment arithmetic reproduces — and the commit kernels apply their
updates in the very same sorted order the numpy scatters/``ufunc.at``
folds use.
"""

from __future__ import annotations

import time

import numpy as np

#: test hook: when True, :func:`load_kernels` returns the plain-Python
#: kernel bodies even when Numba is importable (or absent), so the jit
#: execution lane itself is exercised — and parity-tested — without the
#: native dependency.
force_python_kernels = False


# ---------------------------------------------------------------------------
# Kernel bodies (plain Python, numba-njit-compatible)
# ---------------------------------------------------------------------------


def _stage_stream(
    idx_s, kind_s, ops_s, gran_s,
    w, r, np_, nx, redux_touched, multi_w, redux_op,
    last_write, min_write, max_exposed_read, min_exposed_read,
    eager,
    out_uniq, out_w, out_r, out_np, out_nx, out_rt, out_mw,
    out_op, out_lw, out_minw, out_maxer, out_miner,
):
    """Replay a sorted multi-granule access stream, segment by segment.

    Inputs are the (element, rank)-sorted parallel stream arrays plus the
    eleven pre-batch shadow buffers (read-only here — staging must not
    mutate shadow state).  Per element segment the per-access marking
    rules run in rank order over locals; the post-batch element state is
    written to the ``out_*`` arrays.  Returns ``(u, tw_delta,
    would_fail)`` where ``u`` is the number of distinct elements staged.
    """
    n = idx_s.shape[0]
    u = 0
    tw_delta = 0
    would_fail = False
    i = 0
    while i < n:
        e = idx_s[i]
        cw = w[e]
        cr = r[e]
        cnp = np_[e]
        cnx = nx[e]
        crt = redux_touched[e]
        cmw = multi_w[e]
        cop = np.int64(redux_op[e])
        clw = last_write[e]
        cminw = min_write[e]
        cmaxer = max_exposed_read[e]
        cminer = min_exposed_read[e]
        j = i
        while j < n and idx_s[j] == e:
            g = gran_s[j]
            kind = kind_s[j]
            if kind == 1:  # KIND_WRITE
                cw = True
                cnx = True
                if g < cminw:
                    cminw = g
                if clw != g:
                    tw_delta += 1
                    if clw != -1:
                        cmw = True
                    clw = g
            elif kind == 0:  # KIND_READ
                cr = True
                cnx = True
                if clw != g:
                    cnp = True
                    if g > cmaxer:
                        cmaxer = g
                    if g < cminer:
                        cminer = g
            else:  # KIND_REDUX
                cw = True
                cr = True
                cnp = True
                crt = True
                if g < cminw:
                    cminw = g
                if g > cmaxer:
                    cmaxer = g
                if g < cminer:
                    cminer = g
                code = ops_s[j]
                if cop == 0:
                    cop = code
                elif cop != code:
                    cnx = True
            j += 1
        out_uniq[u] = e
        out_w[u] = cw
        out_r[u] = cr
        out_np[u] = cnp
        out_nx[u] = cnx
        out_rt[u] = crt
        out_mw[u] = cmw
        out_op[u] = cop
        out_lw[u] = clw
        out_minw[u] = cminw
        out_maxer[u] = cmaxer
        out_miner[u] = cminer
        if eager and cnx and ((cmaxer > cminw) or crt):
            would_fail = True
        u += 1
        i = j
    return u, tw_delta, would_fail


def _fold_partials(procs, elems, vals, acc, op_code):
    """Fold sorted reduction contributions into the (proc, elem) grid.

    Sequential in the given order — the very order ``np.add.at`` /
    ``np.multiply.at`` accumulate in — so the float results are
    bit-identical to the numpy fold.  ``op_code`` follows
    :data:`repro.core.shadow.OP_CODES` (1: ``+``, 2: ``*``).
    """
    for i in range(procs.shape[0]):
        if op_code == 1:
            acc[procs[i], elems[i]] = acc[procs[i], elems[i]] + vals[i]
        else:
            acc[procs[i], elems[i]] = acc[procs[i], elems[i]] * vals[i]


def _scatter_writes(procs, elems, vals, stamps, data, wstamp):
    """Scatter sorted private writes; the last write per (proc, elem) wins.

    Writing every event in sorted order leaves exactly the
    winner-selection result the numpy group-last scatter computes.
    """
    for i in range(procs.shape[0]):
        data[procs[i], elems[i]] = vals[i]
        wstamp[procs[i], elems[i]] = stamps[i]


# ---------------------------------------------------------------------------
# Lazy loading / warm-up
# ---------------------------------------------------------------------------


class KernelSet:
    """The jit engine's kernel bundle (native or plain-Python bodies)."""

    __slots__ = ("stage_stream", "fold_partials", "scatter_writes", "native")

    def __init__(self, stage_stream, fold_partials, scatter_writes, native):
        self.stage_stream = stage_stream
        self.fold_partials = fold_partials
        self.scatter_writes = scatter_writes
        #: True when the bodies are numba-compiled dispatchers.
        self.native = native


_native: KernelSet | None = None
_python: KernelSet | None = None
_reason: str | None = None


def load_kernels() -> KernelSet | None:
    """The kernel set to execute with, or ``None`` when unavailable.

    Memoized.  With :data:`force_python_kernels` set, the plain-Python
    bodies are returned (the jit lane runs, un-compiled).  Otherwise
    Numba is imported lazily; an absent module or a failing ``njit``
    records its reason (see :func:`unavailable_reason`) and disables the
    jit engine for the process.
    """
    global _native, _python, _reason
    if force_python_kernels:
        if _python is None:
            _python = KernelSet(
                _stage_stream, _fold_partials, _scatter_writes, native=False
            )
        return _python
    if _native is not None:
        return _native
    if _reason is not None:
        return None
    try:
        import numba
    except ImportError as exc:
        _reason = f"native kernels unavailable: {exc}"
        return None
    try:
        # cache=True persists the compiled machine code on disk (keyed
        # by signature), so warm-up cost is paid once per host, not per
        # process — CI caches the directory via NUMBA_CACHE_DIR.
        jit = numba.njit(cache=True)
        _native = KernelSet(
            jit(_stage_stream), jit(_fold_partials), jit(_scatter_writes),
            native=True,
        )
    except Exception as exc:  # pragma: no cover - depends on numba install
        _reason = f"native kernel compilation failed: {exc}"
        return None
    return _native


def available() -> bool:
    """True when :func:`load_kernels` would return a kernel set."""
    return load_kernels() is not None


def unavailable_reason() -> str | None:
    """Why :func:`load_kernels` returned ``None`` (None when it didn't)."""
    return _reason


def reset_for_tests() -> None:
    """Drop the memoized kernel sets and reason (test isolation)."""
    global _native, _python, _reason
    _native = None
    _python = None
    _reason = None


def warm_up(kernels: KernelSet) -> float:
    """Drive every kernel once on tiny representative inputs.

    For native kernels this triggers (or disk-cache-loads) the njit
    compilation for the dtypes the engine dispatches with, so the first
    real doall runs at native speed; the measured seconds are what the
    execution report surfaces as ``jit_compile_s``.
    """
    start = time.perf_counter()
    n = 4
    stream = np.arange(n, dtype=np.int64) // 2
    kinds = np.array([1, 0, 2, 2], dtype=np.int64)
    ops = np.array([0, 0, 1, 1], dtype=np.int64)
    grans = np.arange(n, dtype=np.int64)
    size = int(stream.max()) + 1
    kernels.stage_stream(
        stream, kinds, ops, grans,
        np.zeros(size, dtype=bool), np.zeros(size, dtype=bool),
        np.zeros(size, dtype=bool), np.zeros(size, dtype=bool),
        np.zeros(size, dtype=bool), np.zeros(size, dtype=bool),
        np.zeros(size, dtype=np.int8),
        np.full(size, -1, dtype=np.int64),
        np.full(size, np.iinfo(np.int64).max, dtype=np.int64),
        np.full(size, -1, dtype=np.int64),
        np.full(size, np.iinfo(np.int64).max, dtype=np.int64),
        True,
        np.empty(n, dtype=np.int64),
        np.empty(n, dtype=np.bool_), np.empty(n, dtype=np.bool_),
        np.empty(n, dtype=np.bool_), np.empty(n, dtype=np.bool_),
        np.empty(n, dtype=np.bool_), np.empty(n, dtype=np.bool_),
        np.empty(n, dtype=np.int8),
        np.empty(n, dtype=np.int64), np.empty(n, dtype=np.int64),
        np.empty(n, dtype=np.int64), np.empty(n, dtype=np.int64),
    )
    pe = np.zeros(n, dtype=np.int64)
    fv = np.linspace(0.5, 1.0, n)
    for op_code in (1, 2):
        kernels.fold_partials(pe, pe, fv, np.ones((1, 1)), op_code)
    kernels.scatter_writes(
        pe, pe, fv, np.arange(n, dtype=np.int64),
        np.zeros((1, 1)), np.zeros((1, 1), dtype=np.int64),
    )
    return time.perf_counter() - start
