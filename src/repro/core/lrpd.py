"""The analysis phase of the LRPD test (paper §III).

Runs after the marked doall execution, entirely over the shadow arrays,
and decides whether the speculative parallel execution was valid.  The
paper's analysis (Fig. 3, extended with reductions in Fig. 5) is:

1. ``¬any(A_w ∧ A_r)`` and ``tw(A) == tm(A)`` → the loop was *fully
   parallel* for ``A``: no transform was necessary.
2. ``any(A_w ∧ A_np ∧ A_nx)`` → **fail**: some element carries a
   cross-granule flow of values that privatization cannot cover and that
   is not a valid reduction.
3. ``tw(A) == tm(A)`` → pass: privatization made the loop a doall.
4. ``tw(A) != tm(A)`` → the strict paper test **fails** (multiply-written
   elements); with *dynamic last-value assignment* (which this runtime
   implements — private writes carry iteration stamps and copy-out picks
   the highest) the pass extends to multiply-written elements, with one
   granularity-dependent exception:

   Under the **iteration-wise** test a covered read always returns the
   reading iteration's own write, so multiply-written elements are safe.
   Under the **processor-wise** test (Appendix A.1) a read covered by an
   *earlier iteration of the same processor* may still need a value
   written in between by another processor's iteration — undetectable at
   processor granularity — so any element that is both read and written
   by more than one granule must fail.

The PD-test variant (ICS'94, reference-based marking, no reduction
exemption) ignores ``A_nx``: its predicates use every element as "not a
reduction".

On a real machine this phase is fully parallel — ``O(s/p + log p)`` per
array; here it is vectorized with numpy and its *simulated* cost is
charged by :mod:`repro.machine.simulator`.
"""

from __future__ import annotations

import numpy as np

from repro.core.outcomes import ArrayTestDetail, LrpdResult, TestMode
from repro.core.shadow import Granularity, ShadowArray, ShadowMarker


def analyze_shadows(
    marker: ShadowMarker,
    mode: TestMode = TestMode.LRPD,
    *,
    dynamic_last_value: bool = True,
    directional: bool = True,
) -> LrpdResult:
    """Run the analysis phase over every tested array.

    ``dynamic_last_value=False`` reproduces the strict paper test, which
    fails whenever ``tw != tm``.  ``directional=False`` likewise falls
    back to the paper's bit-only flow predicate (``A_w ∧ A_np``), which
    conservatively rejects same-iteration read-modify-write patterns and
    anti dependences that copy-in privatization makes legal.
    """
    result = LrpdResult(mode=mode, granularity=marker.granularity.value)
    for name, shadow in marker.shadows.items():
        result.details[name] = _analyze_one(
            shadow, mode, marker.granularity, dynamic_last_value, directional
        )
    return result


class StripAggregator:
    """Folds per-strip LRPD analyses into a whole-loop verdict.

    The strip-mined pipeline (R-LRPD-style) tests and commits one strip
    of the iteration space at a time, resetting the shadows in between,
    so whole-loop quantities must be accumulated *before* each reset:

    * ``tw`` adds up across strips (granules partition by strip, so the
      per-(element, granule) write count is additive);
    * ``tm`` is the union of per-strip written-element sets (an element
      written in two strips counts once, exactly as in an unstripped
      run); reads, privatized elements and validated reductions union
      likewise;
    * ``failed_elements`` adds up per strip — it counts elements that
      made a *strip* fail (and be re-executed serially), so the
      aggregate ``passed`` means "no strip needed its rollback";
    * ``fully_parallel`` is recomputed over the unioned masks
      (``tw == tm`` and no element both written and read), matching the
      unstripped predicate.  Cross-strip flows are legal by construction
      (strips commit in serial order) and are deliberately not flagged
      as failures.

    When every strip passes, the unioned masks equal the marks an
    unstripped run would have accumulated, so ``passed``/``tw``/``tm``
    agree with the unstripped :func:`analyze_shadows` result bit for bit
    (property-tested on fully parallel inputs).
    """

    def __init__(self, mode: TestMode, granularity: Granularity):
        self.mode = mode
        self.granularity = granularity
        self._tw: dict[str, int] = {}
        self._written: dict[str, np.ndarray] = {}
        self._read: dict[str, np.ndarray] = {}
        self._privatized: dict[str, np.ndarray] = {}
        self._reduction: dict[str, np.ndarray] = {}
        self._failed: dict[str, int] = {}
        self.strips_failed = 0
        #: failed strips whose rollback re-executed as a pipelined
        #: DOACROSS instead of serially (a subset of ``strips_failed`` —
        #: the strip still failed its test and still counts there).
        self.strips_recovered = 0
        self.strips = 0

    def add_strip(
        self,
        marker: ShadowMarker,
        result: LrpdResult,
        *,
        recovered: bool = False,
    ) -> None:
        """Fold one strip's shadows + analysis in (call before the reset).

        ``recovered`` marks a failed strip whose re-execution went
        through the DOACROSS recovery tier; the fold itself is identical
        — the strip's marks, ``tw`` and failure counts accumulate exactly
        as for a serially re-run strip, since recovery re-executes the
        same iterations with the same final state.
        """
        self.strips += 1
        if not result.passed:
            self.strips_failed += 1
            if recovered:
                self.strips_recovered += 1
        for name, detail in result.details.items():
            shadow = marker.shadows[name]
            if name not in self._written:
                self._written[name] = shadow.w.copy()
                self._read[name] = shadow.r.copy()
                self._privatized[name] = shadow.privatized_mask()
                self._reduction[name] = shadow.reduction_mask()
                self._tw[name] = detail.tw
                self._failed[name] = detail.failed_elements
            else:
                self._written[name] |= shadow.w
                self._read[name] |= shadow.r
                self._privatized[name] |= shadow.privatized_mask()
                self._reduction[name] |= shadow.reduction_mask()
                self._tw[name] += detail.tw
                self._failed[name] += detail.failed_elements

    def result(self) -> LrpdResult:
        """The whole-loop verdict over everything folded in so far."""
        out = LrpdResult(mode=self.mode, granularity=self.granularity.value)
        for name in self._written:
            tw = self._tw[name]
            tm = int(np.count_nonzero(self._written[name]))
            fully_parallel = tw == tm and not bool(
                np.any(self._written[name] & self._read[name])
            )
            out.details[name] = ArrayTestDetail(
                name=name,
                tw=tw,
                tm=tm,
                fully_parallel=fully_parallel,
                privatized_elements=int(np.count_nonzero(self._privatized[name])),
                reduction_elements=(
                    0
                    if self.mode is TestMode.PD
                    else int(np.count_nonzero(self._reduction[name]))
                ),
                failed_elements=self._failed[name],
            )
        return out


def _analyze_one(
    shadow: ShadowArray,
    mode: TestMode,
    granularity: Granularity,
    dynamic_last_value: bool,
    directional: bool,
) -> ArrayTestDetail:
    w, r, np_ = shadow.w, shadow.r, shadow.np_
    nx = np.ones_like(shadow.nx) if mode is TestMode.PD else shadow.nx

    if directional and mode is TestMode.LRPD:
        failed_mask = shadow.flow_mask() & nx
        # Any mixing of reduction and ordinary accesses on one element is
        # order dependent regardless of granule stamps.
        failed_mask = failed_mask | (shadow.redux_touched & nx)
    else:
        failed_mask = w & np_ & nx
    if granularity is Granularity.PROCESSOR:
        # A covered-within-processor read of an element other processors
        # also wrote may need one of their values: fail it.
        failed_mask = failed_mask | (shadow.multi_w & r & nx)
    if not dynamic_last_value:
        # Strict paper semantics: multiply-written elements fail outright
        # (no per-element last-value tracking).
        failed_mask = failed_mask | (shadow.multi_w & nx)

    reduction_elements = (
        0
        if mode is TestMode.PD
        else int(np.count_nonzero(shadow.reduction_mask()))
    )
    tw, tm = shadow.tw, shadow.tm
    fully_parallel = tw == tm and not bool(np.any(w & r))

    return ArrayTestDetail(
        name=shadow.name,
        tw=tw,
        tm=tm,
        fully_parallel=fully_parallel,
        privatized_elements=int(np.count_nonzero(shadow.privatized_mask())),
        reduction_elements=reduction_elements,
        failed_elements=int(np.count_nonzero(failed_mask)),
    )
