"""Result records for the run-time test and execution strategies."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TestMode(Enum):
    """Which marking/analysis discipline produced a result."""

    LRPD = "lrpd"  # value-based marking, reduction-aware (the paper)
    PD = "pd"      # reference-based marking, no reduction exemption (ICS'94)


@dataclass(frozen=True)
class ArrayTestDetail:
    """Per-array outcome of the run-time analysis phase."""

    name: str
    tw: int
    tm: int
    #: no element both written and (exposed-)read anywhere, and tw == tm:
    #: the loop was fully parallel for this array without any transform.
    fully_parallel: bool
    #: number of elements whose reads were covered by same-granule writes
    #: (privatization did real work for them).
    privatized_elements: int
    #: number of elements validated as reductions (touched only by
    #: reduction statements with a consistent operator).
    reduction_elements: int
    #: number of elements that failed the test (written & exposed-read &
    #: not a valid reduction).
    failed_elements: int

    @property
    def passed(self) -> bool:
        return self.failed_elements == 0


@dataclass
class LrpdResult:
    """Outcome of the run-time analysis over all tested arrays."""

    mode: TestMode
    granularity: str  # "iteration" or "processor"
    details: dict[str, ArrayTestDetail] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(d.passed for d in self.details.values())

    @property
    def fully_parallel(self) -> bool:
        """True when no array needed privatization or reduction transforms."""
        return all(d.fully_parallel for d in self.details.values())

    def failed_arrays(self) -> list[str]:
        return [name for name, d in self.details.items() if not d.passed]

    def describe(self) -> str:
        if self.passed:
            kind = "fully parallel" if self.fully_parallel else "parallel with transforms"
            return f"{self.mode.value} test passed ({kind}, {self.granularity}-wise)"
        return (
            f"{self.mode.value} test failed on "
            + ", ".join(self.failed_arrays())
            + f" ({self.granularity}-wise)"
        )
