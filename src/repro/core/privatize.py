"""Speculative array privatization with dynamic last-value assignment.

Each processor gets a private copy of every tested array (initialized
from the checkpoint: copy-in keeps speculative execution well defined
even when the test later fails).  Writes record the writing iteration;
copy-out propagates, per element, the value written by the *highest*
iteration — the paper's dynamic last-value assignment, which makes loops
with output dependences (``tw > tm``) finalize correctly.
"""

from __future__ import annotations

import numpy as np


class PrivateCopies:
    """Per-processor private copies of one array."""

    def __init__(self, name: str, base: np.ndarray, num_procs: int):
        if num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        self.name = name
        self.num_procs = num_procs
        self.size = int(base.size)
        #: (p, s) private data, copy-in from the checkpointed base values.
        self.data = np.tile(base, (num_procs, 1))
        #: (p, s) iteration stamp of the last private write, -1 = never.
        self.wstamp = np.full((num_procs, self.size), -1, dtype=np.int64)
        self.elements_initialized = num_procs * self.size
        self._rows: list[list] | None = None

    def value_rows(self) -> list[list]:
        """Per-processor Python-list mirrors of :attr:`data`.

        Scalar fast path for the compiled speculative engine: loads read
        the mirror (a list index instead of a numpy scalar extraction).
        ``data`` stays authoritative — a caller that reads the mirror must
        route *every* write through code that updates both, with the value
        coerced to the array's kind so mirrored reads equal
        ``data[p, i].item()`` bit for bit.
        """
        if self._rows is None:
            self._rows = [row.tolist() for row in self.data]
        return self._rows

    def load(self, proc: int, index: int) -> float | int:
        """Read the processor's private element (0-based index)."""
        value = self.data[proc, index]
        return value.item()

    def store(self, proc: int, index: int, value: float | int, iteration: int) -> None:
        """Write the processor's private element, stamping the iteration."""
        self.data[proc, index] = value
        self.wstamp[proc, index] = iteration

    def written_mask(self) -> np.ndarray:
        """Elements written by at least one processor."""
        return (self.wstamp >= 0).any(axis=0)

    def copy_out(self, shared: np.ndarray, exclude: np.ndarray | None = None) -> int:
        """Dynamic last-value assignment into ``shared``.

        ``exclude`` masks elements that must not be copied out (e.g.
        elements finalized by the reduction merge instead).  Returns the
        number of elements copied.
        """
        winners = np.argmax(self.wstamp, axis=0)
        written = self.written_mask()
        if exclude is not None:
            written = written & ~exclude
        indices = np.nonzero(written)[0]
        if indices.size:
            shared[indices] = self.data[winners[indices], indices]
        return int(indices.size)
