"""Parallel reduction execution: per-processor partials and their merge.

During the speculative doall, every access made by a validated reduction
statement is routed to the executing processor's *partial accumulator*
for that element, initialized to the operator's identity.  A chain such
as ``t = a(j); t2 = t + c; a(j) = t2`` therefore accumulates ``c`` into
the partial, whatever private temporaries the value flows through.

After the test passes, partials are merged into the shared array:
``a(j) = a(j) ⊕ partial_1(j) ⊕ ... ⊕ partial_p(j)`` — associative and
commutative, so any merge order is valid; a real machine does it in
``O(touched/p + log p)`` by recursive doubling [19, 21], which is the
cost the machine model charges.
"""

from __future__ import annotations

import math

import numpy as np

REDUCTION_IDENTITY: dict[str, float] = {
    "+": 0.0,
    "*": 1.0,
    "min": math.inf,
    "max": -math.inf,
}

COMBINE = {
    "+": lambda a, b: a + b,
    "*": lambda a, b: a * b,
    "min": min,
    "max": max,
}


class ReductionPartials:
    """Per-processor partial accumulators for one reduction array.

    Sparse (dict-based) per processor: reduction loops typically touch a
    subset of elements, and operators may differ per element (the test
    validates per-element operator consistency; conflicting runs are
    discarded anyway).
    """

    def __init__(self, name: str, num_procs: int):
        if num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        self.name = name
        self.num_procs = num_procs
        #: per-processor {element -> (op, partial value)}
        self._partials: list[dict[int, tuple[str, float]]] = [
            {} for _ in range(num_procs)
        ]

    def load(self, proc: int, index: int, op: str) -> float:
        """Current partial for (proc, element); identity if untouched."""
        entry = self._partials[proc].get(index)
        if entry is None:
            return REDUCTION_IDENTITY[op]
        return entry[1]

    def proc_maps(self) -> list[dict[int, tuple[str, float]]]:
        """The per-processor partial maps themselves.

        Fast-path surface for the compiled speculative engine; entries
        must keep the ``(op, value)`` shape :meth:`store` writes.
        """
        return self._partials

    def store(self, proc: int, index: int, op: str, value: float) -> None:
        self._partials[proc][index] = (op, value)

    def touched_elements(self) -> set[int]:
        touched: set[int] = set()
        for partial in self._partials:
            touched |= set(partial)
        return touched

    def touched_mask(self, size: int) -> np.ndarray:
        mask = np.zeros(size, dtype=bool)
        for index in self.touched_elements():
            mask[index] = True
        return mask

    def merge_into(self, shared: np.ndarray, valid_mask: np.ndarray | None = None) -> int:
        """Fold all partials into ``shared``; returns elements merged.

        ``valid_mask`` restricts the merge to elements the test validated
        as reductions (others are handled by rollback or copy-out).
        Operator conflicts across processors only occur in runs the test
        already rejected, so the first-seen operator per element is used.
        """
        merged: dict[int, tuple[str, float]] = {}
        for partial in self._partials:
            for index, (op, value) in partial.items():
                if valid_mask is not None and not valid_mask[index]:
                    continue
                if index in merged:
                    prev_op, prev = merged[index]
                    merged[index] = (prev_op, COMBINE[prev_op](prev, value))
                else:
                    merged[index] = (op, value)
        for index, (op, value) in merged.items():
            shared[index] = COMBINE[op](shared[index].item(), value)
        return len(merged)
