"""Shadow arrays and the marking operations of the LRPD test.

For each array ``A`` under test the paper keeps shadow arrays ``A_w``
(written), ``A_r`` (read), ``A_np`` (not privatizable: exposed-read) and
``A_nx`` (not a valid reduction element), plus two counters: ``tw(A)``,
the number of dynamic writes counted once per (element, granule) pair,
and ``tm(A)``, the number of distinct elements written.

*Granule* is the unit of the covering/coupling relation: the iteration
number for the iteration-wise test, the processor id for the
processor-wise variant of Appendix A.1 (iterations assigned to one
processor behave as a single "super-iteration"; the processor-wise test
requires each processor to execute its iterations in increasing order,
which the block-scheduled executor guarantees).

The paper marks into per-processor shadow structures and merges them
during the parallel analysis phase; because our doall execution is
emulated (deterministically interleaved), a single stamped shadow set is
semantically identical — the *cost* of the per-processor merge is charged
by the machine model (see :mod:`repro.machine.simulator`).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.interp.costs import CostCounter

_OP_CODES = {"+": 1, "*": 2, "min": 3, "max": 4}
_OP_NAMES = {code: op for op, code in _OP_CODES.items()}

#: sentinel for "never written" in the min-write-granule stamp.
_NEVER_WRITTEN = np.iinfo(np.int64).max


class Granularity(Enum):
    ITERATION = "iteration"
    PROCESSOR = "processor"


class ShadowArray:
    """Shadow state for one tested array of ``size`` elements."""

    def __init__(self, name: str, size: int, *, eager: bool = False):
        self.name = name
        self.size = size
        #: raise :class:`~repro.errors.SpeculationFailed` as soon as a
        #: mark makes the (directional, iteration-wise) test's failure
        #: certain — the on-the-fly hardware model [47].  Best effort:
        #: the post-execution analysis remains authoritative.
        self.eager = eager
        self.w = np.zeros(size, dtype=bool)
        self.r = np.zeros(size, dtype=bool)
        self.np_ = np.zeros(size, dtype=bool)
        self.nx = np.zeros(size, dtype=bool)
        self.redux_touched = np.zeros(size, dtype=bool)
        #: elements written by more than one granule (tw contributors > 1).
        self.multi_w = np.zeros(size, dtype=bool)
        self._redux_op = np.zeros(size, dtype=np.int8)
        #: granule of the most recent write, -1 when never written.
        self._last_write = np.full(size, -1, dtype=np.int64)
        #: earliest writing granule (sentinel: never written).
        self._min_write = np.full(size, _NEVER_WRITTEN, dtype=np.int64)
        #: latest exposed-read granule (sentinel -1: never exposed-read).
        self._max_exposed_read = np.full(size, -1, dtype=np.int64)
        self.tw = 0

    # -- marking operations (paper Fig. 3 / Fig. 5) -------------------------

    def mark_write(self, index: int, granule: int) -> None:
        """``markwrite(A, index)`` in the given granule (0-based element)."""
        self.w[index] = True
        self.nx[index] = True
        if granule < self._min_write[index]:
            self._min_write[index] = granule
        if self._last_write[index] != granule:
            self.tw += 1
            if self._last_write[index] != -1:
                self.multi_w[index] = True
            self._last_write[index] = granule
        if self.eager:
            self._eager_check(index)

    def mark_read(self, index: int, granule: int) -> None:
        """``markread(A, index)``: exposed unless covered by a write of the
        same granule."""
        self.r[index] = True
        self.nx[index] = True
        if self._last_write[index] != granule:
            self.np_[index] = True
            if granule > self._max_exposed_read[index]:
                self._max_exposed_read[index] = granule
        if self.eager:
            self._eager_check(index)

    def mark_redux(self, index: int, granule: int, op: str) -> None:
        """``markredux(A, index)``: a reduction-statement access.

        Sets ``A_w``/``A_r``/``A_np`` (a reduction is an exposed
        read-modify-write, so the element *would* fail the privatization
        criterion) but not ``A_nx`` — unless a different reduction
        operator already touched the element, which invalidates it.
        """
        self.w[index] = True
        self.r[index] = True
        self.np_[index] = True
        self.redux_touched[index] = True
        # A reduction access is a read-modify-write: it participates in the
        # directional stamps so that mixing with ordinary accesses on the
        # same element is still caught by the flow check (the element's nx
        # bit decides whether the flow is exempted).
        if granule < self._min_write[index]:
            self._min_write[index] = granule
        if granule > self._max_exposed_read[index]:
            self._max_exposed_read[index] = granule
        code = _OP_CODES[op]
        current = self._redux_op[index]
        if current == 0:
            self._redux_op[index] = code
        elif current != code:
            self.nx[index] = True
        if self.eager:
            self._eager_check(index)

    def _eager_check(self, index: int) -> None:
        """Abort when this element's failure is already certain.

        Covers the directional iteration-wise predicates — a definite
        flow (exposed read after another granule's write) or a
        reduction/ordinary mix.  Processor-wise-only conditions are left
        to the final analysis.
        """
        from repro.errors import SpeculationFailed

        if not self.nx[index]:
            return
        if self._max_exposed_read[index] > self._min_write[index]:
            raise SpeculationFailed(self.name, index)
        if self.redux_touched[index]:
            raise SpeculationFailed(self.name, index)

    # -- analysis-phase quantities ----------------------------------------

    @property
    def tm(self) -> int:
        """Number of distinct elements written (``sum(A_w)``)."""
        return int(np.count_nonzero(self.w))

    def conflict_mask(self) -> np.ndarray:
        """Elements with a cross-granule flow of values that privatization
        cannot cover and that are not valid reductions (bit version)."""
        return self.w & self.np_ & self.nx

    def flow_mask(self) -> np.ndarray:
        """Directional version of :meth:`conflict_mask`'s flow predicate.

        An element carries a true cross-granule flow of values only when
        some granule's exposed read comes *serially after* some other
        granule's write.  Same-granule read-modify-write (the OCEAN
        butterfly) and pure anti dependences are legal under copy-in
        privatization and are not flagged.  Granule numbering must follow
        serial order (iteration index, or processor id under block
        scheduling).
        """
        return self._max_exposed_read > self._min_write

    def reduction_mask(self) -> np.ndarray:
        """Elements validated as reductions."""
        return self.redux_touched & ~self.nx

    def reduction_op_of(self, index: int) -> str | None:
        code = int(self._redux_op[index])
        return _OP_NAMES.get(code)

    def privatized_mask(self) -> np.ndarray:
        """Written elements whose reads were all covered by same-granule
        writes (privatization did real work)."""
        return self.w & self.r & ~self.np_

    def last_write_granules(self) -> np.ndarray:
        """Per-element granule of the last write (-1 if never written)."""
        return self._last_write


class ShadowMarker:
    """The run-time marking library: an AccessObserver over shadow arrays.

    The executor advances :attr:`granule` before each iteration (to the
    iteration number or the executing processor id, depending on the
    test granularity) and the interpreter reports accesses through the
    observer interface.  Every mark is charged to the cost counter.
    """

    def __init__(
        self,
        sizes: dict[str, int],
        cost: CostCounter | None = None,
        granularity: Granularity = Granularity.ITERATION,
        *,
        eager: bool = False,
    ):
        self.shadows: dict[str, ShadowArray] = {
            name: ShadowArray(name, size, eager=eager) for name, size in sizes.items()
        }
        self.cost = cost if cost is not None else CostCounter()
        self.granularity = granularity
        self.granule = 0

    def set_granule(self, granule: int) -> None:
        self.granule = granule

    # 1-based indices arrive from the interpreter; shadows are 0-based.

    def on_read(self, array: str, index: int) -> None:
        self.cost.marks += 1
        self.shadows[array].mark_read(index - 1, self.granule)

    def on_write(self, array: str, index: int) -> None:
        self.cost.marks += 1
        self.shadows[array].mark_write(index - 1, self.granule)

    def on_redux(self, array: str, index: int, op: str) -> None:
        self.cost.marks += 1
        self.shadows[array].mark_redux(index - 1, self.granule, op)
