"""Shadow arrays and the marking operations of the LRPD test.

For each array ``A`` under test the paper keeps shadow arrays ``A_w``
(written), ``A_r`` (read), ``A_np`` (not privatizable: exposed-read) and
``A_nx`` (not a valid reduction element), plus two counters: ``tw(A)``,
the number of dynamic writes counted once per (element, granule) pair,
and ``tm(A)``, the number of distinct elements written.

*Granule* is the unit of the covering/coupling relation: the iteration
number for the iteration-wise test, the processor id for the
processor-wise variant of Appendix A.1 (iterations assigned to one
processor behave as a single "super-iteration"; the processor-wise test
requires each processor to execute its iterations in increasing order,
which the block-scheduled executor guarantees).

The paper marks into per-processor shadow structures and merges them
during the parallel analysis phase; because our doall execution is
emulated (deterministically interleaved), a single stamped shadow set is
semantically identical — the *cost* of the per-processor merge is charged
by the machine model (see :mod:`repro.machine.simulator`).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Mapping

import numpy as np

from repro.interp.costs import CostCounter

#: reduction-operator codes used by the shadow op stamps and the batched
#: marking buffers (0 means "no operator").
OP_CODES = {"+": 1, "*": 2, "min": 3, "max": 4}
OP_NAMES = {code: op for op, code in OP_CODES.items()}

#: access-kind codes for the batched marking buffers.
KIND_READ, KIND_WRITE, KIND_REDUX = 0, 1, 2

#: sentinel for "never written" in the min-write-granule stamp.
_NEVER_WRITTEN = np.iinfo(np.int64).max

#: below this many buffered marks (per array) the scalar loop beats the
#: numpy setup cost — ~15 vectorized passes cost roughly as much as a few
#: hundred scalar marks; both paths are semantically identical
#: (property-tested).
_BATCH_THRESHOLD = 512


class Granularity(Enum):
    ITERATION = "iteration"
    PROCESSOR = "processor"


def fused_order(idx: np.ndarray, rank: np.ndarray) -> np.ndarray:
    """Stable sort permutation of a stream by ``(idx, rank)``.

    One fused-key stable argsort beats a two-key lexsort (int32 keys
    when they fit — the sort runs about twice as fast).  All the guard
    arithmetic is Python-int (arbitrary precision), so shadow sizes at
    or above ``2**31`` cannot wrap a fixed-width intermediate into
    wrongly selecting the narrow key; streams whose combined key could
    overflow int64 fall back to ``np.lexsort``.
    """
    rank_min = int(rank.min())
    rank_span = int(rank.max()) - rank_min + 1
    idx_max = int(idx.max())
    if (idx_max + 1) * rank_span < 2**62:
        key = idx * rank_span + (rank - rank_min)
        if (idx_max + 1) * rank_span < 2**31:
            key = key.astype(np.int32)
        return np.argsort(key, kind="stable")
    return np.lexsort((rank, idx))


class _StagedBatch:
    """Post-batch shadow state for the touched elements, pre-commit."""

    __slots__ = (
        "uniq", "w", "r", "np_", "nx", "redux_touched", "multi_w",
        "redux_op", "last_write", "min_write", "max_exposed_read",
        "min_exposed_read", "tw_delta", "would_fail",
    )

    def __init__(self, **values: object):
        for name, value in values.items():
            setattr(self, name, value)


#: the eleven per-element shadow buffers of a :class:`ShadowArray`, with
#: their dtypes — the layout contract of buffer-backed construction
#: (:meth:`ShadowArray.from_buffers`) and of the shared-memory arena the
#: multiprocess backend maps worker shadows into.
SHADOW_FIELDS: tuple[tuple[str, type], ...] = (
    ("w", np.bool_),
    ("r", np.bool_),
    ("np_", np.bool_),
    ("nx", np.bool_),
    ("redux_touched", np.bool_),
    ("multi_w", np.bool_),
    ("_redux_op", np.int8),
    ("_last_write", np.int64),
    ("_min_write", np.int64),
    ("_max_exposed_read", np.int64),
    ("_min_exposed_read", np.int64),
)


class ShadowArray:
    """Shadow state for one tested array of ``size`` elements."""

    def __init__(self, name: str, size: int, *, eager: bool = False):
        self.name = name
        self.size = size
        #: raise :class:`~repro.errors.SpeculationFailed` as soon as a
        #: mark makes the (directional, iteration-wise) test's failure
        #: certain — the on-the-fly hardware model [47].  Best effort:
        #: the post-execution analysis remains authoritative.
        self.eager = eager
        self.w = np.zeros(size, dtype=bool)
        self.r = np.zeros(size, dtype=bool)
        self.np_ = np.zeros(size, dtype=bool)
        self.nx = np.zeros(size, dtype=bool)
        self.redux_touched = np.zeros(size, dtype=bool)
        #: elements written by more than one granule (tw contributors > 1).
        self.multi_w = np.zeros(size, dtype=bool)
        self._redux_op = np.zeros(size, dtype=np.int8)
        #: granule of the most recent write, -1 when never written.
        self._last_write = np.full(size, -1, dtype=np.int64)
        #: earliest writing granule (sentinel: never written).
        self._min_write = np.full(size, _NEVER_WRITTEN, dtype=np.int64)
        #: latest exposed-read granule (sentinel -1: never exposed-read).
        self._max_exposed_read = np.full(size, -1, dtype=np.int64)
        #: earliest exposed-read granule (sentinel: never exposed-read).
        #: Together with ``_min_write`` this gives the exact flow distance
        #: for singly-written elements, feeding the DOACROSS recovery tier.
        self._min_exposed_read = np.full(size, _NEVER_WRITTEN, dtype=np.int64)
        self.tw = 0

    def reset(self, *, eager: bool | None = None) -> None:
        """Clear all marks in place (buffer recycling between attempts).

        Re-attempts and schedule-reuse runs call this instead of
        reallocating the seven numpy buffers per array per attempt.
        """
        if eager is not None:
            self.eager = eager
        self.w[:] = False
        self.r[:] = False
        self.np_[:] = False
        self.nx[:] = False
        self.redux_touched[:] = False
        self.multi_w[:] = False
        self._redux_op[:] = 0
        self._last_write[:] = -1
        self._min_write[:] = _NEVER_WRITTEN
        self._max_exposed_read[:] = -1
        self._min_exposed_read[:] = _NEVER_WRITTEN
        self.tw = 0

    # -- marking operations (paper Fig. 3 / Fig. 5) -------------------------

    def mark_write(self, index: int, granule: int) -> None:
        """``markwrite(A, index)`` in the given granule (0-based element)."""
        self.w[index] = True
        self.nx[index] = True
        if granule < self._min_write[index]:
            self._min_write[index] = granule
        if self._last_write[index] != granule:
            self.tw += 1
            if self._last_write[index] != -1:
                self.multi_w[index] = True
            self._last_write[index] = granule
        if self.eager:
            self._eager_check(index)

    def mark_read(self, index: int, granule: int) -> None:
        """``markread(A, index)``: exposed unless covered by a write of the
        same granule."""
        self.r[index] = True
        self.nx[index] = True
        if self._last_write[index] != granule:
            self.np_[index] = True
            if granule > self._max_exposed_read[index]:
                self._max_exposed_read[index] = granule
            if granule < self._min_exposed_read[index]:
                self._min_exposed_read[index] = granule
        if self.eager:
            self._eager_check(index)

    def mark_redux(self, index: int, granule: int, op: str) -> None:
        """``markredux(A, index)``: a reduction-statement access.

        Sets ``A_w``/``A_r``/``A_np`` (a reduction is an exposed
        read-modify-write, so the element *would* fail the privatization
        criterion) but not ``A_nx`` — unless a different reduction
        operator already touched the element, which invalidates it.
        """
        self.w[index] = True
        self.r[index] = True
        self.np_[index] = True
        self.redux_touched[index] = True
        # A reduction access is a read-modify-write: it participates in the
        # directional stamps so that mixing with ordinary accesses on the
        # same element is still caught by the flow check (the element's nx
        # bit decides whether the flow is exempted).
        if granule < self._min_write[index]:
            self._min_write[index] = granule
        if granule > self._max_exposed_read[index]:
            self._max_exposed_read[index] = granule
        if granule < self._min_exposed_read[index]:
            self._min_exposed_read[index] = granule
        code = OP_CODES[op]
        current = self._redux_op[index]
        if current == 0:
            self._redux_op[index] = code
        elif current != code:
            self.nx[index] = True
        if self.eager:
            self._eager_check(index)

    # -- batched marking ----------------------------------------------------
    #
    # The compiled speculative engine buffers one iteration's accesses and
    # flushes them here in a handful of vectorized numpy operations instead
    # of one Python call per access.  The whole batch shares one granule,
    # so the only ordering that matters *within* the batch is the
    # read-covered-by-earlier-write relation, which the staging computes
    # from the buffered positions.

    def stage_stream_batch(
        self,
        kinds: np.ndarray,
        idx: np.ndarray,
        ops: np.ndarray,
        pos: np.ndarray,
        granule: int,
    ) -> "_StagedBatch":
        """Compute the post-batch shadow state without committing it.

        ``kinds``/``idx``/``ops``/``pos`` are parallel int arrays of one
        granule's access stream: the access kind (``KIND_*``), the 0-based
        element, the reduction-operator code (0 for plain accesses) and the
        stream position (any strictly ordered key).  Staging before
        committing lets the marker check the eager predicate across *all*
        tested arrays before mutating any of them.
        """
        uniq, inv = np.unique(idx, return_inverse=True)
        u = uniq.size

        w_sel = kinds == KIND_WRITE
        r_sel = kinds == KIND_READ
        x_sel = kinds == KIND_REDUX
        w_inv = inv[w_sel]
        r_inv = inv[r_sel]
        x_inv = inv[x_sel]

        pre_last = self._last_write[uniq]

        has_w = np.zeros(u, dtype=bool)
        has_w[w_inv] = True
        # position of the first in-batch write per element (covers reads
        # that come later in the stream; same granule by construction).
        first_wpos = np.full(u, np.iinfo(np.int64).max, dtype=np.int64)
        if w_inv.size:
            np.minimum.at(first_wpos, w_inv, pos[w_sel])

        has_r = np.zeros(u, dtype=bool)
        has_r[r_inv] = True
        has_exposed = np.zeros(u, dtype=bool)
        if r_inv.size:
            covered = (pre_last[r_inv] == granule) | (first_wpos[r_inv] < pos[r_sel])
            has_exposed[r_inv[~covered]] = True

        has_x = np.zeros(u, dtype=bool)
        has_x[x_inv] = True
        pre_op = self._redux_op[uniq].astype(np.int64)
        first_op = np.zeros(u, dtype=np.int64)
        conflict = np.zeros(u, dtype=bool)
        if x_inv.size:
            # First-op-wins: assign ops in descending position order so the
            # earliest access's operator lands last.
            order = np.argsort(pos[x_sel], kind="stable")[::-1]
            first_op[x_inv[order]] = ops[x_sel][order]
            resolved = np.where(pre_op != 0, pre_op, first_op)
            conflict[x_inv[ops[x_sel] != resolved[x_inv]]] = True

        new_writer = has_w & (pre_last != granule)
        wx = has_w | has_x
        ex = has_exposed | has_x
        pre_min = self._min_write[uniq]
        pre_max = self._max_exposed_read[uniq]
        pre_min_read = self._min_exposed_read[uniq]
        new_nx = self.nx[uniq] | has_w | has_r | conflict
        new_redux = self.redux_touched[uniq] | has_x
        new_min = np.where(wx, np.minimum(pre_min, granule), pre_min)
        new_max = np.where(ex, np.maximum(pre_max, granule), pre_max)
        new_min_read = np.where(
            ex, np.minimum(pre_min_read, granule), pre_min_read
        )

        would_fail = bool(
            self.eager and np.any(new_nx & ((new_max > new_min) | new_redux))
        )
        return _StagedBatch(
            uniq=uniq,
            w=self.w[uniq] | wx,
            r=self.r[uniq] | has_r | has_x,
            np_=self.np_[uniq] | ex,
            nx=new_nx,
            redux_touched=new_redux,
            multi_w=self.multi_w[uniq] | (new_writer & (pre_last != -1)),
            redux_op=np.where(pre_op != 0, pre_op, first_op).astype(np.int8),
            last_write=np.where(has_w, granule, pre_last),
            min_write=new_min,
            max_exposed_read=new_max,
            min_exposed_read=new_min_read,
            tw_delta=int(np.count_nonzero(new_writer)),
            would_fail=would_fail,
        )

    def commit_batch(self, staged: "_StagedBatch") -> None:
        """Apply a staged batch to the shadow state."""
        uniq = staged.uniq
        self.w[uniq] = staged.w
        self.r[uniq] = staged.r
        self.np_[uniq] = staged.np_
        self.nx[uniq] = staged.nx
        self.redux_touched[uniq] = staged.redux_touched
        self.multi_w[uniq] = staged.multi_w
        self._redux_op[uniq] = staged.redux_op
        self._last_write[uniq] = staged.last_write
        self._min_write[uniq] = staged.min_write
        self._max_exposed_read[uniq] = staged.max_exposed_read
        self._min_exposed_read[uniq] = staged.min_exposed_read
        self.tw += staged.tw_delta

    def mark_stream_batch(
        self,
        kinds: np.ndarray,
        idx: np.ndarray,
        ops: np.ndarray,
        pos: np.ndarray,
        granule: int,
    ) -> None:
        """Apply one granule's ordered access stream in bulk.

        Equivalent to replaying ``mark_write``/``mark_read``/``mark_redux``
        access-by-access.  Under eager detection a failing batch falls back
        to the scalar replay so the raised :class:`SpeculationFailed`
        identifies the same element the per-access path would have.
        """
        staged = self.stage_stream_batch(kinds, idx, ops, pos, granule)
        if staged.would_fail:
            self.replay_scalar(kinds, idx, ops, pos, granule)
            raise AssertionError("staged batch failed but scalar replay passed")
        self.commit_batch(staged)

    def replay_scalar(
        self,
        kinds: np.ndarray,
        idx: np.ndarray,
        ops: np.ndarray,
        pos: np.ndarray,
        granule: int,
    ) -> None:
        """Replay a stream through the per-access marking operations."""
        for at in np.argsort(pos, kind="stable"):
            kind = kinds[at]
            index = int(idx[at])
            if kind == KIND_WRITE:
                self.mark_write(index, granule)
            elif kind == KIND_READ:
                self.mark_read(index, granule)
            else:
                self.mark_redux(index, granule, OP_NAMES[int(ops[at])])

    def mark_write_batch(self, indices, granule: int) -> None:
        """Vectorized ``mark_write`` over an ordered index batch."""
        idx = np.asarray(indices, dtype=np.int64)
        self.mark_stream_batch(
            np.full(idx.size, KIND_WRITE, dtype=np.int64),
            idx,
            np.zeros(idx.size, dtype=np.int64),
            np.arange(idx.size, dtype=np.int64),
            granule,
        )

    def mark_read_batch(self, indices, granule: int) -> None:
        """Vectorized ``mark_read`` over an ordered index batch."""
        idx = np.asarray(indices, dtype=np.int64)
        self.mark_stream_batch(
            np.full(idx.size, KIND_READ, dtype=np.int64),
            idx,
            np.zeros(idx.size, dtype=np.int64),
            np.arange(idx.size, dtype=np.int64),
            granule,
        )

    def mark_redux_batch(self, indices, granule: int, op: str) -> None:
        """Vectorized ``mark_redux`` over an ordered index batch."""
        idx = np.asarray(indices, dtype=np.int64)
        self.mark_stream_batch(
            np.full(idx.size, KIND_REDUX, dtype=np.int64),
            idx,
            np.full(idx.size, OP_CODES[op], dtype=np.int64),
            np.arange(idx.size, dtype=np.int64),
            granule,
        )

    # -- multi-granule vectorized marking -----------------------------------
    #
    # The vectorized whole-block engine executes an entire doall block of
    # iterations at once, so its access streams span *many* granules.  The
    # staging below replays the per-access marking semantics with numpy
    # segment arithmetic: accesses are sorted by (element, stream rank) and
    # the sequential last-writer chain is reconstructed per element with a
    # running maximum, which is all the per-access rules depend on.

    def stage_stream_vec(
        self,
        kinds: np.ndarray,
        idx: np.ndarray,
        ops: np.ndarray,
        granules: np.ndarray,
        rank: np.ndarray,
        kernels=None,
    ) -> "_StagedBatch":
        """Stage a multi-granule access stream without committing it.

        ``kinds``/``idx``/``ops``/``granules``/``rank`` are parallel int64
        arrays: access kind (``KIND_*``), 0-based element, operator code
        (0 for plain accesses), the access's granule, and a key whose
        ascending (stable) order is the serial marking order.  The staged
        result is bit-identical to replaying the stream through
        ``mark_write``/``mark_read``/``mark_redux`` in rank order.

        ``kernels`` (a :class:`repro.core.jit_kernels.KernelSet`) routes
        the sorted stream through the native segment-replay kernel
        instead of the numpy segment arithmetic; marking is independent
        per element, so the rank-ordered per-element replay is the very
        definition of the staged semantics — both paths are
        property-tested identical.
        """
        n = int(idx.size)
        if n == 0:
            return _StagedBatch(
                uniq=np.empty(0, dtype=np.int64),
                w=np.empty(0, dtype=bool), r=np.empty(0, dtype=bool),
                np_=np.empty(0, dtype=bool), nx=np.empty(0, dtype=bool),
                redux_touched=np.empty(0, dtype=bool),
                multi_w=np.empty(0, dtype=bool),
                redux_op=np.empty(0, dtype=np.int8),
                last_write=np.empty(0, dtype=np.int64),
                min_write=np.empty(0, dtype=np.int64),
                max_exposed_read=np.empty(0, dtype=np.int64),
                min_exposed_read=np.empty(0, dtype=np.int64),
                tw_delta=0, would_fail=False,
            )
        perm = fused_order(idx, rank)
        idx_s = idx[perm]
        kind_s = kinds[perm]
        ops_s = ops[perm]
        gran_s = granules[perm]
        if kernels is not None:
            return self._stage_sorted_native(
                kernels, idx_s, kind_s, ops_s, gran_s
            )

        seg_start = np.empty(n, dtype=bool)
        seg_start[0] = True
        seg_start[1:] = idx_s[1:] != idx_s[:-1]
        seg_id = np.cumsum(seg_start) - 1
        uniq = idx_s[seg_start]
        u = uniq.size
        first_of_seg = np.flatnonzero(seg_start)
        seg_first = first_of_seg[seg_id]

        is_w = kind_s == KIND_WRITE
        is_r = kind_s == KIND_READ
        is_x = kind_s == KIND_REDUX

        pre_last = self._last_write[uniq]

        # Last-writer chain: index of the latest write strictly before each
        # access, within the same element segment; fall back to the
        # pre-batch last-write granule.
        gidx = np.arange(n, dtype=np.int64)
        w_at = np.where(is_w, gidx, np.int64(-1))
        last_w_upto = np.maximum.accumulate(w_at)
        prev_w = np.empty(n, dtype=np.int64)
        prev_w[0] = -1
        prev_w[1:] = last_w_upto[:-1]
        in_seg = prev_w >= seg_first
        prev_lw_gran = np.where(
            in_seg, gran_s[np.maximum(prev_w, 0)], pre_last[seg_id]
        )

        new_writer = is_w & (prev_lw_gran != gran_s)
        tw_delta = int(np.count_nonzero(new_writer))
        multi_contrib = new_writer & (prev_lw_gran != -1)
        exposed = is_r & (prev_lw_gran != gran_s)

        def seg_any(mask: np.ndarray) -> np.ndarray:
            out = np.zeros(u, dtype=bool)
            out[seg_id[mask]] = True
            return out

        has_w = seg_any(is_w)
        has_r = seg_any(is_r)
        has_x = seg_any(is_x)
        has_exposed = seg_any(exposed)
        has_multi = seg_any(multi_contrib)

        # Final last-write granule per element: the segment's last write.
        seg_last = np.empty(u, dtype=np.int64)
        seg_last[:-1] = first_of_seg[1:] - 1
        seg_last[-1] = n - 1
        final_w = last_w_upto[seg_last]
        final_in_seg = final_w >= first_of_seg
        last_write = np.where(
            final_in_seg, gran_s[np.maximum(final_w, 0)], pre_last
        )

        pre_min = self._min_write[uniq]
        pre_max = self._max_exposed_read[uniq]
        new_min = pre_min.copy()
        wx = is_w | is_x
        if wx.any():
            np.minimum.at(new_min, seg_id[wx], gran_s[wx])
        new_max = pre_max.copy()
        new_min_read = self._min_exposed_read[uniq].copy()
        ex = exposed | is_x
        if ex.any():
            np.maximum.at(new_max, seg_id[ex], gran_s[ex])
            np.minimum.at(new_min_read, seg_id[ex], gran_s[ex])

        # Reduction operators: first-op-wins against the pre-batch stamp,
        # with the in-batch first op taken in rank order.
        pre_op = self._redux_op[uniq].astype(np.int64)
        first_op = np.zeros(u, dtype=np.int64)
        conflict_any = np.zeros(u, dtype=bool)
        if is_x.any():
            first_x = np.full(u, n, dtype=np.int64)
            np.minimum.at(first_x, seg_id[is_x], gidx[is_x])
            batch_first = np.where(first_x < n, ops_s[np.minimum(first_x, n - 1)], 0)
            first_op = batch_first
            resolved = np.where(pre_op != 0, pre_op, batch_first)
            conflict = is_x & (ops_s != resolved[seg_id])
            conflict_any = seg_any(conflict)

        new_nx = self.nx[uniq] | has_w | has_r | conflict_any
        new_redux = self.redux_touched[uniq] | has_x
        would_fail = bool(
            self.eager and np.any(new_nx & ((new_max > new_min) | new_redux))
        )
        return _StagedBatch(
            uniq=uniq,
            w=self.w[uniq] | has_w | has_x,
            r=self.r[uniq] | has_r | has_x,
            np_=self.np_[uniq] | has_exposed | has_x,
            nx=new_nx,
            redux_touched=new_redux,
            multi_w=self.multi_w[uniq] | has_multi,
            redux_op=np.where(pre_op != 0, pre_op, first_op).astype(np.int8),
            last_write=last_write,
            min_write=new_min,
            max_exposed_read=new_max,
            min_exposed_read=new_min_read,
            tw_delta=tw_delta,
            would_fail=would_fail,
        )

    def _stage_sorted_native(
        self, kernels, idx_s, kind_s, ops_s, gran_s
    ) -> "_StagedBatch":
        """Stage a pre-sorted stream through the native replay kernel."""
        n = int(idx_s.size)
        out_uniq = np.empty(n, dtype=np.int64)
        out_w = np.empty(n, dtype=np.bool_)
        out_r = np.empty(n, dtype=np.bool_)
        out_np = np.empty(n, dtype=np.bool_)
        out_nx = np.empty(n, dtype=np.bool_)
        out_rt = np.empty(n, dtype=np.bool_)
        out_mw = np.empty(n, dtype=np.bool_)
        out_op = np.empty(n, dtype=np.int8)
        out_lw = np.empty(n, dtype=np.int64)
        out_minw = np.empty(n, dtype=np.int64)
        out_maxer = np.empty(n, dtype=np.int64)
        out_miner = np.empty(n, dtype=np.int64)
        u, tw_delta, would_fail = kernels.stage_stream(
            idx_s, kind_s, ops_s, gran_s,
            self.w, self.r, self.np_, self.nx, self.redux_touched,
            self.multi_w, self._redux_op, self._last_write,
            self._min_write, self._max_exposed_read, self._min_exposed_read,
            self.eager,
            out_uniq, out_w, out_r, out_np, out_nx, out_rt, out_mw,
            out_op, out_lw, out_minw, out_maxer, out_miner,
        )
        u = int(u)
        return _StagedBatch(
            uniq=out_uniq[:u],
            w=out_w[:u], r=out_r[:u], np_=out_np[:u], nx=out_nx[:u],
            redux_touched=out_rt[:u], multi_w=out_mw[:u],
            redux_op=out_op[:u], last_write=out_lw[:u],
            min_write=out_minw[:u], max_exposed_read=out_maxer[:u],
            min_exposed_read=out_miner[:u],
            tw_delta=int(tw_delta), would_fail=bool(would_fail),
        )

    def replay_scalar_vec(
        self,
        kinds: np.ndarray,
        idx: np.ndarray,
        ops: np.ndarray,
        granules: np.ndarray,
        rank: np.ndarray,
    ) -> None:
        """Replay a multi-granule stream through the per-access marks."""
        for at in np.argsort(rank, kind="stable"):
            kind = kinds[at]
            index = int(idx[at])
            granule = int(granules[at])
            if kind == KIND_WRITE:
                self.mark_write(index, granule)
            elif kind == KIND_READ:
                self.mark_read(index, granule)
            else:
                self.mark_redux(index, granule, OP_NAMES[int(ops[at])])

    def mark_stream_vec(
        self,
        kinds: np.ndarray,
        idx: np.ndarray,
        ops: np.ndarray,
        granules: np.ndarray,
        rank: np.ndarray,
        kernels=None,
    ) -> None:
        """Apply a multi-granule ordered access stream in bulk.

        Equivalent to rank-ordered per-access marking.  Under eager
        detection a failing stream falls back to the scalar replay so the
        raised :class:`SpeculationFailed` identifies the same element the
        per-access path would have.
        """
        staged = self.stage_stream_vec(
            kinds, idx, ops, granules, rank, kernels=kernels
        )
        if staged.would_fail:
            self.replay_scalar_vec(kinds, idx, ops, granules, rank)
            raise AssertionError("staged stream failed but scalar replay passed")
        self.commit_batch(staged)

    def mark_write_vec(self, indices, iterations) -> None:
        """Vectorized ``mark_write`` over parallel index/granule vectors."""
        idx = np.asarray(indices, dtype=np.int64)
        self.mark_stream_vec(
            np.full(idx.size, KIND_WRITE, dtype=np.int64),
            idx,
            np.zeros(idx.size, dtype=np.int64),
            np.asarray(iterations, dtype=np.int64),
            np.arange(idx.size, dtype=np.int64),
        )

    def mark_read_vec(self, indices, iterations) -> None:
        """Vectorized ``mark_read`` over parallel index/granule vectors."""
        idx = np.asarray(indices, dtype=np.int64)
        self.mark_stream_vec(
            np.full(idx.size, KIND_READ, dtype=np.int64),
            idx,
            np.zeros(idx.size, dtype=np.int64),
            np.asarray(iterations, dtype=np.int64),
            np.arange(idx.size, dtype=np.int64),
        )

    def mark_red_vec(self, indices, iterations, op: str) -> None:
        """Vectorized ``mark_redux`` over parallel index/granule vectors."""
        idx = np.asarray(indices, dtype=np.int64)
        self.mark_stream_vec(
            np.full(idx.size, KIND_REDUX, dtype=np.int64),
            idx,
            np.full(idx.size, OP_CODES[op], dtype=np.int64),
            np.asarray(iterations, dtype=np.int64),
            np.arange(idx.size, dtype=np.int64),
        )

    def _eager_check(self, index: int) -> None:
        """Abort when this element's failure is already certain.

        Covers the directional iteration-wise predicates — a definite
        flow (exposed read after another granule's write) or a
        reduction/ordinary mix.  Processor-wise-only conditions are left
        to the final analysis.
        """
        from repro.errors import SpeculationFailed

        if not self.nx[index]:
            return
        if self._max_exposed_read[index] > self._min_write[index]:
            raise SpeculationFailed(self.name, index)
        if self.redux_touched[index]:
            raise SpeculationFailed(self.name, index)

    # -- analysis-phase quantities ----------------------------------------

    @property
    def tm(self) -> int:
        """Number of distinct elements written (``sum(A_w)``)."""
        return int(np.count_nonzero(self.w))

    def conflict_mask(self) -> np.ndarray:
        """Elements with a cross-granule flow of values that privatization
        cannot cover and that are not valid reductions (bit version)."""
        return self.w & self.np_ & self.nx

    def flow_mask(self) -> np.ndarray:
        """Directional version of :meth:`conflict_mask`'s flow predicate.

        An element carries a true cross-granule flow of values only when
        some granule's exposed read comes *serially after* some other
        granule's write.  Same-granule read-modify-write (the OCEAN
        butterfly) and pure anti dependences are legal under copy-in
        privatization and are not flagged.  Granule numbering must follow
        serial order (iteration index, or processor id under block
        scheduling).
        """
        return self._max_exposed_read > self._min_write

    def reduction_mask(self) -> np.ndarray:
        """Elements validated as reductions."""
        return self.redux_touched & ~self.nx

    def reduction_op_of(self, index: int) -> str | None:
        code = int(self._redux_op[index])
        return OP_NAMES.get(code)

    def privatized_mask(self) -> np.ndarray:
        """Written elements whose reads were all covered by same-granule
        writes (privatization did real work)."""
        return self.w & self.r & ~self.np_

    def last_write_granules(self) -> np.ndarray:
        """Per-element granule of the last write (-1 if never written)."""
        return self._last_write

    def min_write_granules(self) -> np.ndarray:
        """Per-element granule of the earliest write
        (:data:`_NEVER_WRITTEN` if never written)."""
        return self._min_write

    def max_exposed_read_granules(self) -> np.ndarray:
        """Per-element granule of the latest exposed read (-1 if none)."""
        return self._max_exposed_read

    def min_exposed_read_granules(self) -> np.ndarray:
        """Per-element granule of the earliest exposed read
        (:data:`_NEVER_WRITTEN` if none)."""
        return self._min_exposed_read

    @classmethod
    def from_buffers(
        cls,
        name: str,
        size: int,
        buffers: Mapping[str, np.ndarray],
        *,
        eager: bool = False,
    ) -> "ShadowArray":
        """Build a shadow whose per-element state lives in caller-owned
        buffers (e.g. ``multiprocessing.shared_memory`` views).

        ``buffers`` must provide one array per :data:`SHADOW_FIELDS` entry,
        each of length ``size`` and the declared dtype.  The buffers are
        adopted as-is (no copy) and immediately :meth:`reset`, so a worker
        process marking into them exposes its shadow state to the parent
        without any serialization.
        """
        shadow = cls.__new__(cls)
        shadow.name = name
        shadow.size = size
        for field, dtype in SHADOW_FIELDS:
            buf = buffers[field]
            if buf.shape != (size,) or buf.dtype != np.dtype(dtype):
                raise ValueError(
                    f"shadow buffer {field!r} of {name!r}: expected "
                    f"({size},) {np.dtype(dtype)}, got {buf.shape} {buf.dtype}"
                )
            setattr(shadow, field, buf)
        shadow.tw = 0
        shadow.reset(eager=eager)
        return shadow

    def merge_from(self, parts: "Iterable[ShadowArray]") -> None:
        """The paper's cross-processor shadow merge, folded into ``self``.

        Each worker of the multiprocess backend marks into its own shadow
        set; afterwards the per-processor shadows are combined exactly as
        §III's parallel analysis phase prescribes — OR/union of the mark
        bits, sum of ``tw`` (granules partition across workers, so the
        per-(element, granule) write counts are disjoint), min/max of the
        directional granule stamps.  ``self`` must be freshly reset; the
        merged state is bit-identical to single-shadow marking for every
        analysis-phase quantity (masks, ``tw``/``tm``, flow stamps).

        Two fields are execution-order artifacts consumed only *during*
        marking and are merged canonically rather than replaying the
        emulated interleaving: ``_last_write`` becomes the serial-order
        last writer (elementwise max), and ``_redux_op`` keeps the first
        operator in worker order — any cross-worker operator disagreement
        invalidates the element (``nx``), exactly as a second operator
        would under single-shadow marking.
        """
        write_counts = np.zeros(self.size, dtype=np.int64)
        for part in parts:
            np.logical_or(self.w, part.w, out=self.w)
            np.logical_or(self.r, part.r, out=self.r)
            np.logical_or(self.np_, part.np_, out=self.np_)
            np.logical_or(self.nx, part.nx, out=self.nx)
            np.logical_or(self.redux_touched, part.redux_touched,
                          out=self.redux_touched)
            np.logical_or(self.multi_w, part.multi_w, out=self.multi_w)
            np.minimum(self._min_write, part._min_write, out=self._min_write)
            np.maximum(self._max_exposed_read, part._max_exposed_read,
                       out=self._max_exposed_read)
            np.minimum(self._min_exposed_read, part._min_exposed_read,
                       out=self._min_exposed_read)
            np.maximum(self._last_write, part._last_write, out=self._last_write)
            write_counts += part._last_write != -1
            self.tw += part.tw
            part_op = part._redux_op
            touched = part_op != 0
            conflict = touched & (self._redux_op != 0) & (self._redux_op != part_op)
            np.logical_or(self.nx, conflict, out=self.nx)
            np.copyto(self._redux_op, part_op,
                      where=(self._redux_op == 0) & touched)
        # An element written (markwrite) by granules on >= 2 workers is
        # multiply written even when no single worker saw both writes.
        np.logical_or(self.multi_w, write_counts >= 2, out=self.multi_w)


class ShadowMarker:
    """The run-time marking library: an AccessObserver over shadow arrays.

    The executor advances :attr:`granule` before each iteration (to the
    iteration number or the executing processor id, depending on the
    test granularity) and the interpreter reports accesses through the
    observer interface.  Every mark is charged to the cost counter.
    """

    def __init__(
        self,
        sizes: dict[str, int],
        cost: CostCounter | None = None,
        granularity: Granularity = Granularity.ITERATION,
        *,
        eager: bool = False,
    ):
        self.shadows: dict[str, ShadowArray] = {
            name: ShadowArray(name, size, eager=eager) for name, size in sizes.items()
        }
        self.cost = cost if cost is not None else CostCounter()
        self.granularity = granularity
        self.granule = 0

    @classmethod
    def from_shadows(
        cls,
        shadows: dict[str, ShadowArray],
        granularity: Granularity = Granularity.ITERATION,
    ) -> "ShadowMarker":
        """A marker over pre-built shadows (e.g. buffer-backed worker
        shadows of the multiprocess backend) — no allocation."""
        marker = cls.__new__(cls)
        marker.shadows = shadows
        marker.cost = CostCounter()
        marker.granularity = granularity
        marker.granule = 0
        return marker

    def set_granule(self, granule: int) -> None:
        self.granule = granule

    def reset(
        self,
        granularity: Granularity | None = None,
        *,
        eager: bool | None = None,
    ) -> None:
        """Recycle this marker for a fresh attempt (no reallocation)."""
        if granularity is not None:
            self.granularity = granularity
        self.granule = 0
        self.cost = CostCounter()
        for shadow in self.shadows.values():
            shadow.reset(eager=eager)

    def flush_batch(self, buffers: dict[str, list[tuple[int, int, int, int]]]) -> int:
        """Apply one granule's buffered accesses; returns the mark count.

        ``buffers`` maps each tested array to its ordered access list of
        ``(position, kind, index0, opcode)`` tuples — positions are a
        single strictly increasing sequence *across* arrays, indices are
        0-based.  Every buffered access is charged to :attr:`cost` exactly
        as the per-access observer calls would have been.  Under eager
        detection all arrays are staged before any commits, so a failing
        granule is detected no matter which array it lands in, and the
        failure is re-raised by a scalar replay of the global stream —
        identifying the same (array, element) as per-access marking.
        """
        pending = [(name, buf) for name, buf in buffers.items() if buf]
        if not pending:
            return 0
        total = sum(len(buf) for _name, buf in pending)
        self.cost.marks += total
        granule = self.granule
        if any(self.shadows[name].eager for name, _buf in pending):
            if total < _BATCH_THRESHOLD:
                # Small granule: per-access marking is cheaper than
                # staging, and raises SpeculationFailed by itself at the
                # exact failing access (the per-access eager check).
                self._replay_stream(pending, granule)
                return total
            staged = []
            for name, buf in pending:
                columns = np.asarray(buf, dtype=np.int64)
                shadow = self.shadows[name]
                staged.append((shadow, shadow.stage_stream_batch(
                    columns[:, 1], columns[:, 2], columns[:, 3], columns[:, 0],
                    granule,
                )))
            if any(batch.would_fail for _shadow, batch in staged):
                self._replay_stream(pending, granule)
                raise AssertionError(
                    "staged flush failed but scalar replay passed"
                )
            for shadow, batch in staged:
                shadow.commit_batch(batch)
            return total
        for name, buf in pending:
            shadow = self.shadows[name]
            if len(buf) < _BATCH_THRESHOLD:
                for _pos, kind, index, opcode in buf:
                    if kind == KIND_WRITE:
                        shadow.mark_write(index, granule)
                    elif kind == KIND_READ:
                        shadow.mark_read(index, granule)
                    else:
                        shadow.mark_redux(index, granule, OP_NAMES[opcode])
            else:
                columns = np.asarray(buf, dtype=np.int64)
                shadow.mark_stream_batch(
                    columns[:, 1], columns[:, 2], columns[:, 3], columns[:, 0],
                    granule,
                )
        return total

    def _replay_stream(
        self,
        pending: list[tuple[str, list[tuple[int, int, int, int]]]],
        granule: int,
    ) -> None:
        """Replay buffered accesses one by one in global stream order."""
        stream = sorted(
            (pos, name, kind, index, opcode)
            for name, buf in pending
            for pos, kind, index, opcode in buf
        )
        for _pos, name, kind, index, opcode in stream:
            shadow = self.shadows[name]
            if kind == KIND_WRITE:
                shadow.mark_write(index, granule)
            elif kind == KIND_READ:
                shadow.mark_read(index, granule)
            else:
                shadow.mark_redux(index, granule, OP_NAMES[opcode])

    # 1-based indices arrive from the interpreter; shadows are 0-based.

    def on_read(self, array: str, index: int) -> None:
        self.cost.marks += 1
        self.shadows[array].mark_read(index - 1, self.granule)

    def on_write(self, array: str, index: int) -> None:
        self.cost.marks += 1
        self.shadows[array].mark_write(index - 1, self.granule)

    def on_redux(self, array: str, index: int, op: str) -> None:
        self.cost.marks += 1
        self.shadows[array].mark_redux(index - 1, self.granule, op)
