"""A mini-Fortran DSL: the source language of the reproduced system.

The paper instruments Fortran `do` loops; this package provides the
equivalent substrate — a small, 1-based-array, Fortran-flavoured language
with a lexer, a recursive-descent parser, an AST, a pretty printer and a
programmatic builder.  Programs written in it are executed by
:mod:`repro.interp` and analyzed/transformed by :mod:`repro.analysis`.
"""

from repro.dsl.ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    If,
    Num,
    Program,
    ScalarDecl,
    UnaryOp,
    Var,
    While,
    walk_expressions,
    walk_statements,
)
from repro.dsl.lexer import tokenize
from repro.dsl.parser import parse
from repro.dsl.printer import to_source

__all__ = [
    "ArrayDecl",
    "ArrayRef",
    "Assign",
    "BinOp",
    "Call",
    "Do",
    "If",
    "Num",
    "Program",
    "ScalarDecl",
    "UnaryOp",
    "Var",
    "While",
    "parse",
    "to_source",
    "tokenize",
    "walk_expressions",
    "walk_statements",
]
