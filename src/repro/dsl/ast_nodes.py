"""AST node definitions for the mini-Fortran DSL.

Nodes are small mutable dataclasses.  Equality is structural but ignores
source line numbers and the ``ref_id`` annotations that analysis passes
attach, so a parse → print → parse round trip compares equal.

Two generic traversals are provided: :func:`walk_statements` and
:func:`walk_expressions`.  Analysis passes are built on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Expr:
    """Base class for expression nodes.

    Arithmetic operators are overloaded to build new nodes, so generated
    code can be written as ``a * x + y``.  ``==`` is *structural equality*
    (not a comparison node); use :meth:`eq_`, :meth:`lt_` etc. to build
    comparison expressions.
    """

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and expr_equal(self, other)

    def __hash__(self) -> int:  # structural hash, line-insensitive
        return hash(expr_key(self))

    # -- node-building operator overloads --------------------------------

    def __add__(self, other: object) -> "BinOp":
        return BinOp(op="+", left=self, right=coerce_expr(other))

    def __radd__(self, other: object) -> "BinOp":
        return BinOp(op="+", left=coerce_expr(other), right=self)

    def __sub__(self, other: object) -> "BinOp":
        return BinOp(op="-", left=self, right=coerce_expr(other))

    def __rsub__(self, other: object) -> "BinOp":
        return BinOp(op="-", left=coerce_expr(other), right=self)

    def __mul__(self, other: object) -> "BinOp":
        return BinOp(op="*", left=self, right=coerce_expr(other))

    def __rmul__(self, other: object) -> "BinOp":
        return BinOp(op="*", left=coerce_expr(other), right=self)

    def __truediv__(self, other: object) -> "BinOp":
        return BinOp(op="/", left=self, right=coerce_expr(other))

    def __rtruediv__(self, other: object) -> "BinOp":
        return BinOp(op="/", left=coerce_expr(other), right=self)

    def __pow__(self, other: object) -> "BinOp":
        return BinOp(op="**", left=self, right=coerce_expr(other))

    def __neg__(self) -> "UnaryOp":
        return UnaryOp(op="-", operand=self)

    # -- comparison node builders (== etc. are taken by equality) --------

    def eq_(self, other: object) -> "BinOp":
        return BinOp(op="==", left=self, right=coerce_expr(other))

    def ne_(self, other: object) -> "BinOp":
        return BinOp(op="/=", left=self, right=coerce_expr(other))

    def lt_(self, other: object) -> "BinOp":
        return BinOp(op="<", left=self, right=coerce_expr(other))

    def le_(self, other: object) -> "BinOp":
        return BinOp(op="<=", left=self, right=coerce_expr(other))

    def gt_(self, other: object) -> "BinOp":
        return BinOp(op=">", left=self, right=coerce_expr(other))

    def ge_(self, other: object) -> "BinOp":
        return BinOp(op=">=", left=self, right=coerce_expr(other))


def coerce_expr(value: object) -> "Expr":
    """Coerce a Python number / name / node into an expression node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("the DSL has no boolean literals; use comparisons")
    if isinstance(value, int):
        if value < 0:
            return UnaryOp(op="-", operand=Num(value=float(-value), is_int=True))
        return Num(value=float(value), is_int=True)
    if isinstance(value, float):
        if value < 0:
            return UnaryOp(op="-", operand=Num(value=-value, is_int=False))
        return Num(value=value, is_int=False)
    if isinstance(value, str):
        return Var(name=value)
    raise TypeError(f"cannot convert {value!r} to an expression")


@dataclass(eq=False)
class Num(Expr):
    """A numeric literal.  ``is_int`` distinguishes ``3`` from ``3.0``."""

    value: float
    is_int: bool = False
    line: int = 0


@dataclass(eq=False)
class Var(Expr):
    """A scalar variable reference."""

    name: str
    line: int = 0


@dataclass(eq=False)
class ArrayRef(Expr):
    """A 1-based array element reference ``name(index)``.

    ``ref_id`` is assigned by :func:`repro.analysis.instrument.number_refs`
    and identifies this syntactic reference site across passes.
    """

    name: str
    index: Expr = None  # type: ignore[assignment]
    line: int = 0
    ref_id: int = -1


@dataclass(eq=False)
class BinOp(Expr):
    """A binary operation.

    ``op`` is one of ``+ - * / ** == /= < <= > >= and or``.
    """

    op: str
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass(eq=False)
class UnaryOp(Expr):
    """A unary operation; ``op`` is ``-`` or ``not``."""

    op: str
    operand: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass(eq=False)
class Call(Expr):
    """An intrinsic function call such as ``mod(a, b)`` or ``sqrt(x)``."""

    func: str
    args: list[Expr] = field(default_factory=list)
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Stmt:
    """Base class for statement nodes."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Stmt) and stmt_equal(self, other)

    __hash__ = None  # type: ignore[assignment]


@dataclass(eq=False)
class Assign(Stmt):
    """``target = expr`` where target is a Var or an ArrayRef."""

    target: Union[Var, ArrayRef]
    expr: Expr = None  # type: ignore[assignment]
    line: int = 0
    #: set by reduction recognition: the validated reduction operator
    #: ('+', '*', 'min', 'max') when this statement is a reduction update.
    reduction_op: str | None = None


@dataclass(eq=False)
class If(Stmt):
    """``if (cond) then ... [else ...] end if``."""

    cond: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass(eq=False)
class Do(Stmt):
    """``do var = start, stop [, step] ... end do``."""

    var: str
    start: Expr = None  # type: ignore[assignment]
    stop: Expr = None  # type: ignore[assignment]
    step: Expr | None = None
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass(eq=False)
class While(Stmt):
    """``do while (cond) ... end do``."""

    cond: Expr
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


# ---------------------------------------------------------------------------
# Declarations and programs
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class ScalarDecl:
    """A scalar declaration; ``kind`` is 'real' or 'integer'."""

    name: str
    kind: str
    line: int = 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ScalarDecl)
            and other.name == self.name
            and other.kind == self.kind
        )

    __hash__ = None  # type: ignore[assignment]


@dataclass(eq=False)
class ArrayDecl:
    """An array declaration ``kind name(d1[, d2, ...])``.

    Multi-dimensional declarations are linearized at parse time, Fortran
    style (column major): storage is a flat vector of ``size`` elements
    and every ``name(i1, i2, ...)`` reference becomes the flat subscript
    ``i1 + (i2-1)*d1 + (i3-1)*d1*d2 + ...``.  ``dims`` records the
    declared extents (``(size,)`` for plain 1-D arrays) so environments
    can accept and return suitably shaped numpy inputs.
    """

    name: str
    kind: str
    size: int = 0
    line: int = 0
    dims: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.dims:
            self.dims = (self.size,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayDecl)
            and other.name == self.name
            and other.kind == self.kind
            and other.size == self.size
            and other.dims == self.dims
        )

    __hash__ = None  # type: ignore[assignment]


Decl = Union[ScalarDecl, ArrayDecl]


@dataclass(eq=False)
class Program:
    """A complete program: declarations followed by statements."""

    name: str
    decls: list[Decl] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Program)
            and other.name == self.name
            and other.decls == self.decls
            and len(other.body) == len(self.body)
            and all(stmt_equal(a, b) for a, b in zip(self.body, other.body))
        )

    __hash__ = None  # type: ignore[assignment]

    def array_decls(self) -> dict[str, ArrayDecl]:
        """Map of array name to its declaration."""
        return {d.name: d for d in self.decls if isinstance(d, ArrayDecl)}

    def scalar_decls(self) -> dict[str, ScalarDecl]:
        """Map of scalar name to its declaration."""
        return {d.name: d for d in self.decls if isinstance(d, ScalarDecl)}


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_statements(body: list[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in ``body``, pre-order, descending into blocks."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, (Do, While)):
            yield from walk_statements(stmt.body)


def statement_expressions(stmt: Stmt) -> Iterator[Expr]:
    """Yield the expressions directly owned by ``stmt`` (not nested blocks).

    For an assignment this includes the target itself (an ArrayRef target is
    an expression position for subscript analysis).
    """
    if isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.expr
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, Do):
        yield stmt.start
        yield stmt.stop
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, While):
        yield stmt.cond


def walk_expressions(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expressions(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expressions(arg)
    elif isinstance(expr, ArrayRef):
        yield from walk_expressions(expr.index)


def expr_key(expr: Expr) -> tuple:
    """A hashable structural key for ``expr`` (ignores lines and ref_ids)."""
    if isinstance(expr, Num):
        return ("num", expr.value, expr.is_int)
    if isinstance(expr, Var):
        return ("var", expr.name)
    if isinstance(expr, ArrayRef):
        return ("aref", expr.name, expr_key(expr.index))
    if isinstance(expr, BinOp):
        return ("bin", expr.op, expr_key(expr.left), expr_key(expr.right))
    if isinstance(expr, UnaryOp):
        return ("una", expr.op, expr_key(expr.operand))
    if isinstance(expr, Call):
        return ("call", expr.func, tuple(expr_key(a) for a in expr.args))
    raise TypeError(f"not an expression: {expr!r}")


def expr_equal(a: Expr, b: Expr) -> bool:
    """Structural equality of two expressions, line-insensitive."""
    return expr_key(a) == expr_key(b)


def stmt_equal(a: Stmt, b: Stmt) -> bool:
    """Structural equality of two statements, line-insensitive."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Assign):
        assert isinstance(b, Assign)
        return expr_equal(a.target, b.target) and expr_equal(a.expr, b.expr)
    if isinstance(a, If):
        assert isinstance(b, If)
        return (
            expr_equal(a.cond, b.cond)
            and _bodies_equal(a.then_body, b.then_body)
            and _bodies_equal(a.else_body, b.else_body)
        )
    if isinstance(a, Do):
        assert isinstance(b, Do)
        steps_equal = (a.step is None) == (b.step is None) and (
            a.step is None or expr_equal(a.step, b.step)
        )
        return (
            a.var == b.var
            and expr_equal(a.start, b.start)
            and expr_equal(a.stop, b.stop)
            and steps_equal
            and _bodies_equal(a.body, b.body)
        )
    if isinstance(a, While):
        assert isinstance(b, While)
        return expr_equal(a.cond, b.cond) and _bodies_equal(a.body, b.body)
    raise TypeError(f"not a statement: {a!r}")


def _bodies_equal(a: list[Stmt], b: list[Stmt]) -> bool:
    return len(a) == len(b) and all(stmt_equal(x, y) for x, y in zip(a, b))
