"""Programmatic construction of mini-Fortran ASTs.

Workloads are mostly written as source text (exercising the parser), but
generated/randomized programs — used by the property tests and the
synthetic workload generators — are assembled with these helpers.

Example::

    b = ProgramBuilder("saxpy")
    b.real_array("x", 100).real_array("y", 100).integer("i").real("a")
    with b.do("i", 1, b.var("n")):
        b.assign(b.aref("y", b.var("i")),
                 b.var("a") * b.aref("x", b.var("i")) + b.aref("y", b.var("i")))
    program = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

from repro.dsl.ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    Do,
    Expr,
    If,
    Program,
    ScalarDecl,
    Stmt,
    UnaryOp,
    Var,
    While,
)

ExprLike = Union[Expr, int, float, str]


from repro.dsl.ast_nodes import coerce_expr as as_expr


def binop(op: str, left: ExprLike, right: ExprLike) -> BinOp:
    """Build a binary operation node."""
    return BinOp(op=op, left=as_expr(left), right=as_expr(right))


def neg(operand: ExprLike) -> UnaryOp:
    """Build a unary minus node."""
    return UnaryOp(op="-", operand=as_expr(operand))


def call(func: str, *args: ExprLike) -> Call:
    """Build an intrinsic call node."""
    return Call(func=func, args=[as_expr(a) for a in args])


class ProgramBuilder:
    """Fluent builder for :class:`Program` values.

    Declaration methods return ``self`` for chaining.  Statement context
    managers (:meth:`do`, :meth:`while_`, :meth:`if_`, :meth:`else_`) nest
    the statements appended inside their ``with`` block.
    """

    def __init__(self, name: str):
        self._name = name
        self._decls: list[Decl] = []
        self._declared: set[str] = set()
        self._arrays: set[str] = set()
        self._array_dims: dict[str, tuple[int, ...]] = {}
        self._stack: list[list[Stmt]] = [[]]

    # -- declarations ----------------------------------------------------------

    def real(self, *names: str) -> "ProgramBuilder":
        """Declare real scalars."""
        for name in names:
            self._declare(ScalarDecl(name=name, kind="real"))
        return self

    def integer(self, *names: str) -> "ProgramBuilder":
        """Declare integer scalars."""
        for name in names:
            self._declare(ScalarDecl(name=name, kind="integer"))
        return self

    def real_array(self, name: str, *dims: int) -> "ProgramBuilder":
        """Declare a real array; multiple extents declare a multi-dim
        array stored column-major (e.g. ``real_array("a", 4, 3)``)."""
        self._declare_array(name, "real", dims)
        return self

    def integer_array(self, name: str, *dims: int) -> "ProgramBuilder":
        """Declare an integer array (1-based; see :meth:`real_array`)."""
        self._declare_array(name, "integer", dims)
        return self

    def _declare_array(self, name: str, kind: str, dims: tuple[int, ...]) -> None:
        if not dims:
            raise ValueError(f"array {name!r} needs at least one extent")
        if any(d <= 0 for d in dims):
            raise ValueError(f"array {name!r} has a non-positive extent")
        size = 1
        for d in dims:
            size *= d
        self._declare(ArrayDecl(name=name, kind=kind, size=size, dims=tuple(dims)))
        self._arrays.add(name)
        self._array_dims[name] = tuple(dims)

    def _declare(self, decl: Decl) -> None:
        if decl.name in self._declared:
            raise ValueError(f"duplicate declaration of {decl.name!r}")
        self._declared.add(decl.name)
        self._decls.append(decl)

    # -- expression helpers ------------------------------------------------------

    def var(self, name: str) -> Var:
        """A scalar variable reference."""
        return Var(name=name)

    def aref(self, name: str, *indices: ExprLike) -> ArrayRef:
        """An array element reference.

        Multiple indices address a multi-dim array and are linearized
        column-major, exactly as the parser does; a single index always
        addresses the flat storage.
        """
        if name not in self._arrays:
            raise ValueError(f"{name!r} is not a declared array")
        if not indices:
            raise ValueError(f"reference to {name!r} needs at least one index")
        exprs = [as_expr(i) for i in indices]
        if len(exprs) == 1:
            return ArrayRef(name=name, index=exprs[0])
        dims = self._array_dims[name]
        if len(exprs) != len(dims):
            raise ValueError(
                f"array {name!r} has {len(dims)} dimension(s), "
                f"subscripted with {len(exprs)}"
            )
        from repro.dsl.parser import lower_subscript

        return ArrayRef(name=name, index=lower_subscript(exprs, dims))

    # -- statements ---------------------------------------------------------------

    def assign(self, target: Union[Var, ArrayRef, str], expr: ExprLike) -> "ProgramBuilder":
        """Append ``target = expr``."""
        if isinstance(target, str):
            target = Var(name=target)
        self._stack[-1].append(Assign(target=target, expr=as_expr(expr)))
        return self

    @contextmanager
    def do(
        self,
        var: str,
        start: ExprLike,
        stop: ExprLike,
        step: ExprLike | None = None,
    ) -> Iterator[None]:
        """Open a ``do var = start, stop [, step]`` block."""
        node = Do(
            var=var,
            start=as_expr(start),
            stop=as_expr(stop),
            step=None if step is None else as_expr(step),
        )
        self._stack[-1].append(node)
        self._stack.append(node.body)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def while_(self, cond: ExprLike) -> Iterator[None]:
        """Open a ``do while (cond)`` block."""
        node = While(cond=as_expr(cond))
        self._stack[-1].append(node)
        self._stack.append(node.body)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def if_(self, cond: ExprLike) -> Iterator[None]:
        """Open an ``if (cond) then`` block."""
        node = If(cond=as_expr(cond))
        self._stack[-1].append(node)
        self._stack.append(node.then_body)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def else_(self) -> Iterator[None]:
        """Open the ``else`` branch of the most recent ``if`` statement."""
        body = self._stack[-1]
        if not body or not isinstance(body[-1], If):
            raise ValueError("else_() must directly follow an if_ block")
        node = body[-1]
        if node.else_body:
            raise ValueError("if statement already has an else branch")
        self._stack.append(node.else_body)
        try:
            yield
        finally:
            self._stack.pop()

    # -- finalization ----------------------------------------------------------------

    def build(self) -> Program:
        """Return the constructed program."""
        if len(self._stack) != 1:
            raise ValueError("unclosed block in ProgramBuilder")
        return Program(name=self._name, decls=list(self._decls), body=list(self._stack[0]))
