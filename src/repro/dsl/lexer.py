"""Lexer for the mini-Fortran DSL.

The language is line oriented: a newline ends a statement, ``!`` starts a
comment that runs to the end of the line, and blank lines are ignored (no
NEWLINE token is emitted for them).
"""

from __future__ import annotations

from repro.dsl.tokens import (
    EOF,
    INT,
    MULTI_CHAR_OPS,
    NAME,
    NEWLINE,
    OP,
    REAL,
    SINGLE_CHAR_OPS,
    Token,
)
from repro.errors import DslSyntaxError

_DIGITS = "0123456789"
_NAME_START = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
_NAME_CONT = _NAME_START + _DIGITS


def tokenize(source: str) -> list[Token]:
    """Convert ``source`` into a token list ending with an EOF token.

    Raises :class:`DslSyntaxError` on any character that cannot start a
    token.  Dotted logical operators (``.and.``) are normalized to their
    word form (``and``) so the parser sees one spelling.
    """
    tokens: list[Token] = []
    line = 1
    pos = 0
    n = len(source)

    def last_is_newline() -> bool:
        return bool(tokens) and tokens[-1].kind == NEWLINE

    while pos < n:
        ch = source[pos]

        if ch == "\n":
            if tokens and not last_is_newline():
                tokens.append(Token(NEWLINE, "\n", line))
            line += 1
            pos += 1
            continue

        if ch in " \t\r":
            pos += 1
            continue

        if ch == "!":  # comment to end of line
            while pos < n and source[pos] != "\n":
                pos += 1
            continue

        if ch == ";":  # statement separator, equivalent to a newline
            if tokens and not last_is_newline():
                tokens.append(Token(NEWLINE, ";", line))
            pos += 1
            continue

        matched_multi = _match_multi_op(source, pos)
        if matched_multi is not None:
            text = matched_multi
            if text.startswith("."):  # .and. -> and
                tokens.append(Token(NAME, text.strip("."), line))
            else:
                tokens.append(Token(OP, text, line))
            pos += len(text)
            continue

        if ch in _NAME_START:
            start = pos
            while pos < n and source[pos] in _NAME_CONT:
                pos += 1
            tokens.append(Token(NAME, source[start:pos].lower(), line))
            continue

        if ch in _DIGITS or (ch == "." and pos + 1 < n and source[pos + 1] in _DIGITS):
            token, pos = _lex_number(source, pos, line)
            tokens.append(token)
            continue

        if ch in SINGLE_CHAR_OPS:
            tokens.append(Token(OP, ch, line))
            pos += 1
            continue

        raise DslSyntaxError(f"unexpected character {ch!r}", line)

    if tokens and not last_is_newline():
        tokens.append(Token(NEWLINE, "\n", line))
    tokens.append(Token(EOF, "", line))
    return tokens


def _match_multi_op(source: str, pos: int) -> str | None:
    """Return the multi-character operator starting at ``pos``, if any."""
    for op in MULTI_CHAR_OPS:
        if source.startswith(op, pos):
            return op
    return None


def _lex_number(source: str, pos: int, line: int) -> tuple[Token, int]:
    """Lex an integer or real literal starting at ``pos``."""
    n = len(source)
    start = pos
    while pos < n and source[pos] in _DIGITS:
        pos += 1
    is_real = False
    if pos < n and source[pos] == ".":
        # Guard against '1.and.2': a dot followed by a letter is an operator.
        if pos + 1 < n and source[pos + 1] in _NAME_START:
            text = source[start:pos]
            return Token(INT, text, line), pos
        is_real = True
        pos += 1
        while pos < n and source[pos] in _DIGITS:
            pos += 1
    if pos < n and source[pos] in "eE":
        look = pos + 1
        if look < n and source[look] in "+-":
            look += 1
        if look < n and source[look] in _DIGITS:
            is_real = True
            pos = look
            while pos < n and source[pos] in _DIGITS:
                pos += 1
    text = source[start:pos]
    return Token(REAL if is_real else INT, text, line), pos
