"""Recursive-descent parser for the mini-Fortran DSL.

Grammar (statements are newline-terminated; ``!`` comments):

    program   := 'program' NAME NEWLINE decl* stmt* 'end'
    decl      := ('real' | 'integer') item (',' item)* NEWLINE
    item      := NAME [ '(' INT ')' ]
    stmt      := assign | ifstmt | dostmt
    assign    := lvalue '=' expr NEWLINE
    lvalue    := NAME [ '(' expr ')' ]
    ifstmt    := 'if' '(' expr ')' 'then' NEWLINE stmt*
                 { ('elseif'|'else' 'if') '(' expr ')' 'then' NEWLINE stmt* }
                 [ 'else' NEWLINE stmt* ] ('endif' | 'end' 'if')
    dostmt    := 'do' NAME '=' expr ',' expr [',' expr] NEWLINE stmt*
                 ('enddo' | 'end' 'do')
               | 'do' 'while' '(' expr ')' NEWLINE stmt* ('enddo'|'end' 'do')

Expression precedence, loosest first: ``or``, ``and``, ``not``, comparisons,
additive, multiplicative, unary minus, ``**`` (right associative), atoms.

``name(expr)`` is an array reference if ``name`` was declared as an array,
an intrinsic call if ``name`` is a known intrinsic, and an error otherwise.
"""

from __future__ import annotations

from repro.dsl.ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    Do,
    Expr,
    If,
    Num,
    Program,
    ScalarDecl,
    Stmt,
    UnaryOp,
    Var,
    While,
)
from repro.dsl.lexer import tokenize
from repro.dsl.tokens import EOF, INT, NAME, NEWLINE, OP, REAL, Token
from repro.errors import DslSyntaxError

#: Intrinsic functions, with their arity.
INTRINSICS: dict[str, int] = {
    "abs": 1,
    "sqrt": 1,
    "exp": 1,
    "log": 1,
    "sin": 1,
    "cos": 1,
    "floor": 1,
    "int": 1,
    "real": 1,
    "sign": 2,
    "mod": 2,
    "min": 2,
    "max": 2,
}

_COMPARISON_OPS = ("==", "/=", "<=", ">=", "<", ">")
_DECL_KEYWORDS = ("real", "integer")
_STMT_END_WORDS = frozenset({"end", "enddo", "endif", "endwhile", "else", "elseif"})


def parse(source: str) -> Program:
    """Parse mini-Fortran ``source`` into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()




def lower_subscript(indices: list[Expr], dims: tuple[int, ...], *, line: int = 0) -> Expr:
    """Column-major linearization of a multi-dimensional subscript.

    ``a(i1, i2, i3)`` with extents ``(d1, d2, d3)`` lowers to
    ``i1 + (i2 - 1) * d1 + (i3 - 1) * (d1 * d2)`` — the classic Fortran
    storage mapping.  Used by the parser at parse time and by the
    programmatic builder; everything downstream only ever sees flat 1-D
    subscripts.
    """
    flat = indices[0]
    stride = 1
    for extent, index in zip(dims[:-1], indices[1:]):
        stride *= extent
        shifted = BinOp(
            op="-", left=index, right=Num(value=1.0, is_int=True), line=line
        )
        term = BinOp(
            op="*", left=shifted,
            right=Num(value=float(stride), is_int=True), line=line,
        )
        flat = BinOp(op="+", left=flat, right=term, line=line)
    return flat


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._array_names: set[str] = set()
        self._array_dims: dict[str, tuple[int, ...]] = {}
        self._scalar_names: set[str] = set()

    # -- token stream helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            want = text if text is not None else kind
            raise DslSyntaxError(
                f"expected {want!r}, found {token.text!r}", token.line
            )
        return self._advance()

    def _expect_newline(self) -> None:
        if self._check(EOF):
            return
        self._expect(NEWLINE)
        self._skip_newlines()

    def _skip_newlines(self) -> None:
        while self._accept(NEWLINE):
            pass

    # -- program and declarations --------------------------------------------

    def parse_program(self) -> Program:
        self._skip_newlines()
        self._expect(NAME, "program")
        name = self._expect(NAME).text
        self._expect_newline()

        decls: list[Decl] = []
        while self._peek().kind == NAME and self._peek().text in _DECL_KEYWORDS:
            decls.extend(self._parse_decl_line())
        body = self._parse_block(until=("end",))
        self._expect(NAME, "end")
        self._skip_newlines()
        if not self._check(EOF):
            token = self._peek()
            raise DslSyntaxError(
                f"unexpected {token.text!r} after 'end'", token.line
            )
        return Program(name=name, decls=decls, body=body)

    def _parse_decl_line(self) -> list[Decl]:
        kind_token = self._advance()
        kind = kind_token.text
        decls: list[Decl] = []
        while True:
            name_token = self._expect(NAME)
            name = name_token.text
            if name in self._array_names or name in self._scalar_names:
                raise DslSyntaxError(f"duplicate declaration of {name!r}", name_token.line)
            if self._accept(OP, "("):
                dims = [int(self._expect(INT).text)]
                while self._accept(OP, ","):
                    dims.append(int(self._expect(INT).text))
                self._expect(OP, ")")
                if any(d <= 0 for d in dims):
                    raise DslSyntaxError(
                        f"array {name!r} has a non-positive extent", name_token.line
                    )
                size = 1
                for d in dims:
                    size *= d
                decls.append(
                    ArrayDecl(
                        name=name, kind=kind, size=size,
                        line=name_token.line, dims=tuple(dims),
                    )
                )
                self._array_names.add(name)
                self._array_dims[name] = tuple(dims)
            else:
                decls.append(ScalarDecl(name=name, kind=kind, line=name_token.line))
                self._scalar_names.add(name)
            if not self._accept(OP, ","):
                break
        self._expect_newline()
        return decls

    # -- statements ------------------------------------------------------------

    def _parse_block(self, until: tuple[str, ...]) -> list[Stmt]:
        """Parse statements until one of the ``until`` terminators is next.

        ``until`` uses canonical terminator words: ``else``, ``elseif``,
        ``endif``, ``enddo``, ``endwhile`` or ``end`` (program end).  The
        two-token spellings ``end do`` / ``end if`` / ``end while`` are
        canonicalized before matching.  The terminator itself is left in the
        token stream for the caller to consume.
        """
        body: list[Stmt] = []
        self._skip_newlines()
        while True:
            token = self._peek()
            if token.kind == EOF:
                raise DslSyntaxError("unexpected end of input inside a block", token.line)
            if token.kind == NAME and token.text in _STMT_END_WORDS:
                terminator = self._upcoming_terminator()
                if terminator in until:
                    return body
                raise DslSyntaxError(
                    f"mismatched block terminator {terminator!r}", token.line
                )
            body.append(self._parse_statement())
            self._skip_newlines()

    def _upcoming_terminator(self) -> str:
        """Canonical name of the block terminator at the current position."""
        token = self._peek()
        if token.text == "end":
            nxt = self._peek(1)
            if nxt.kind == NAME and nxt.text in ("do", "if", "while"):
                return "end" + nxt.text
            return "end"
        return token.text

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.kind != NAME:
            raise DslSyntaxError(f"expected a statement, found {token.text!r}", token.line)
        if token.text == "do":
            return self._parse_do()
        if token.text == "if":
            return self._parse_if()
        return self._parse_assign()

    def _parse_assign(self) -> Assign:
        name_token = self._expect(NAME)
        name = name_token.text
        target: Var | ArrayRef
        if self._check(OP, "("):
            if name not in self._array_names:
                raise DslSyntaxError(
                    f"assignment to undeclared array {name!r}", name_token.line
                )
            self._advance()
            indices = [self._parse_expr()]
            while self._accept(OP, ","):
                indices.append(self._parse_expr())
            self._expect(OP, ")")
            target = ArrayRef(
                name=name,
                index=self._lower_subscript(name, indices, name_token.line),
                line=name_token.line,
            )
        else:
            target = Var(name=name, line=name_token.line)
        self._expect(OP, "=")
        expr = self._parse_expr()
        self._expect_newline()
        return Assign(target=target, expr=expr, line=name_token.line)

    def _parse_if(self) -> If:
        if_token = self._expect(NAME, "if")
        self._expect(OP, "(")
        cond = self._parse_expr()
        self._expect(OP, ")")
        self._expect(NAME, "then")
        self._expect_newline()
        then_body = self._parse_block(until=("else", "elseif", "endif"))
        node = If(cond=cond, then_body=then_body, line=if_token.line)
        self._parse_if_tail(node)
        return node

    def _parse_if_tail(self, node: If) -> None:
        token = self._peek()
        if token.text == "elseif" or (
            token.text == "else" and self._peek(1).text == "if"
        ):
            if token.text == "elseif":
                elif_token = self._advance()
            else:
                self._advance()  # else
                elif_token = self._advance()  # if
            self._expect(OP, "(")
            cond = self._parse_expr()
            self._expect(OP, ")")
            self._expect(NAME, "then")
            self._expect_newline()
            then_body = self._parse_block(until=("else", "elseif", "endif"))
            inner = If(cond=cond, then_body=then_body, line=elif_token.line)
            self._parse_if_tail(inner)
            node.else_body = [inner]
            return
        if token.text == "else":
            self._advance()
            self._expect_newline()
            node.else_body = self._parse_block(until=("endif",))
        self._parse_end_of("endif")

    def _parse_do(self) -> Stmt:
        do_token = self._expect(NAME, "do")
        if self._check(NAME, "while"):
            self._advance()
            self._expect(OP, "(")
            cond = self._parse_expr()
            self._expect(OP, ")")
            self._expect_newline()
            body = self._parse_block(until=("enddo", "endwhile"))
            self._parse_end_of("enddo", "endwhile")
            return While(cond=cond, body=body, line=do_token.line)

        var_token = self._expect(NAME)
        if var_token.text in self._array_names:
            raise DslSyntaxError(
                f"loop variable {var_token.text!r} is declared as an array",
                var_token.line,
            )
        self._expect(OP, "=")
        start = self._parse_expr()
        self._expect(OP, ",")
        stop = self._parse_expr()
        step: Expr | None = None
        if self._accept(OP, ","):
            step = self._parse_expr()
        self._expect_newline()
        body = self._parse_block(until=("enddo",))
        self._parse_end_of("enddo")
        return Do(
            var=var_token.text, start=start, stop=stop, step=step, body=body,
            line=do_token.line,
        )

    def _parse_end_of(self, *accepted: str) -> None:
        """Consume a canonical block terminator from ``accepted``."""
        token = self._peek()
        terminator = self._upcoming_terminator()
        if terminator not in accepted:
            raise DslSyntaxError(
                f"expected {accepted[0]!r}, found {terminator!r}", token.line
            )
        self._advance()
        if terminator != token.text:  # two-token spelling: consume 2nd word
            self._advance()
        self._expect_newline()


    def _lower_subscript(self, name: str, indices: list[Expr], line: int) -> Expr:
        dims = self._array_dims.get(name, ())
        if len(indices) == 1:
            # A single subscript addresses the flat (linearized) storage,
            # whatever the declared rank — which is also what printed
            # (already-lowered) programs use.
            return indices[0]
        if len(indices) != len(dims):
            raise DslSyntaxError(
                f"array {name!r} has {len(dims)} dimension(s), "
                f"subscripted with {len(indices)}",
                line,
            )
        return lower_subscript(indices, dims, line=line)

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._check(NAME, "or"):
            op_token = self._advance()
            right = self._parse_and()
            left = BinOp(op="or", left=left, right=right, line=op_token.line)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._check(NAME, "and"):
            op_token = self._advance()
            right = self._parse_not()
            left = BinOp(op="and", left=left, right=right, line=op_token.line)
        return left

    def _parse_not(self) -> Expr:
        if self._check(NAME, "not"):
            op_token = self._advance()
            operand = self._parse_not()
            return UnaryOp(op="not", operand=operand, line=op_token.line)
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == OP and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            return BinOp(op=token.text, left=left, right=right, line=token.line)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().kind == OP and self._peek().text in ("+", "-"):
            op_token = self._advance()
            right = self._parse_multiplicative()
            left = BinOp(op=op_token.text, left=left, right=right, line=op_token.line)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._peek().kind == OP and self._peek().text in ("*", "/"):
            op_token = self._advance()
            right = self._parse_unary()
            left = BinOp(op=op_token.text, left=left, right=right, line=op_token.line)
        return left

    def _parse_unary(self) -> Expr:
        if self._check(OP, "-"):
            op_token = self._advance()
            operand = self._parse_unary()
            return UnaryOp(op="-", operand=operand, line=op_token.line)
        if self._check(OP, "+"):
            self._advance()
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> Expr:
        base = self._parse_atom()
        if self._check(OP, "**"):
            op_token = self._advance()
            exponent = self._parse_unary()  # right associative, allows -e
            return BinOp(op="**", left=base, right=exponent, line=op_token.line)
        return base

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token.kind == INT:
            self._advance()
            return Num(value=float(int(token.text)), is_int=True, line=token.line)
        if token.kind == REAL:
            self._advance()
            return Num(value=float(token.text), is_int=False, line=token.line)
        if token.kind == OP and token.text == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect(OP, ")")
            return expr
        if token.kind == NAME:
            return self._parse_name_atom()
        raise DslSyntaxError(f"expected an expression, found {token.text!r}", token.line)

    def _parse_name_atom(self) -> Expr:
        name_token = self._advance()
        name = name_token.text
        if not self._check(OP, "("):
            return Var(name=name, line=name_token.line)
        if name in self._array_names:
            self._advance()
            indices = [self._parse_expr()]
            while self._accept(OP, ","):
                indices.append(self._parse_expr())
            self._expect(OP, ")")
            return ArrayRef(
                name=name,
                index=self._lower_subscript(name, indices, name_token.line),
                line=name_token.line,
            )
        if name in INTRINSICS:
            self._advance()
            args = [self._parse_expr()]
            while self._accept(OP, ","):
                args.append(self._parse_expr())
            self._expect(OP, ")")
            if len(args) != INTRINSICS[name]:
                raise DslSyntaxError(
                    f"intrinsic {name!r} takes {INTRINSICS[name]} argument(s), "
                    f"got {len(args)}",
                    name_token.line,
                )
            return Call(func=name, args=args, line=name_token.line)
        raise DslSyntaxError(
            f"{name!r} is neither a declared array nor an intrinsic", name_token.line
        )
