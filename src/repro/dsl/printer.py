"""Pretty printer for the mini-Fortran AST.

:func:`to_source` emits text that re-parses to a structurally equal AST
(checked by a hypothesis round-trip property test).
"""

from __future__ import annotations

from repro.dsl.ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    Do,
    Expr,
    If,
    Num,
    Program,
    ScalarDecl,
    Stmt,
    UnaryOp,
    Var,
    While,
)

#: Binding strength of each operator; parentheses are inserted when a child
#: binds less tightly than its context requires.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "==": 4,
    "/=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "u-": 7,
    "**": 8,
}

_COMPARISON_PREC = 4

_INDENT = "  "


def to_source(program: Program) -> str:
    """Render ``program`` as parseable mini-Fortran source."""
    lines = [f"program {program.name}"]
    for decl in program.decls:
        lines.append(_INDENT + _format_decl(decl))
    _emit_body(program.body, lines, depth=1)
    lines.append("end")
    return "\n".join(lines) + "\n"


def expr_to_source(expr: Expr) -> str:
    """Render a single expression."""
    return _format_expr(expr, 0)


def stmt_to_source(stmt: Stmt) -> str:
    """Render a single statement (used in reports and error messages)."""
    lines: list[str] = []
    _emit_stmt(stmt, lines, depth=0)
    return "\n".join(lines)


def _format_decl(decl: Decl) -> str:
    if isinstance(decl, ArrayDecl):
        dims = ", ".join(str(d) for d in decl.dims)
        return f"{decl.kind} {decl.name}({dims})"
    assert isinstance(decl, ScalarDecl)
    return f"{decl.kind} {decl.name}"


def _emit_body(body: list[Stmt], lines: list[str], depth: int) -> None:
    for stmt in body:
        _emit_stmt(stmt, lines, depth)


def _emit_stmt(stmt: Stmt, lines: list[str], depth: int) -> None:
    pad = _INDENT * depth
    if isinstance(stmt, Assign):
        target = _format_expr(stmt.target, 0)
        lines.append(f"{pad}{target} = {_format_expr(stmt.expr, 0)}")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({_format_expr(stmt.cond, 0)}) then")
        _emit_body(stmt.then_body, lines, depth + 1)
        if stmt.else_body:
            lines.append(f"{pad}else")
            _emit_body(stmt.else_body, lines, depth + 1)
        lines.append(f"{pad}end if")
    elif isinstance(stmt, Do):
        header = (
            f"{pad}do {stmt.var} = {_format_expr(stmt.start, 0)}, "
            f"{_format_expr(stmt.stop, 0)}"
        )
        if stmt.step is not None:
            header += f", {_format_expr(stmt.step, 0)}"
        lines.append(header)
        _emit_body(stmt.body, lines, depth + 1)
        lines.append(f"{pad}end do")
    elif isinstance(stmt, While):
        lines.append(f"{pad}do while ({_format_expr(stmt.cond, 0)})")
        _emit_body(stmt.body, lines, depth + 1)
        lines.append(f"{pad}end do")
    else:
        raise TypeError(f"not a statement: {stmt!r}")


def _format_expr(expr: Expr, parent_prec: int) -> str:
    if isinstance(expr, Num):
        return _format_num(expr)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr.name}({_format_expr(expr.index, 0)})"
    if isinstance(expr, Call):
        args = ", ".join(_format_expr(a, 0) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, UnaryOp):
        prec = _PRECEDENCE["u-"] if expr.op == "-" else _PRECEDENCE["not"]
        op = "-" if expr.op == "-" else "not "
        text = f"{op}{_format_expr(expr.operand, prec)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        if expr.op == "**":  # right associative
            left = _format_expr(expr.left, prec + 1)
            right = _format_expr(expr.right, prec)
        elif prec == _COMPARISON_PREC:  # non-associative: a == b == c is invalid
            left = _format_expr(expr.left, prec + 1)
            right = _format_expr(expr.right, prec + 1)
        else:  # left associative: right child must bind strictly tighter
            left = _format_expr(expr.left, prec)
            right = _format_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"not an expression: {expr!r}")


def _format_num(num: Num) -> str:
    if num.is_int:
        return str(int(num.value))
    text = repr(float(num.value))
    return text
