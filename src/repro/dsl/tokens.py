"""Token definitions for the mini-Fortran lexer."""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
NAME = "NAME"
INT = "INT"
REAL = "REAL"
OP = "OP"
NEWLINE = "NEWLINE"
EOF = "EOF"

#: Words with syntactic meaning.  They are lexed as NAME tokens; the parser
#: gives them meaning by position, which keeps the lexer trivial and lets
#: e.g. ``real`` appear both as a declaration keyword and as an intrinsic.
KEYWORDS = frozenset(
    {
        "program",
        "end",
        "do",
        "enddo",
        "while",
        "endwhile",
        "if",
        "then",
        "else",
        "elseif",
        "endif",
        "integer",
        "real",
        "and",
        "or",
        "not",
    }
)

#: Multi-character operators, longest first so the lexer can scan greedily.
MULTI_CHAR_OPS = ("**", "==", "/=", "<=", ">=", ".and.", ".or.", ".not.")

#: Single-character operators / punctuation.
SINGLE_CHAR_OPS = "+-*/<>=(),"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of the module-level kind constants, ``text`` is the
    lexeme, and ``line`` is the 1-based source line it starts on.
    """

    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line={self.line})"
