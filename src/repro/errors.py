"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type.  Subsystems raise the most specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DslSyntaxError(ReproError):
    """A lexing or parsing error in a mini-Fortran source program.

    Carries the 1-based source ``line`` on which the error occurred.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class InterpError(ReproError):
    """A run-time error during interpretation (bad index, unknown name...)."""


class AnalysisError(ReproError):
    """A compile-time analysis could not be applied to the given program."""


class FrontendError(ReproError):
    """Base class of the loop-ingestion frontend layer's errors."""


class LiftError(FrontendError):
    """A frontend could not lift the given loop into the doall IR.

    Raised by :meth:`repro.frontend.LiftResult.require` when the lift was
    rejected; carries the machine-readable ``reason`` (a kebab-case name
    such as ``iterator-not-range``) alongside the human detail.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        message = reason if not detail else f"{reason}: {detail}"
        super().__init__(message)


class UnknownFrontendError(FrontendError):
    """An unregistered frontend name was requested from the registry."""


class InspectorNotExtractable(AnalysisError):
    """The inspector loop cannot be extracted without side effects.

    Raised when the address computation of a tested array depends on data
    written by the loop itself (the TRACK situation in the paper), so an
    inspector/executor strategy is impossible and only speculation applies.
    """


class SpeculationError(ReproError):
    """The speculative runtime was driven incorrectly (internal misuse)."""


class SpeculationFailed(ReproError):
    """Raised by eager (on-the-fly) failure detection during marking.

    Models the hardware-assisted variant of the test ([47] in the paper:
    Zhang, Rauchwerger & Torrellas, HPCA-4): a mark that makes the test's
    failure certain aborts the speculative doall immediately instead of
    completing it.  Caught by the executor, never user-visible.
    """

    def __init__(self, array: str, element: int):
        self.array = array
        self.element = element
        super().__init__(
            f"definite cross-iteration flow on {array}({element + 1})"
        )


class MachineConfigError(ReproError):
    """An invalid simulated-machine configuration was supplied."""


class BaselineInapplicable(ReproError):
    """A related-work baseline method does not apply to the given loop.

    E.g. Saltz-style inspector/executor methods require the loop to have no
    output dependences.
    """


class WorkloadError(ReproError):
    """A workload generator was given inconsistent parameters."""


class ServiceError(ReproError):
    """Base class of the loop-parallelization service's errors.

    Everything the ``repro serve`` daemon and its clients raise derives
    from this (see :mod:`repro.service`): protocol violations, rejected
    jobs, connection and timeout failures.
    """


class ProtocolError(ServiceError):
    """A malformed, foreign or wrong-version service message."""


class JobRejected(ServiceError):
    """The daemon replied with an error instead of a report.

    Carries the protocol error ``code`` (``queue-full``, ``timeout``,
    ``invalid-job``, ``unknown-workload``, ``shutting-down``,
    ``internal``) so callers can react per failure class.
    """

    def __init__(self, code: str, message: str):
        self.code = code
        #: the bare reason, without the bracketed code prefix ``str()``
        #: adds (what goes onto the wire — the receiving client re-adds
        #: the prefix, so keeping both would double it).
        self.message = message
        super().__init__(f"[{code}] {message}")


class ServiceConnectionError(ServiceError):
    """The daemon's socket could not be reached (or died mid-request)."""


class ServiceTimeout(ServiceError):
    """A client-side wait for the daemon's reply timed out."""
