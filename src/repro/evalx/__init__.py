"""Evaluation harnesses: regenerate the paper's tables and figures.

* :mod:`repro.evalx.table1` — Table I: the seven PERFECT loops, their
  transforms and their speculative / inspector speedups on the two
  machine models;
* :mod:`repro.evalx.table2` — Table II: the qualitative method
  comparison, plus an *empirical* companion measuring each executable
  baseline's schedule depth and simulated time;
* :mod:`repro.evalx.figures` — the speedup-vs-processors series behind
  the paper's per-loop figures, and the ablation figures (failure cost,
  PD vs LPD, iteration- vs processor-wise, marking overhead, schedule
  reuse).

Everything returns plain data plus a text rendering, so the benchmark
harness can both assert on shapes and print the artifacts.
"""

from repro.evalx.figures import (
    failure_cost_series,
    ideal_series,
    loop_figure,
    marking_overhead_series,
    pd_vs_lpd_comparison,
    procwise_qualification,
    schedule_reuse_series,
    speedup_series,
)
from repro.evalx.render import format_table
from repro.evalx.table1 import Table1Row, build_table1, render_table1
from repro.evalx.table2 import build_table2, render_table2

__all__ = [
    "Table1Row",
    "build_table1",
    "build_table2",
    "failure_cost_series",
    "format_table",
    "ideal_series",
    "loop_figure",
    "marking_overhead_series",
    "pd_vs_lpd_comparison",
    "procwise_qualification",
    "render_table1",
    "render_table2",
    "schedule_reuse_series",
    "speedup_series",
]
