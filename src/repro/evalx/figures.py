"""Speedup figures and ablation series.

Each helper returns :class:`repro.machine.stats.SpeedupSeries` (or small
result records) so benchmarks can assert on the *shape* the paper reports
and print the same series the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.outcomes import TestMode
from repro.core.shadow import Granularity
from repro.errors import InspectorNotExtractable
from repro.machine.costmodel import CostModel, fx80
from repro.machine.schedule import ScheduleKind, assign_iterations, makespan
from repro.machine.stats import SpeedupPoint, SpeedupSeries
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads.base import Workload

DEFAULT_PROCS = (1, 2, 4, 8, 12, 14, 16)


def _runner(workload: Workload) -> LoopRunner:
    return LoopRunner(workload.program(), workload.inputs)


def _loop_time(report, extra_serial: float) -> float:
    return report.loop_time + extra_serial


def speedup_series(
    workload: Workload,
    strategy: Strategy,
    *,
    procs: tuple[int, ...] = DEFAULT_PROCS,
    model: CostModel | None = None,
    include_setup: bool = False,
    runner: LoopRunner | None = None,
    config: RunConfig | None = None,
) -> SpeedupSeries:
    """Speedup of ``strategy`` vs the serial loop, over processor counts.

    ``include_setup`` charges the program's pre-loop (serial) statements
    to both sides — used for SPICE, whose linked-list traversal is the
    Amdahl component of the paper's modest speedups.
    """
    model = model or fx80()
    runner = runner or _runner(workload)
    base_config = config or RunConfig(model=model)
    serial = runner.serial_run(model, base_config.engine)
    extra = serial.setup_time if include_setup else 0.0

    series = SpeedupSeries(label=f"{workload.name}:{strategy.value}")
    for p in procs:
        report = runner.run(strategy, _with_model(base_config, model.with_procs(p)))
        time = _loop_time(report, extra)
        series.add(
            SpeedupPoint(
                procs=p,
                speedup=(serial.loop_time + extra) / time,
                time=time,
                breakdown=report.times,
            )
        )
    return series


def _with_model(config: RunConfig, model: CostModel) -> RunConfig:
    import dataclasses

    return dataclasses.replace(config, model=model)


def ideal_series(
    workload: Workload,
    *,
    procs: tuple[int, ...] = DEFAULT_PROCS,
    model: CostModel | None = None,
    include_setup: bool = False,
    runner: LoopRunner | None = None,
) -> SpeedupSeries:
    """The no-overhead doall bound: unmarked iterations, block-scheduled,
    one barrier — what a perfect compile-time parallelization would get."""
    model = model or fx80()
    runner = runner or _runner(workload)
    serial = runner.serial_run(model)
    extra = serial.setup_time if include_setup else 0.0
    cycles = [model.iteration_cycles(c) for c in serial.loop_iteration_costs]

    series = SpeedupSeries(label=f"{workload.name}:ideal")
    for p in procs:
        m = model.with_procs(p)
        assignment = assign_iterations(len(cycles), p, ScheduleKind.BLOCK)
        time = makespan(assignment, cycles) + m.barrier(p) + extra
        series.add(
            SpeedupPoint(procs=p, speedup=(serial.loop_time + extra) / time, time=time)
        )
    return series


def loop_figure(
    workload: Workload,
    *,
    procs: tuple[int, ...] = DEFAULT_PROCS,
    model: CostModel | None = None,
    include_setup: bool = False,
) -> dict[str, SpeedupSeries]:
    """The paper's per-loop figure: speculative, inspector (when
    extractable) and ideal series for one loop."""
    model = model or fx80()
    runner = _runner(workload)
    out = {
        "speculative": speedup_series(
            workload, Strategy.SPECULATIVE, procs=procs, model=model,
            include_setup=include_setup, runner=runner,
        ),
        "ideal": ideal_series(
            workload, procs=procs, model=model,
            include_setup=include_setup, runner=runner,
        ),
    }
    try:
        out["inspector"] = speedup_series(
            workload, Strategy.INSPECTOR, procs=procs, model=model,
            include_setup=include_setup, runner=runner,
        )
    except InspectorNotExtractable:
        pass
    return out


# ---------------------------------------------------------------------------
# Ablation figures
# ---------------------------------------------------------------------------


@dataclass
class FailurePoint:
    dep_fraction: float
    passed: bool
    slowdown_vs_serial: float  # speculative time / serial time


def failure_cost_series(
    fractions: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.25, 0.5),
    *,
    n: int = 400,
    model: CostModel | None = None,
) -> list[FailurePoint]:
    """Cost of failed speculation vs injected dependence density.

    The paper's bound: a failed test costs the serial re-execution plus
    the (parallelizable) attempt — a small constant factor over serial.
    """
    from repro.workloads.synthetic import build_dependence_injected

    model = model or fx80()
    points = []
    for fraction in fractions:
        workload = build_dependence_injected(n=n, dep_fraction=fraction)
        runner = _runner(workload)
        serial = runner.serial_run(model)
        report = runner.run(Strategy.SPECULATIVE, RunConfig(model=model))
        points.append(
            FailurePoint(
                dep_fraction=fraction,
                passed=bool(report.passed),
                slowdown_vs_serial=report.loop_time / serial.loop_time,
            )
        )
    return points


@dataclass
class PartialParallelPoint:
    """One processor count of the strip-mining figure."""

    procs: int
    unstripped_speedup: float
    stripped_speedup: float
    strips: int
    strips_failed: int


def partial_parallel_series(
    procs: tuple[int, ...] = (2, 4, 8, 14),
    *,
    n: int = 400,
    band_length: int = 24,
    work: int = 60,
    strip_size: int = 50,
    model: CostModel | None = None,
) -> list[PartialParallelPoint]:
    """All-or-nothing vs strip-mined speculation on a partially parallel
    loop (a serial dependence band inside a parallel iteration space).

    The unstripped protocol fails the whole loop on the band and pays
    serial-plus-attempt (speedup ≤ 1); the strip-mined pipeline rolls
    back only the strip(s) covering the band, so the parallel regions
    keep their speedup — the case that motivated the R-LRPD follow-on
    work to the paper's protocol.
    """
    from repro.workloads.synthetic import build_partial_parallel

    model = model or fx80()
    workload = build_partial_parallel(n=n, band_length=band_length, work=work)
    points = []
    for p in procs:
        m = model.with_procs(p)
        unstripped = _runner(workload).run(
            Strategy.SPECULATIVE, RunConfig(model=m)
        )
        stripped = _runner(workload).run(
            Strategy.STRIPPED, RunConfig(model=m, strip_size=strip_size)
        )
        points.append(
            PartialParallelPoint(
                procs=p,
                unstripped_speedup=unstripped.speedup,
                stripped_speedup=stripped.speedup,
                strips=len(stripped.strips),
                strips_failed=sum(1 for s in stripped.strips if not s.passed),
            )
        )
    return points


@dataclass
class RecoveryPoint:
    """One processor count of the DOACROSS recovery figure."""

    procs: int
    rollback_speedup: float    # failed run, serial re-execution
    recovery_speedup: float    # failed run, pipelined re-execution
    #: rollback loop time / recovery loop time — the whole-run gain of
    #: the recovery tier (>1 when the pipeline pays for itself).
    recovery_gain: float
    recovered_fraction: float
    min_distance: int
    sync_waits: float
    strips_recovered: int


def doacross_recovery_series(
    procs: tuple[int, ...] = (2, 4, 8, 14),
    *,
    n: int = 400,
    distance: int = 32,
    work: int = 60,
    strip_size: int | None = None,
    model: CostModel | None = None,
) -> list[RecoveryPoint]:
    """Rollback-to-serial vs DOACROSS recovery on a failed LRPD loop.

    The workload fails the test by construction with a uniform
    cross-iteration distance, so the rollback run pays serial-plus-
    attempt (speedup < 1) while the recovery tier re-executes the same
    iterations priced as a chunked post/wait pipeline at the measured
    distance.  Both paths are bit-identical to serial; only the priced
    re-execution differs.  ``strip_size`` switches both runs to the
    strip-mined pipeline (every failed strip recovers independently).
    """
    from repro.workloads.synthetic import build_synthdoacross

    model = model or fx80()
    workload = build_synthdoacross(n=n, distance=distance, work=work)
    points = []
    for p in procs:
        config = RunConfig(model=model.with_procs(p), strip_size=strip_size)
        rollback = _runner(workload).run(
            Strategy.STRIPPED if strip_size else Strategy.SPECULATIVE, config
        )
        recovery = _runner(workload).run(Strategy.DOACROSS_RECOVERY, config)
        points.append(
            RecoveryPoint(
                procs=p,
                rollback_speedup=rollback.speedup,
                recovery_speedup=recovery.speedup,
                recovery_gain=rollback.loop_time / recovery.loop_time,
                recovered_fraction=recovery.stats.get("recovered_fraction", 0.0),
                min_distance=int(recovery.stats.get("recovery_distance", 0)),
                sync_waits=recovery.stats.get("recovery_sync_waits", 0.0),
                strips_recovered=int(recovery.stats.get("strips_recovered", 0)),
            )
        )
    return points


@dataclass
class RecoveryVetoPoint:
    """The deterministic-veto demo: a distance-1 chain must refuse the
    pipeline and roll back serially."""

    procs: int
    vetoed: bool
    recovered_fraction: float
    reason: str


def recovery_veto_demo(
    *,
    procs: int = 8,
    n: int = 240,
    band_length: int = 24,
    model: CostModel | None = None,
) -> RecoveryVetoPoint:
    """Request DOACROSS recovery on a loop whose dependence band is a
    distance-1 serial chain: the measured distances veto the pipeline
    deterministically and the run degrades to the plain rollback."""
    from repro.workloads.synthetic import build_partial_parallel

    model = model or fx80()
    workload = build_partial_parallel(n=n, band_length=band_length)
    report = _runner(workload).run(
        Strategy.DOACROSS_RECOVERY, RunConfig(model=model.with_procs(procs))
    )
    reasons = [reason for _key, reason in report.engine_decisions]
    veto = next((r for r in reasons if "recovery veto" in r), "")
    return RecoveryVetoPoint(
        procs=procs,
        vetoed=bool(veto),
        recovered_fraction=report.stats.get("recovered_fraction", 1.0),
        reason=veto,
    )


@dataclass
class PdLpdPoint:
    live_fraction: float
    pd_passed: bool
    lpd_passed: bool


def pd_vs_lpd_comparison(
    live_fractions: tuple[float, ...] = (0.0,),
    *,
    model: CostModel | None = None,
) -> list[PdLpdPoint]:
    """The PD-vs-LPD ablation: reference-based marking fails loops whose
    problematic reads are dynamically dead; value-based marking passes
    them (paper §III's improvement over the ICS'94 PD test)."""
    from repro.workloads.synthetic import build_conditional_dead_reads

    model = model or fx80()
    points = []
    for fraction in live_fractions:
        workload = build_conditional_dead_reads(live_fraction=fraction)
        pd = _runner(workload).run(
            Strategy.SPECULATIVE, RunConfig(model=model, test_mode=TestMode.PD)
        )
        lpd = _runner(workload).run(
            Strategy.SPECULATIVE, RunConfig(model=model, test_mode=TestMode.LRPD)
        )
        points.append(
            PdLpdPoint(
                live_fraction=fraction,
                pd_passed=bool(pd.passed),
                lpd_passed=bool(lpd.passed),
            )
        )
    return points


@dataclass
class ProcwisePoint:
    procs: int
    iteration_wise_passed: bool
    processor_wise_passed: bool
    processor_wise_speedup: float


def procwise_qualification(
    procs: tuple[int, ...] = (2, 4, 8, 14),
    *,
    n: int = 240,
    model: CostModel | None = None,
) -> list[ProcwisePoint]:
    """Iteration-wise vs processor-wise (Appendix A.1) qualification.

    A loop whose dependences stay inside each processor's block passes
    the processor-wise test and fails the iteration-wise one; when the
    block boundaries cut a dependence chain (here: odd block sizes) the
    processor-wise test fails too — qualification depends on p.
    """
    from repro.workloads.synthetic import build_blocked_chain

    model = model or fx80()
    points = []
    for p in procs:
        workload = build_blocked_chain(n=n)
        runner = _runner(workload)
        iteration_wise = runner.run(
            Strategy.SPECULATIVE,
            RunConfig(model=model.with_procs(p), granularity=Granularity.ITERATION),
        )
        runner2 = _runner(workload)
        processor_wise = runner2.run(
            Strategy.SPECULATIVE,
            RunConfig(model=model.with_procs(p), granularity=Granularity.PROCESSOR),
        )
        points.append(
            ProcwisePoint(
                procs=p,
                iteration_wise_passed=bool(iteration_wise.passed),
                processor_wise_passed=bool(processor_wise.passed),
                processor_wise_speedup=processor_wise.speedup,
            )
        )
    return points


@dataclass
class MarkingPoint:
    mark_cost: float
    overhead_factor: float  # marked serial work / unmarked serial work
    speedup_at_p: float


def marking_overhead_series(
    mark_costs: tuple[float, ...] = (0.0, 2.0, 4.0, 8.0, 16.0),
    *,
    procs: int = 8,
    model: CostModel | None = None,
) -> list[MarkingPoint]:
    """Speedup sensitivity to the marking cost (hardware-support ablation;
    the paper's closing argument for architectural support [47])."""
    import dataclasses

    from repro.workloads.bdna import build_bdna

    base = model or fx80()
    points = []
    for mark_cost in mark_costs:
        m = dataclasses.replace(base.with_procs(procs), mark=mark_cost)
        workload = build_bdna()
        runner = _runner(workload)
        serial = runner.serial_run(m)
        report = runner.run(Strategy.SPECULATIVE, RunConfig(model=m))
        marked = sum(
            m.iteration_cycles(c) for c in serial.loop_iteration_costs
        ) + report.stats.get("marks", 0.0) * mark_cost
        points.append(
            MarkingPoint(
                mark_cost=mark_cost,
                overhead_factor=marked / serial.loop_time,
                speedup_at_p=report.speedup,
            )
        )
    return points


@dataclass
class ReusePoint:
    invocation: int
    time: float
    reused: bool


def schedule_reuse_series(
    invocations: int = 10,
    *,
    model: CostModel | None = None,
) -> tuple[list[ReusePoint], list[ReusePoint]]:
    """OCEAN-style repeated invocation, with and without schedule reuse.

    Returns (without_cache, with_cache) per-invocation times: the cached
    run pays marking/analysis once and then runs unmarked doalls.
    """
    from repro.workloads.ocean import build_ocean

    model = model or fx80()
    workload = build_ocean()

    def run_repeated(use_cache: bool) -> list[ReusePoint]:
        runner = _runner(workload)
        config = RunConfig(model=model, use_schedule_cache=use_cache)
        points = []
        for invocation in range(invocations):
            report = runner.run(Strategy.SPECULATIVE, config)
            points.append(
                ReusePoint(
                    invocation=invocation,
                    time=report.loop_time,
                    reused=report.reused_schedule,
                )
            )
        return points

    return run_repeated(False), run_repeated(True)


@dataclass
class LiftCorpusPoint:
    """One real-Python corpus loop through lift + classify + LRPD."""

    name: str
    constructs: tuple[str, ...]
    lifted: bool
    reason: str | None          # named reject reason when not lifted
    classifier_ok: bool | None  # vectorized-engine verdict (None: no lift)
    passed: bool | None         # LRPD verdict (None: no lift / no test)
    transforms: tuple[str, ...]  # privatization/reduction actually applied
    parity: bool | None         # bit-identical to native Python at p=1


def lift_corpus_series(
    names: tuple[str, ...] | None = None,
) -> list[LiftCorpusPoint]:
    """Run the python-frontend corpus end to end; one record per loop.

    The parity bit executes the lifted program speculatively on a
    single-processor model (serial FP association) and compares every
    checked array bit-for-bit — and every returned scalar exactly —
    against running the original Python function on identical inputs.
    This is the series behind the ``lift_corpus`` figure: lift rate,
    LRPD pass rate and transform mix over real Python loops.
    """
    import numpy as np

    from repro.analysis.instrument import build_plan
    from repro.analysis.vectorize import classify_loop
    from repro.workloads.pycorpus import CORPUS, lift_corpus_loop, run_native

    points: list[LiftCorpusPoint] = []
    for name, loop in CORPUS.items():
        if names is not None and name not in names:
            continue
        result = lift_corpus_loop(loop)
        if not result:
            points.append(
                LiftCorpusPoint(
                    name=name,
                    constructs=loop.constructs,
                    lifted=False,
                    reason=result.decision.reason,
                    classifier_ok=None,
                    passed=None,
                    transforms=(),
                    parity=None,
                )
            )
            continue
        program = result.require()
        plan = build_plan(program)
        verdict = classify_loop(program, plan.loop, plan)
        runner = LoopRunner(program, result.inputs)
        config = RunConfig(
            model=CostModel(name="parity1", num_procs=1), engine="auto"
        )
        report = runner.run(Strategy.SPECULATIVE, config)
        arrays, scalars = run_native(loop)
        parity = True
        for array in loop.check_arrays:
            parity = parity and (
                report.env.arrays[array].tobytes() == arrays[array].tobytes()
            )
        for scalar in loop.returns:
            got = report.env.scalars.get(f"{scalar}_out")
            native = scalars[scalar]
            parity = parity and bool(
                got == native or np.isclose(got, native, rtol=0.0, atol=0.0)
            )
        from repro.analysis.classify import ScalarClass

        transforms = []
        private_scalars = any(
            cls is ScalarClass.PRIVATE for cls in plan.scalar_classes.values()
        )
        if plan.tested_arrays or private_scalars:
            transforms.append("privatization")
        if plan.reduction_arrays or plan.scalar_reductions:
            transforms.append("reduction")
        points.append(
            LiftCorpusPoint(
                name=name,
                constructs=loop.constructs,
                lifted=True,
                reason=None,
                classifier_ok=bool(verdict),
                passed=report.passed,
                transforms=tuple(transforms),
                parity=parity,
            )
        )
    return points
