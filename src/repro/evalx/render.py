"""Monospace text-table rendering for the evaluation artifacts."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a simple aligned text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(part.ljust(width) for part, width in zip(parts, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    for row in cells:
        out.append(line(row))
    return "\n".join(out)


def format_figure(series_by_label: dict, *, title: str | None = None) -> str:
    """Render a dict of :class:`~repro.machine.stats.SpeedupSeries` as a
    processors-by-series text table (one figure)."""
    labels = list(series_by_label)
    procs = [p.procs for p in series_by_label[labels[0]].points]
    headers = ["procs"] + labels
    rows = []
    for index, p in enumerate(procs):
        row: list[object] = [p]
        for label in labels:
            points = series_by_label[label].points
            row.append(points[index].speedup if index < len(points) else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def ascii_chart(
    series_by_label: dict,
    *,
    height: int = 14,
    title: str | None = None,
) -> str:
    """A rough terminal plot of speedup-vs-processors series.

    The x axis spans the processor counts of the first series; each
    series is drawn with its own glyph; the y axis is speedup.
    """
    labels = list(series_by_label)
    glyphs = "*o+x#@%&"
    procs = [p.procs for p in series_by_label[labels[0]].points]
    max_speedup = max(
        point.speedup
        for series in series_by_label.values()
        for point in series.points
    )
    top = max(1.0, max_speedup)

    width = len(procs)
    grid = [[" "] * width for _ in range(height)]
    for label_index, label in enumerate(labels):
        glyph = glyphs[label_index % len(glyphs)]
        for column, point in enumerate(series_by_label[label].points[:width]):
            row = height - 1 - int(round((point.speedup / top) * (height - 1)))
            row = min(max(row, 0), height - 1)
            if grid[row][column] == " ":
                grid[row][column] = glyph
            else:
                grid[row][column] = "!"  # overlapping points

    lines = []
    if title:
        lines.append(title)
    cell = 5
    for row_index, row in enumerate(grid):
        y_value = top * (height - 1 - row_index) / (height - 1)
        body = "".join(c.center(cell) for c in row)
        lines.append(f"{y_value:6.1f} |{body}")
    lines.append("       +" + "-" * (cell * width))
    lines.append("        " + "".join(str(p).center(cell) for p in procs))
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]} {label}" for i, label in enumerate(labels)
    )
    lines.append("        " + legend + "   (! = overlap)")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
