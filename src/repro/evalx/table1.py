"""Table I: the seven PERFECT-benchmark loops under the LRPD framework.

For each loop: which arrays were tested, which transforms the run-time
test validated (privatization / array reductions / scalar reductions),
whether the inspector variant is applicable (TRACK: no), and the
simulated speedups of the speculative and inspector strategies on the
FX/80-like (p=8) and FX/2800-like (p=14) machine models, next to the
ideal (no-overhead) doall speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InspectorNotExtractable
from repro.evalx.render import format_table
from repro.machine.costmodel import CostModel, fx80, fx2800
from repro.machine.schedule import ScheduleKind, assign_iterations, makespan
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads import PAPER_LOOPS
from repro.workloads.base import Workload

#: Loops whose serial pre-loop phase (SPICE's list traversal) is charged
#: to the loop time, as the paper does for the while-loop technique.
_INCLUDE_SETUP = frozenset({"SPICE_LOAD_do40"})


@dataclass
class Table1Row:
    loop: str
    tested_arrays: int
    shadow_elements: int
    transforms: str
    test_passed: bool
    inspector_ok: bool
    speedup_spec_8: float
    speedup_insp_8: float | None
    speedup_spec_14: float
    speedup_insp_14: float | None
    ideal_8: float
    ideal_14: float


def _ideal_speedup(runner: LoopRunner, model: CostModel, extra: float) -> float:
    serial = runner.serial_run(model)
    cycles = [model.iteration_cycles(c) for c in serial.loop_iteration_costs]
    assignment = assign_iterations(len(cycles), model.num_procs, ScheduleKind.BLOCK)
    time = makespan(assignment, cycles) + model.barrier(model.num_procs) + extra
    return (serial.loop_time + extra) / time


def _transform_label(runner: LoopRunner, report) -> str:
    labels = []
    details = report.test_result.details if report.test_result else {}
    if any(d.privatized_elements > 0 for d in details.values()) or (
        runner.plan.tested_arrays - runner.plan.reduction_arrays
    ):
        labels.append("priv")
    if any(d.reduction_elements > 0 for d in details.values()):
        labels.append("red")
    if runner.plan.scalar_reductions:
        labels.append("sred")
    return "+".join(labels) if labels else "none"


def build_table1(
    loops: dict[str, object] | None = None,
    *,
    model8: CostModel | None = None,
    model14: CostModel | None = None,
) -> list[Table1Row]:
    """Run every paper loop under both machines and both strategies."""
    loops = loops if loops is not None else PAPER_LOOPS
    model8 = model8 or fx80()
    model14 = model14 or fx2800()
    rows: list[Table1Row] = []

    for name, builder in loops.items():
        workload: Workload = builder()
        runner = LoopRunner(workload.program(), workload.inputs)
        extra8 = (
            runner.serial_run(model8).setup_time if name in _INCLUDE_SETUP else 0.0
        )
        extra14 = (
            runner.serial_run(model14).setup_time if name in _INCLUDE_SETUP else 0.0
        )

        def timed_speedup(strategy: Strategy, model: CostModel, extra: float):
            report = runner.run(strategy, RunConfig(model=model))
            serial = runner.serial_run(model)
            return report, (serial.loop_time + extra) / (report.loop_time + extra)

        spec8, s8 = timed_speedup(Strategy.SPECULATIVE, model8, extra8)
        _spec14, s14 = timed_speedup(Strategy.SPECULATIVE, model14, extra14)
        try:
            _insp8, i8 = timed_speedup(Strategy.INSPECTOR, model8, extra8)
            _insp14, i14 = timed_speedup(Strategy.INSPECTOR, model14, extra14)
        except InspectorNotExtractable:
            i8 = i14 = None

        shadow_elements = sum(
            runner.serial_run(model8).env.arrays[a].size
            for a in runner.plan.tested_arrays
        )
        rows.append(
            Table1Row(
                loop=name,
                tested_arrays=len(runner.plan.tested_arrays),
                shadow_elements=shadow_elements,
                transforms=_transform_label(runner, spec8),
                test_passed=bool(spec8.passed),
                inspector_ok=runner.plan.inspector_extractable,
                speedup_spec_8=s8,
                speedup_insp_8=i8,
                speedup_spec_14=s14,
                speedup_insp_14=i14,
                ideal_8=_ideal_speedup(runner, model8, extra8),
                ideal_14=_ideal_speedup(runner, model14, extra14),
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Text rendering of Table I."""
    headers = [
        "loop", "tested", "shadow", "transforms", "passed", "insp?",
        "spec p=8", "insp p=8", "ideal p=8",
        "spec p=14", "insp p=14", "ideal p=14",
    ]
    body = [
        [
            r.loop,
            r.tested_arrays,
            r.shadow_elements,
            r.transforms,
            r.test_passed,
            r.inspector_ok,
            r.speedup_spec_8,
            "n/a" if r.speedup_insp_8 is None else f"{r.speedup_insp_8:.2f}",
            r.ideal_8,
            r.speedup_spec_14,
            "n/a" if r.speedup_insp_14 is None else f"{r.speedup_insp_14:.2f}",
            r.ideal_14,
        ]
        for r in rows
    ]
    return format_table(
        headers,
        body,
        title="Table I — LRPD test on the PERFECT-like loops (simulated machines)",
    )
