"""Table II: comparison of run-time parallelization methods.

Two parts:

* the *qualitative* table, transcribed from the paper
  (:data:`repro.baselines.capabilities.TABLE_II_ROWS`);
* an *empirical* companion: every executable baseline scheduled on a
  partially parallel loop with a known minimal wavefront depth, reporting
  measured depth and simulated execution time — this substantiates the
  qualitative "obtains optimal schedule" / "sequential portions" /
  "global synchronization" claims, and shows the LRPD strategies'
  doall-or-serial behaviour next to them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines.capabilities import TABLE_II_ROWS
from repro.baselines.executor import staged_execution_time
from repro.baselines.methods import ALL_METHODS
from repro.baselines.trace import extract_trace
from repro.errors import BaselineInapplicable
from repro.evalx.render import format_table
from repro.machine.costmodel import CostModel, fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads.synthetic import build_wavefront_chain


@dataclass
class EmpiricalRow:
    method: str
    applicable: bool
    depth: int | None
    optimal_depth: int
    time: float | None
    parallel_inspector: bool | None
    critical_sections: int | None
    reason: str = ""


@dataclass
class Table2:
    qualitative: tuple = TABLE_II_ROWS
    empirical: list[EmpiricalRow] = field(default_factory=list)
    lrpd_time: float = 0.0
    serial_time: float = 0.0


def build_table2(
    *,
    n: int = 240,
    num_chains: int = 8,
    model: CostModel | None = None,
) -> Table2:
    """Schedule a known-depth wavefront loop with every baseline."""
    model = model or fx80()
    workload = build_wavefront_chain(
        n=n, num_chains=num_chains, scramble=True, shared_read=True
    )
    program = workload.program()
    trace = extract_trace(program, workload.inputs)
    optimal_depth = math.ceil(n / num_chains)

    table = Table2()
    for name, scheduler in ALL_METHODS.items():
        try:
            schedule = scheduler(trace)
        except BaselineInapplicable as exc:
            table.empirical.append(
                EmpiricalRow(
                    method=name,
                    applicable=False,
                    depth=None,
                    optimal_depth=optimal_depth,
                    time=None,
                    parallel_inspector=None,
                    critical_sections=None,
                    reason=str(exc),
                )
            )
            continue
        timing = staged_execution_time(schedule, trace.iteration_costs, model)
        table.empirical.append(
            EmpiricalRow(
                method=name,
                applicable=True,
                depth=schedule.depth,
                optimal_depth=optimal_depth,
                time=timing.total(),
                parallel_inspector=schedule.parallel_inspector,
                critical_sections=schedule.critical_sections,
            )
        )

    # Saltz/Mirchandaney's DOACROSS is pipelined, not staged: it gets a
    # time but no depth.
    from repro.baselines.doacross import simulate_doacross

    try:
        doacross = simulate_doacross(trace, trace.iteration_costs, model)
        table.empirical.append(
            EmpiricalRow(
                method="Saltz/Mirchandaney (DOACROSS)",
                applicable=True,
                depth=None,
                optimal_depth=optimal_depth,
                time=doacross.total,
                parallel_inspector=True,
                critical_sections=doacross.sync_waits,
            )
        )
    except BaselineInapplicable as exc:
        table.empirical.append(
            EmpiricalRow(
                method="Saltz/Mirchandaney (DOACROSS)",
                applicable=False,
                depth=None,
                optimal_depth=optimal_depth,
                time=None,
                parallel_inspector=None,
                critical_sections=None,
                reason=str(exc),
            )
        )

    # The LRPD framework on the same loop: the test fails (it is not a
    # doall), so the loop runs serially — the "No(6)" entry of Table II.
    runner = LoopRunner(workload.program(), workload.inputs)
    report = runner.run(Strategy.SPECULATIVE, RunConfig(model=model))
    table.lrpd_time = report.loop_time
    table.serial_time = runner.serial_run(model).loop_time
    return table


def render_table2(table: Table2) -> str:
    """Text rendering of both halves of Table II."""
    qual_headers = [
        "method", "optimal", "seq parts", "global sync", "restricts", "P/R",
    ]
    qual_rows = [
        [r.method, r.optimal_schedule, r.sequential_portions, r.global_sync,
         r.restricts_loop, r.priv_or_reductions]
        for r in table.qualitative
    ]
    emp_headers = [
        "method", "applicable", "depth", "optimal", "time", "par. inspector",
        "critical sections",
    ]
    emp_rows = []
    for r in table.empirical:
        emp_rows.append(
            [
                r.method,
                r.applicable,
                "-" if r.depth is None else r.depth,
                r.optimal_depth,
                "-" if r.time is None else f"{r.time:.0f}",
                "-" if r.parallel_inspector is None else r.parallel_inspector,
                "-" if r.critical_sections is None else r.critical_sections,
            ]
        )
    parts = [
        format_table(qual_headers, qual_rows,
                     title="Table II (qualitative, transcribed from the paper)"),
        "",
        format_table(emp_headers, emp_rows,
                     title="Table II (empirical companion: wavefront loop)"),
        "",
        f"LRPD framework on the same loop: test fails -> serial; "
        f"time {table.lrpd_time:.0f} vs serial {table.serial_time:.0f}",
    ]
    return "\n".join(parts)
