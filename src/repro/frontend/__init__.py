"""Pluggable loop-ingestion frontends (mirrors the engine registry).

Every way of turning user input into a marked-doall
:class:`~repro.dsl.ast_nodes.Program` lives behind the
:class:`~repro.frontend.base.Frontend` protocol and the process-wide
registry here:

* ``dsl``    — the mini-Fortran parser (the original ingestion path);
* ``python`` — ``ast``-based lifting of real Python ``for`` loops.

Program construction anywhere else is a lint violation
(``benchmarks/check_engine_dispatch.py``), exactly like string-literal
engine dispatch outside :mod:`repro.runtime.engines`.
"""

from repro.frontend.base import (
    DEFAULT_FRONTEND,
    Frontend,
    FrontendRegistry,
    LiftDecision,
    LiftResult,
    frontend_names,
    get_frontend,
    registry,
)
from repro.frontend.dsl import DslFrontend
from repro.frontend.pyloop import PythonFrontend

registry.register(DslFrontend())
registry.register(PythonFrontend())

__all__ = [
    "DEFAULT_FRONTEND",
    "DslFrontend",
    "Frontend",
    "FrontendRegistry",
    "LiftDecision",
    "LiftResult",
    "PythonFrontend",
    "frontend_names",
    "get_frontend",
    "registry",
]
