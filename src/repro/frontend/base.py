"""The loop-ingestion frontend protocol and registry.

A *frontend* turns something a user has — mini-Fortran text, a real
Python function — into a :class:`~repro.dsl.ast_nodes.Program` in the
marked-doall IR, which is the one currency every downstream tier
(classifier, LRPD runtime, engines, serve daemon) trades in.  The layer
mirrors the :class:`~repro.runtime.engines.base.ExecutionEngine`
protocol/registry: frontends are looked up by name from a process-wide
registry, and ``Program`` construction happens only behind it (enforced
by ``benchmarks/check_engine_dispatch.py``).

Lifting is total: it never raises on unsupported input.  Every attempt
produces a :class:`LiftResult` whose :class:`LiftDecision` either
accepts, or rejects with a *named* kebab-case reason (mirroring
:class:`~repro.analysis.vectorize.VectorizeDecision`) so rejection
rates can be counted per construct in the corpus harness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.dsl.ast_nodes import Program
from repro.errors import LiftError, UnknownFrontendError


@dataclass(frozen=True)
class LiftDecision:
    """Did the frontend lift the loop, and if not, exactly why not.

    ``reason`` is a stable machine-readable name (``"iterator-not-range"``,
    ``"multidim-array"``...); ``detail`` is the human-facing specifics
    (the offending source line or construct).
    """

    ok: bool
    reason: str | None = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok

    def explain(self) -> str:
        if self.ok:
            return "ok"
        if self.detail:
            return f"rejected ({self.reason}): {self.detail}"
        return f"rejected ({self.reason})"


@dataclass
class LiftResult:
    """Everything one lift attempt produced.

    On success ``program`` is the lifted IR, ``source`` its mini-Fortran
    rendering (what a :class:`~repro.workloads.base.Workload` stores),
    ``inputs`` the normalized input bindings and ``returns`` the scalar
    names the original function returned (their final values are
    mirrored into live-out ``<name>_out`` scalars so the runtime
    materializes them).  On rejection only ``decision`` is meaningful.
    """

    frontend: str
    decision: LiftDecision
    program: Program | None = None
    source: str = ""
    inputs: dict = field(default_factory=dict)
    returns: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.decision.ok

    def require(self) -> Program:
        """The lifted program, or :class:`~repro.errors.LiftError`."""
        if not self.decision.ok or self.program is None:
            raise LiftError(
                self.decision.reason or "lift-failed", self.decision.detail
            )
        return self.program


class Frontend(ABC):
    """One way of getting loops into the marked-doall IR.

    Concrete frontends are stateless; register one instance per process
    (mirroring the engine registry).  ``suffixes`` drives the CLI's
    frontend auto-selection from a file name.
    """

    #: registry key (``repro lift --frontend <name>``).
    name: str = ""
    #: one-line description for listings.
    summary: str = ""
    #: file suffixes this frontend claims (e.g. ``(".py",)``).
    suffixes: tuple[str, ...] = ()

    @abstractmethod
    def lift(
        self,
        source: object,
        *,
        name: str | None = None,
        inputs: dict | None = None,
    ) -> LiftResult:
        """Lift ``source`` (text or object, frontend-specific) into the IR."""


class FrontendRegistry:
    """Process-wide name -> :class:`Frontend` table."""

    def __init__(self) -> None:
        self._frontends: dict[str, Frontend] = {}

    def register(self, frontend: Frontend) -> Frontend:
        if not frontend.name:
            raise ValueError("frontend must carry a non-empty name")
        if frontend.name in self._frontends:
            raise ValueError(f"frontend {frontend.name!r} already registered")
        self._frontends[frontend.name] = frontend
        return frontend

    def get(self, name: str) -> Frontend:
        try:
            return self._frontends[name]
        except KeyError:
            known = ", ".join(sorted(self._frontends))
            raise UnknownFrontendError(
                f"unknown frontend {name!r}; registered: {known}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._frontends)

    def all(self) -> list[Frontend]:
        return [self._frontends[name] for name in self.names()]

    def for_path(self, path: str) -> Frontend:
        """The frontend claiming ``path``'s suffix (default: ``dsl``)."""
        lowered = path.lower()
        for frontend in self.all():
            if any(lowered.endswith(suffix) for suffix in frontend.suffixes):
                return frontend
        return self.get(DEFAULT_FRONTEND)


#: the module-level registry every lookup goes through.
registry = FrontendRegistry()

#: what bare source text is assumed to be.
DEFAULT_FRONTEND = "dsl"


def get_frontend(name: str) -> Frontend:
    """Look up a registered frontend by name."""
    return registry.get(name)


def frontend_names() -> list[str]:
    """Registered frontend names, sorted."""
    return registry.names()
