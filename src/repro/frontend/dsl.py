"""The mini-Fortran DSL frontend.

Wraps :func:`repro.dsl.parser.parse` behind the :class:`Frontend`
protocol so the hand-written DSL is just one registered way into the
IR.  Syntax errors become a named rejection rather than an exception —
lifting is total across frontends.
"""

from __future__ import annotations

from repro.dsl.parser import parse
from repro.dsl.printer import to_source
from repro.errors import DslSyntaxError
from repro.frontend.base import Frontend, LiftDecision, LiftResult


class DslFrontend(Frontend):
    """Parse mini-Fortran source text into the IR."""

    name = "dsl"
    summary = "mini-Fortran text (the paper's hand-built loop language)"
    suffixes = (".f", ".f77", ".dsl")

    def lift(
        self,
        source: object,
        *,
        name: str | None = None,
        inputs: dict | None = None,
    ) -> LiftResult:
        if not isinstance(source, str):
            return LiftResult(
                frontend=self.name,
                decision=LiftDecision(
                    False, "source-not-text",
                    f"the dsl frontend lifts source text, got {type(source).__name__}",
                ),
            )
        try:
            program = parse(source)
        except DslSyntaxError as exc:
            return LiftResult(
                frontend=self.name,
                decision=LiftDecision(False, "dsl-syntax-error", str(exc)),
            )
        return LiftResult(
            frontend=self.name,
            decision=LiftDecision(True),
            program=program,
            source=to_source(program),
            inputs=dict(inputs or {}),
        )
