"""The ``python`` frontend: lift real Python ``for`` loops into the IR.

This is the layer the ROADMAP's top open item asks for: instead of
hand-writing mini-Fortran, a user hands us an ordinary Python function
whose body is a ``for i in range(...)`` loop nest over 1-D numpy
arrays, and we lift it — via the ``ast`` module, no execution — into
the marked-doall IR that the classifier, the LRPD runtime and every
execution engine already speak.

The supported subset is restricted but covers the paper's access-
pattern classes: subscripted subscripts (``A[B[i]]``), data-dependent
``if``/``elif``/``else``, scalar temporaries, nested ``range`` loops,
and the reduction idioms ``s += expr`` / ``A[idx[i]] += expr``.
Anything outside the subset yields a rejecting :class:`LiftDecision`
with a *named* reason — never an exception — so corpus harnesses can
count rejection rates per construct.

Semantics are preserved exactly (the parity tests demand bit-identical
results to running the function directly):

* Python's 0-based world maps onto the DSL's 1-based arrays by shifting
  every subscript up by one.  The loop variable *keeps its Python
  value*: ``for i in range(a, b)`` becomes ``do i = a + 1, b`` and every
  use of ``i`` is rewritten to ``i - 1``, so after constant folding
  ``x[i]`` lifts to ``x(i)`` and ``x[idx[i]]`` to ``x(idx(i) + 1)``.
* Python's true division always yields a float, while the DSL's ``/``
  truncates on integer operands (Fortran rules) — integer numerators
  are wrapped in the ``real`` intrinsic.  ``//`` and ``%`` lift to
  ``floor``-based forms matching Python's floored semantics (integer
  operands only; the DSL's ``mod`` truncates and is deliberately not
  used).
* ``return s`` (scalars only) records the live-out names and mirrors
  each into an ``<name>_out`` scalar after the loop, so scalar
  reductions stay observable through the parallel runtime.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

import numpy as np

from repro.dsl.ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    Expr,
    If,
    Num,
    Program,
    ScalarDecl,
    Stmt,
    UnaryOp,
    Var,
)
from repro.dsl.parser import INTRINSICS
from repro.dsl.printer import to_source
from repro.frontend.base import Frontend, LiftDecision, LiftResult

#: names the DSL lexer/parser claims for itself; a Python identifier
#: colliding with one cannot round-trip through printed source.
RESERVED_NAMES = frozenset(
    {
        "program", "end", "do", "enddo", "if", "then", "else", "elseif",
        "endif", "while", "endwhile", "real", "integer", "not", "and", "or",
    }
) | frozenset(INTRINSICS)

#: module aliases whose math attributes map onto DSL intrinsics.
_MATH_MODULES = frozenset({"math", "np", "numpy"})

#: ``module.attr`` -> intrinsic name (all unary).
_MATH_INTRINSICS = {
    "sqrt": "sqrt", "exp": "exp", "log": "log", "sin": "sin",
    "cos": "cos", "fabs": "abs", "floor": "floor",
}

_AUG_OPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}
_CMP_OPS = {
    ast.Eq: "==", ast.NotEq: "/=", ast.Lt: "<",
    ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
}


class _Reject(Exception):
    """Internal: abort the lift with a named reason."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(reason)


def _num(value: int) -> Expr:
    """An integer literal; negatives print as a unary minus."""
    if value < 0:
        return UnaryOp(op="-", operand=Num(value=float(-value), is_int=True))
    return Num(value=float(value), is_int=True)


def _plus_const(expr: Expr, k: int) -> Expr:
    """``expr + k`` with integer-constant folding.

    Folding is applied only to integer-valued expressions (subscripts,
    loop-variable shifts), where ``(e - 1) + 1 == e`` holds exactly;
    it keeps the ±1 index-shift dance out of the printed IR.
    """
    if k == 0:
        return expr
    if isinstance(expr, Num) and expr.is_int:
        return _num(int(expr.value) + k)
    if (
        isinstance(expr, BinOp)
        and expr.op in ("+", "-")
        and isinstance(expr.right, Num)
        and expr.right.is_int
    ):
        sign = 1 if expr.op == "+" else -1
        return _plus_const(expr.left, sign * int(expr.right.value) + k)
    if k > 0:
        return BinOp(op="+", left=expr, right=_num(k))
    return BinOp(op="-", left=expr, right=_num(-k))


class _Lifter:
    """One lift attempt over one Python function."""

    def __init__(self, fn_name: str, inputs: dict):
        self.fn_name = fn_name
        self.inputs = inputs
        #: name -> "real" | "integer" for scalars (params + locals).
        self.scalar_kinds: dict[str, str] = {}
        #: name -> (kind, size) for 1-D array inputs.
        self.arrays: dict[str, tuple[str, int]] = {}
        #: loop variables currently in scope (their DSL value is +1).
        self.shifted: set[str] = set()
        #: every loop variable ever opened (declared integer).
        self.loop_vars: list[str] = []
        #: loop variables whose loop has finished: their DSL value no
        #: longer tracks the Python value, so reads are rejected.
        self.expired: set[str] = set()
        #: names with a value at the current program point.
        self.defined: set[str] = set()
        #: parameter names, in signature order.
        self.params: list[str] = []
        self.returns: tuple[str, ...] = ()

    # -- entry ------------------------------------------------------------

    def lift(self, fn_def: ast.FunctionDef) -> tuple[Program, tuple[str, ...]]:
        self._bind_inputs(fn_def)
        body = [stmt for stmt in fn_def.body if not _is_docstring(stmt)]
        pre, loop, post = self._split(body)
        self._infer_local_kinds(pre, loop)

        stmts: list[Stmt] = [self._lift_scalar_assign(s) for s in pre]
        stmts.append(self._lift_for(loop))
        self.returns = self._lift_return(post)
        mirrors = self._mirror_returns(stmts)

        decls = self._declarations(mirrors)
        name = self.fn_name.lower()
        if name != self.fn_name:
            raise _Reject("uppercase-name", f"function name {self.fn_name!r}")
        return Program(name=name, decls=decls, body=stmts), self.returns

    # -- structure --------------------------------------------------------

    def _bind_inputs(self, fn_def: ast.FunctionDef) -> None:
        args = fn_def.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise _Reject(
                "unsupported-signature",
                "only plain positional parameters are liftable",
            )
        for arg in args.args:
            pname = arg.arg
            self.params.append(pname)
            self._check_name(pname)
            if pname not in self.inputs:
                raise _Reject("missing-input", f"no input binding for {pname!r}")
            value = self.inputs[pname]
            if isinstance(value, np.ndarray):
                if value.ndim != 1:
                    raise _Reject(
                        "multidim-array", f"{pname!r} has ndim={value.ndim}"
                    )
                self.arrays[pname] = (_dtype_kind(pname, value.dtype), len(value))
            elif isinstance(value, (bool, np.bool_)):
                raise _Reject("unsupported-input-type", f"{pname!r} is a bool")
            elif isinstance(value, (int, np.integer)):
                self.scalar_kinds[pname] = "integer"
            elif isinstance(value, (float, np.floating)):
                self.scalar_kinds[pname] = "real"
            else:
                raise _Reject(
                    "unsupported-input-type",
                    f"{pname!r} is {type(value).__name__}",
                )
            self.defined.add(pname)

    def _split(
        self, body: list[ast.stmt]
    ) -> tuple[list[ast.Assign], ast.For, list[ast.stmt]]:
        """Split the function body into pre-loop assigns, THE loop, rest."""
        pre: list[ast.Assign] = []
        for index, stmt in enumerate(body):
            if isinstance(stmt, ast.For):
                return pre, stmt, body[index + 1 :]
            if isinstance(stmt, ast.Assign):
                pre.append(stmt)
                continue
            raise _Reject(
                "unsupported-statement",
                f"{_stmt_name(stmt)} before the loop (only scalar "
                f"assignments may precede it)",
            )
        raise _Reject("no-for-loop", "the function body contains no for loop")

    def _lift_return(self, post: list[ast.stmt]) -> tuple[str, ...]:
        if not post:
            return ()
        if len(post) > 1 or not isinstance(post[0], ast.Return):
            raise _Reject(
                "statements-after-loop",
                "only a single `return` may follow the loop",
            )
        value = post[0].value
        if value is None:
            return ()
        elts = value.elts if isinstance(value, ast.Tuple) else [value]
        names: list[str] = []
        for elt in elts:
            if not isinstance(elt, ast.Name):
                raise _Reject(
                    "unsupported-return",
                    "only bare scalar names may be returned",
                )
            if elt.id in self.arrays:
                raise _Reject(
                    "unsupported-return",
                    f"{elt.id!r} is an array (arrays are returned in place)",
                )
            if elt.id in self.loop_vars:
                raise _Reject(
                    "unsupported-return",
                    f"{elt.id!r} is a loop variable (its post-loop value "
                    f"differs between Python and the DSL)",
                )
            if elt.id not in self.scalar_kinds:
                raise _Reject("undefined-name", f"returned name {elt.id!r}")
            names.append(elt.id)
        return tuple(names)

    def _mirror_returns(self, stmts: list[Stmt]) -> list[ScalarDecl]:
        """Copy each returned scalar into a fresh live-out mirror.

        The liveness pass only treats scalars *read after the loop* as
        live-out; without the mirror a returned reduction accumulator
        would be dead in the IR and the parallel runtime free to drop
        its final value.
        """
        mirrors: list[ScalarDecl] = []
        taken = set(self.scalar_kinds) | set(self.arrays) | set(self.loop_vars)
        for name in self.returns:
            mirror = f"{name}_out"
            while mirror in taken:
                mirror += "_"
            taken.add(mirror)
            stmts.append(Assign(target=Var(name=mirror), expr=Var(name=name)))
            mirrors.append(ScalarDecl(name=mirror, kind=self.scalar_kinds[name]))
        return mirrors

    def _declarations(self, mirrors: list[ScalarDecl]) -> list:
        decls: list = []
        for name, kind in self.scalar_kinds.items():
            decls.append(ScalarDecl(name=name, kind=kind))
        for name in self.loop_vars:
            decls.append(ScalarDecl(name=name, kind="integer"))
        decls.extend(mirrors)
        for name, (kind, size) in self.arrays.items():
            decls.append(ArrayDecl(name=name, kind=kind, size=size))
        return decls

    # -- statements -------------------------------------------------------

    def _lift_for(self, node: ast.For) -> Do:
        if node.orelse:
            raise _Reject("else-clause-on-loop", "for/else is not liftable")
        if not isinstance(node.target, ast.Name):
            raise _Reject("iterator-not-range", "tuple loop targets")
        var = node.target.id
        call = node.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "range"
            and not call.keywords
        ):
            raise _Reject(
                "iterator-not-range",
                f"for-loop iterates {_expr_name(node.iter)}, not range(...)",
            )
        self._check_name(var)
        if var in self.arrays or (
            var in self.scalar_kinds and var not in self.loop_vars
        ):
            raise _Reject(
                "loop-var-shadows", f"{var!r} is already a parameter or local"
            )
        if not 1 <= len(call.args) <= 3:
            raise _Reject("iterator-not-range", "range() with no arguments")
        step = None
        if len(call.args) == 3:
            step_node = call.args[2]
            if not (
                isinstance(step_node, ast.Constant)
                and isinstance(step_node.value, int)
                and not isinstance(step_node.value, bool)
                and step_node.value > 0
            ):
                raise _Reject(
                    "range-step-not-positive-constant",
                    "only positive integer-literal steps are liftable",
                )
            if step_node.value != 1:
                step = _num(step_node.value)
        if len(call.args) == 1:
            start_node, stop_node = None, call.args[0]
        else:
            start_node, stop_node = call.args[0], call.args[1]

        # Bounds are evaluated outside this variable's scope.  The DSL
        # variable runs one above the Python value: range(a, b) becomes
        # `do var = a + 1, b` (count and per-iteration values line up
        # for any positive step).
        start = _num(1) if start_node is None else _plus_const(
            self._lift_int_expr(start_node, "range bound"), 1
        )
        stop = self._lift_int_expr(stop_node, "range bound")

        if var in self.shifted:
            raise _Reject("loop-var-reused", f"{var!r} opens two nested loops")
        if var not in self.loop_vars:
            self.loop_vars.append(var)
        self.shifted.add(var)
        self.expired.discard(var)
        self.defined.add(var)
        body = [self._lift_stmt(stmt) for stmt in node.body]
        self.shifted.discard(var)
        # After `do j = ...` ends, the DSL's j sits one step past the
        # Python value; reads must reopen a loop first.
        self.expired.add(var)
        return Do(var=var, start=start, stop=stop, step=step, body=body)

    def _lift_stmt(self, node: ast.stmt) -> Stmt:
        if isinstance(node, ast.Assign):
            return self._lift_assign(node)
        if isinstance(node, ast.AugAssign):
            return self._lift_aug_assign(node)
        if isinstance(node, ast.If):
            return self._lift_if(node)
        if isinstance(node, ast.For):
            return self._lift_for(node)
        if isinstance(node, ast.Break):
            raise _Reject("break-unsupported", "break exits are not liftable")
        if isinstance(node, ast.Continue):
            raise _Reject("continue-unsupported", "continue is not liftable")
        if isinstance(node, ast.While):
            raise _Reject("while-unsupported", "while loops are not liftable")
        raise _Reject("unsupported-statement", _stmt_name(node))

    def _lift_assign(self, node: ast.Assign) -> Assign:
        if len(node.targets) != 1:
            raise _Reject("unsupported-statement", "chained assignment")
        target = node.targets[0]
        expr = self._lift_expr(node.value)
        if isinstance(target, ast.Name):
            self._check_store_name(target.id)
            self.defined.add(target.id)
            return Assign(target=Var(name=target.id), expr=expr)
        if isinstance(target, ast.Subscript):
            return Assign(target=self._lift_subscript(target), expr=expr)
        raise _Reject("unsupported-statement", f"assignment to {_expr_name(target)}")

    def _lift_aug_assign(self, node: ast.AugAssign) -> Assign:
        op = _AUG_OPS.get(type(node.op))
        if op is None:
            raise _Reject(
                "augmented-op-unsupported",
                f"{type(node.op).__name__.lower()}= updates are not liftable",
            )
        value = self._lift_expr(node.value)
        target = node.target
        if isinstance(target, ast.Name):
            self._check_store_name(target.id)
            if target.id not in self.defined:
                raise _Reject("undefined-name", f"{target.id!r} updated before use")
            current = self._lift_name(target.id)
            self.defined.add(target.id)
            return Assign(
                target=Var(name=target.id),
                expr=BinOp(op=op, left=current, right=value),
            )
        if isinstance(target, ast.Subscript):
            # A[e] op= v  ->  A(e') = A(e') op v, the self-update shape
            # reduction recognition matches.  The two references are
            # distinct AST nodes (distinct ref_ids), as the DSL expects.
            store = self._lift_subscript(target)
            load = self._lift_subscript(target)
            return Assign(target=store, expr=BinOp(op=op, left=load, right=value))
        raise _Reject("unsupported-statement", f"update of {_expr_name(target)}")

    def _lift_if(self, node: ast.If) -> If:
        cond = self._lift_expr(node.test)
        then_body = [self._lift_stmt(s) for s in node.body]
        else_body = [self._lift_stmt(s) for s in node.orelse]
        return If(cond=cond, then_body=then_body, else_body=else_body)

    def _lift_scalar_assign(self, node: ast.Assign) -> Assign:
        """A pre-loop statement: scalar name = expression."""
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            raise _Reject(
                "unsupported-statement",
                "only scalar assignments may precede the loop",
            )
        name = node.targets[0].id
        self._check_store_name(name)
        expr = self._lift_expr(node.value)
        self.defined.add(name)
        return Assign(target=Var(name=name), expr=expr)

    # -- expressions ------------------------------------------------------

    def _lift_expr(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            return self._lift_constant(node)
        if isinstance(node, ast.Name):
            return self._lift_name(node.id)
        if isinstance(node, ast.Subscript):
            return self._lift_subscript(node)
        if isinstance(node, ast.BinOp):
            return self._lift_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._lift_unary(node)
        if isinstance(node, ast.BoolOp):
            return self._lift_boolop(node)
        if isinstance(node, ast.Compare):
            return self._lift_compare(node)
        if isinstance(node, ast.Call):
            return self._lift_call(node)
        if isinstance(node, ast.IfExp):
            raise _Reject(
                "ternary-unsupported", "conditional expressions are not liftable"
            )
        raise _Reject("unsupported-expression", _expr_name(node))

    def _lift_constant(self, node: ast.Constant) -> Expr:
        value = node.value
        if isinstance(value, bool):
            return _num(1 if value else 0)
        if isinstance(value, int):
            return _num(value)
        if isinstance(value, float):
            if value < 0:  # folded constants like -1.5
                return UnaryOp(op="-", operand=Num(value=-value, is_int=False))
            return Num(value=value, is_int=False)
        raise _Reject(
            "unsupported-constant", f"{type(value).__name__} literal"
        )

    def _lift_name(self, name: str) -> Expr:
        if name in self.arrays:
            raise _Reject(
                "array-used-as-value",
                f"{name!r} used without a subscript (only len({name}) "
                f"and {name}[...] are liftable)",
            )
        if name not in self.defined:
            raise _Reject("undefined-name", f"{name!r} read before assignment")
        if name in self.expired:
            raise _Reject(
                "loop-var-read-after-loop",
                f"{name!r} is read after its loop finished",
            )
        if name in self.shifted:
            return _plus_const(Var(name=name), -1)
        return Var(name=name)

    def _lift_subscript(self, node: ast.Subscript) -> ArrayRef:
        if not isinstance(node.value, ast.Name):
            raise _Reject(
                "unsupported-expression",
                f"subscript of {_expr_name(node.value)}",
            )
        name = node.value.id
        if name not in self.arrays:
            raise _Reject(
                "subscript-of-scalar" if name in self.scalar_kinds
                else "undefined-name",
                f"{name!r}[...]",
            )
        if isinstance(node.slice, (ast.Slice, ast.Tuple)):
            raise _Reject("slice-unsupported", f"{name}[...] with a slice")
        index = self._lift_int_expr(node.slice, f"subscript of {name!r}")
        return ArrayRef(name=name, index=_plus_const(index, 1))

    def _lift_int_expr(self, node: ast.expr, where: str) -> Expr:
        expr = self._lift_expr(node)
        if self._kind_of(node) != "integer":
            raise _Reject("index-not-integer", where)
        return expr

    def _lift_binop(self, node: ast.BinOp) -> Expr:
        left = self._lift_expr(node.left)
        right = self._lift_expr(node.right)
        op = node.op
        if isinstance(op, ast.Add):
            return BinOp(op="+", left=left, right=right)
        if isinstance(op, ast.Sub):
            return BinOp(op="-", left=left, right=right)
        if isinstance(op, ast.Mult):
            return BinOp(op="*", left=left, right=right)
        if isinstance(op, ast.Pow):
            return BinOp(op="**", left=left, right=right)
        if isinstance(op, ast.Div):
            # Python / is always true division; the DSL's truncates on
            # two integers.  A real() on the numerator forces the float
            # path without changing float numerators (real(x) == x).
            if self._kind_of(node.left) == "integer":
                left = Call(func="real", args=[left])
            return BinOp(op="/", left=left, right=right)
        if isinstance(op, ast.FloorDiv):
            return self._lift_floored(node, left, right, remainder=False)
        if isinstance(op, ast.Mod):
            return self._lift_floored(node, left, right, remainder=True)
        raise _Reject(
            "unsupported-operator", type(op).__name__.lower()
        )

    def _lift_floored(
        self, node: ast.BinOp, left: Expr, right: Expr, *, remainder: bool
    ) -> Expr:
        """Python ``//`` and ``%`` via ``floor``, exactly Python's rules.

        Fortran's integer ``/`` and ``mod`` truncate toward zero while
        Python floors, so both lift through ``floor(real(a) / b)``
        (exact for the integer magnitudes a float64 can hold).  Float
        operands are rejected: Python's float ``%`` is fmod-corrected
        and cannot be reproduced bit-exactly from floor arithmetic.
        """
        op_name = "%" if remainder else "//"
        if (
            self._kind_of(node.left) != "integer"
            or self._kind_of(node.right) != "integer"
        ):
            raise _Reject(
                "floored-op-on-real", f"{op_name} with non-integer operands"
            )
        quotient = Call(
            func="floor",
            args=[BinOp(op="/", left=Call(func="real", args=[left]), right=right)],
        )
        if not remainder:
            return quotient
        # a % b == a - floor(a / b) * b for integers.
        again = self._copy_expr(left)
        return BinOp(
            op="-",
            left=again,
            right=BinOp(op="*", left=quotient, right=right),
        )

    def _copy_expr(self, expr: Expr) -> Expr:
        """A structural copy with fresh nodes (distinct ref_ids)."""
        if isinstance(expr, Num):
            return Num(value=expr.value, is_int=expr.is_int)
        if isinstance(expr, Var):
            return Var(name=expr.name)
        if isinstance(expr, ArrayRef):
            return ArrayRef(name=expr.name, index=self._copy_expr(expr.index))
        if isinstance(expr, BinOp):
            return BinOp(
                op=expr.op,
                left=self._copy_expr(expr.left),
                right=self._copy_expr(expr.right),
            )
        if isinstance(expr, Call):
            return Call(func=expr.func, args=[self._copy_expr(a) for a in expr.args])
        assert isinstance(expr, UnaryOp)
        return UnaryOp(op=expr.op, operand=self._copy_expr(expr.operand))

    def _lift_unary(self, node: ast.UnaryOp) -> Expr:
        if isinstance(node.op, ast.USub):
            return UnaryOp(op="-", operand=self._lift_expr(node.operand))
        if isinstance(node.op, ast.UAdd):
            return self._lift_expr(node.operand)
        if isinstance(node.op, ast.Not):
            return UnaryOp(op="not", operand=self._lift_expr(node.operand))
        raise _Reject("unsupported-operator", type(node.op).__name__.lower())

    def _lift_boolop(self, node: ast.BoolOp) -> Expr:
        op = "and" if isinstance(node.op, ast.And) else "or"
        result = self._lift_expr(node.values[0])
        for value in node.values[1:]:
            result = BinOp(op=op, left=result, right=self._lift_expr(value))
        return result

    def _lift_compare(self, node: ast.Compare) -> Expr:
        terms: list[Expr] = []
        left_node = node.left
        for op, right_node in zip(node.ops, node.comparators):
            dsl_op = _CMP_OPS.get(type(op))
            if dsl_op is None:
                raise _Reject(
                    "unsupported-operator", type(op).__name__.lower()
                )
            terms.append(
                BinOp(
                    op=dsl_op,
                    left=self._lift_expr(left_node),
                    right=self._lift_expr(right_node),
                )
            )
            left_node = right_node
        result = terms[0]
        for term in terms[1:]:  # a < b < c  ->  a < b and b < c
            result = BinOp(op="and", left=result, right=term)
        return result

    def _lift_call(self, node: ast.Call) -> Expr:
        if node.keywords:
            raise _Reject("unsupported-call", "keyword arguments")
        func = node.func
        if isinstance(func, ast.Attribute):
            return self._lift_math_call(node, func)
        if not isinstance(func, ast.Name):
            raise _Reject("unsupported-call", _expr_name(func))
        name = func.id
        if name == "len":
            return self._lift_len(node)
        if name == "float":
            return self._one_arg_call(node, "real")
        if name == "int":
            return self._one_arg_call(node, "int")
        if name == "abs":
            return self._one_arg_call(node, "abs")
        if name in ("min", "max"):
            if len(node.args) != 2:
                raise _Reject(
                    "unsupported-call", f"{name}() with {len(node.args)} arguments"
                )
            return Call(func=name, args=[self._lift_expr(a) for a in node.args])
        raise _Reject("unsupported-call", f"{name}()")

    def _lift_math_call(self, node: ast.Call, func: ast.Attribute) -> Expr:
        if not (
            isinstance(func.value, ast.Name) and func.value.id in _MATH_MODULES
        ):
            raise _Reject("unsupported-call", _expr_name(func))
        intrinsic = _MATH_INTRINSICS.get(func.attr)
        if intrinsic is None:
            raise _Reject(
                "unsupported-call", f"{func.value.id}.{func.attr}()"
            )
        return self._one_arg_call(node, intrinsic)

    def _one_arg_call(self, node: ast.Call, intrinsic: str) -> Expr:
        if len(node.args) != 1:
            raise _Reject(
                "unsupported-call",
                f"{intrinsic}() with {len(node.args)} arguments",
            )
        return Call(func=intrinsic, args=[self._lift_expr(node.args[0])])

    def _lift_len(self, node: ast.Call) -> Expr:
        if len(node.args) != 1 or not isinstance(node.args[0], ast.Name):
            raise _Reject("unsupported-call", "len() of a non-array")
        name = node.args[0].id
        if name not in self.arrays:
            raise _Reject("unsupported-call", f"len({name}) of a non-array")
        return _num(self.arrays[name][1])

    # -- kind inference ---------------------------------------------------

    def _infer_local_kinds(self, pre: list[ast.Assign], loop: ast.For) -> None:
        """Assign real/integer kinds to locals by value promotion.

        A local is integer only if *every* value ever assigned to it is
        integer-typed; one real assignment anywhere promotes it (Python
        scalars are dynamically typed — declaring real never changes a
        value, declaring integer would truncate).  Iterated to a fixed
        point so forward references through other locals settle.
        """
        assigns: list[tuple[str, ast.expr]] = []
        for stmt in pre:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assigns.append((target.id, stmt.value))
        assigns += _collect_scalar_assigns(loop)
        for _ in range(len(assigns) + 1):
            changed = False
            for target_name, value in assigns:
                kind = self._kind_of(value, default="integer")
                previous = self.scalar_kinds.get(target_name)
                merged = "real" if "real" in (kind, previous) else "integer"
                if merged != previous:
                    self.scalar_kinds[target_name] = merged
                    changed = True
            if not changed:
                return

    def _kind_of(self, node: ast.expr, default: str | None = None) -> str:
        """The DSL kind ("integer"/"real") this Python expression yields."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or isinstance(node.value, int):
                return "integer"
            return "real"
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.loop_vars or name in self.shifted:
                return "integer"
            kind = self.scalar_kinds.get(name)
            if kind is None:
                return default or "integer"
            return kind
        if isinstance(node, ast.Subscript):
            if isinstance(node.value, ast.Name) and node.value.id in self.arrays:
                return self.arrays[node.value.id][0]
            return "real"
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return "real"
            if isinstance(node.op, (ast.FloorDiv, ast.Mod)):
                return "integer"
            if isinstance(node.op, ast.Pow):
                # int ** int is int in Python only for non-negative
                # literal exponents we can see; anything else may float.
                exponent = node.right
                if (
                    isinstance(exponent, ast.Constant)
                    and isinstance(exponent.value, int)
                    and not isinstance(exponent.value, bool)
                    and exponent.value >= 0
                    and self._kind_of(node.left, default) == "integer"
                ):
                    return "integer"
                return "real"
            left = self._kind_of(node.left, default)
            right = self._kind_of(node.right, default)
            return "real" if "real" in (left, right) else "integer"
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return "integer"
            return self._kind_of(node.operand, default)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return "integer"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("len", "int"):
                    return "integer"
                if func.id == "float":
                    return "real"
                if func.id == "abs" and node.args:
                    return self._kind_of(node.args[0], default)
                if func.id in ("min", "max") and node.args:
                    kinds = {self._kind_of(a, default) for a in node.args}
                    return "real" if "real" in kinds else "integer"
            if isinstance(func, ast.Attribute) and func.attr == "floor":
                return "integer"
            return "real"
        return default or "real"

    # -- names ------------------------------------------------------------

    def _check_name(self, name: str) -> None:
        if name != name.lower():
            raise _Reject("uppercase-name", f"{name!r} (the DSL lowercases names)")
        if name in RESERVED_NAMES:
            raise _Reject("reserved-name", f"{name!r} is a DSL keyword/intrinsic")

    def _check_store_name(self, name: str) -> None:
        self._check_name(name)
        if name in self.arrays:
            raise _Reject(
                "array-rebound", f"{name!r} (arrays may only be stored elementwise)"
            )
        if name in self.shifted or name in self.loop_vars:
            raise _Reject("loop-var-mutated", f"{name!r} is a loop variable")


def _collect_scalar_assigns(loop: ast.For) -> list[tuple[str, ast.expr]]:
    """(name, value-expr) for every scalar assignment under ``loop``."""
    pairs: list[tuple[str, ast.expr]] = []
    for node in ast.walk(loop):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    pairs.append((target.id, node.value))
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            # t op= v types like t = t op v: BinOp(target, v).
            pairs.append(
                (node.target.id, ast.BinOp(node.target, node.op, node.value))
            )
    return pairs


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _stmt_name(stmt: ast.stmt) -> str:
    return type(stmt).__name__.lower()


def _expr_name(expr: ast.expr) -> str:
    return type(expr).__name__.lower()


def _dtype_kind(name: str, dtype: np.dtype) -> str:
    if np.issubdtype(dtype, np.integer):
        return "integer"
    if np.issubdtype(dtype, np.floating):
        return "real"
    raise _Reject("unsupported-dtype", f"{name!r} has dtype {dtype}")


class PythonFrontend(Frontend):
    """Lift a real Python function (or its source text) into the IR.

    ``source`` may be a callable (its source is re-read and re-parsed —
    no execution happens) or Python source text containing the function
    named by ``name`` (default: the first function defined).  ``inputs``
    must bind every parameter: 1-D numpy arrays become array
    declarations sized and typed from the value; int/float scalars
    become scalar parameters.
    """

    name = "python"
    summary = "real Python for loops over 1-D numpy arrays (ast lifting)"
    suffixes = (".py",)

    def lift(
        self,
        source: object,
        *,
        name: str | None = None,
        inputs: dict | None = None,
    ) -> LiftResult:
        inputs = dict(inputs or {})
        try:
            fn_def, fn_name = _find_function(source, name)
            lifter = _Lifter(fn_name, inputs)
            program, returns = lifter.lift(fn_def)
        except _Reject as reject:
            return LiftResult(
                frontend=self.name,
                decision=LiftDecision(False, reject.reason, reject.detail),
                inputs=inputs,
            )
        return LiftResult(
            frontend=self.name,
            decision=LiftDecision(True),
            program=program,
            source=to_source(program),
            # Only parameter bindings flow through (the lifted program
            # declares exactly the names it uses).
            inputs={name: inputs[name] for name in lifter.params},
            returns=returns,
        )


def _find_function(source: object, name: str | None) -> tuple[ast.FunctionDef, str]:
    if callable(source):
        try:
            text = textwrap.dedent(inspect.getsource(source))
        except (OSError, TypeError) as exc:
            raise _Reject("source-unavailable", str(exc)) from None
        name = name or getattr(source, "__name__", None)
    elif isinstance(source, str):
        text = source
    else:
        raise _Reject(
            "not-a-function",
            f"expected a function or source text, got {type(source).__name__}",
        )
    try:
        module = ast.parse(text)
    except SyntaxError as exc:
        raise _Reject("python-syntax-error", str(exc)) from None
    functions = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if not functions:
        raise _Reject("not-a-function", "no function definition found")
    if name is None:
        return functions[0], functions[0].name
    for fn_def in functions:
        if fn_def.name == name:
            return fn_def, name
    raise _Reject("not-a-function", f"no function named {name!r}")
