"""Sequential interpreter for the mini-Fortran DSL.

This package is the "machine" the paper's Fortran loops run on:

* :mod:`repro.interp.env` — numpy-backed environments (scalars + arrays);
* :mod:`repro.interp.memory` — pluggable memory models, so the speculative
  runtime can reroute accesses to private copies / reduction partials;
* :mod:`repro.interp.events` — access-observation hooks, which is where the
  LRPD shadow marking attaches;
* :mod:`repro.interp.interpreter` — the tree-walking interpreter itself,
  with optional *value-based* (taint-propagating) read marking that
  implements the lazy LPD marking discipline of the paper;
* :mod:`repro.interp.costs` — per-iteration operation counting used by the
  simulated multiprocessor's cost model.
"""

from repro.interp.costs import CostCounter, IterationCost
from repro.interp.env import Environment
from repro.interp.events import AccessObserver, TraceRecorder
from repro.interp.interpreter import Interpreter, find_target_loop
from repro.interp.memory import DirectMemory, MemoryModel

__all__ = [
    "AccessObserver",
    "CostCounter",
    "DirectMemory",
    "Environment",
    "Interpreter",
    "IterationCost",
    "MemoryModel",
    "TraceRecorder",
    "find_target_loop",
]
