"""A closure-compiling execution engine for serial runs.

The tree-walking interpreter (:mod:`repro.interp.interpreter`) pays
dynamic dispatch on every AST node.  For the *serial* executions the
framework performs constantly — the reference oracle, the serial
re-execution after a failed speculation, trace extraction — this module
compiles a program once into nested Python closures: each expression
becomes a function ``rt -> value``, each statement a function
``rt -> None``, composed bottom-up.

Semantics and *operation counting* are bit-identical to the tree walker
(including short-circuit ``and``/``or`` counting only the evaluated
side), which the equivalence property tests enforce.  The engine is
serial-only: no memory routing, no observers, no taint tracking — the
speculative paths keep the instrumented tree walker.
"""

from __future__ import annotations

from typing import Callable

from repro.dsl.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    Expr,
    If,
    Num,
    Program,
    Stmt,
    UnaryOp,
    Var,
    While,
)
from repro.errors import InterpError
from repro.interp.costs import CostCounter
from repro.interp.env import Environment
from repro.interp.interpreter import (
    MAX_WHILE_ITERATIONS,
    _apply_binop,
    _apply_intrinsic,
)


class _Runtime:
    """Execution state handed through the compiled closures."""

    __slots__ = ("scalars", "arrays", "kinds", "sizes", "cost")

    def __init__(self, env: Environment, cost: CostCounter):
        self.scalars = env.scalars
        self.arrays = env.arrays
        self.kinds = env.kinds
        self.sizes = {name: arr.size for name, arr in env.arrays.items()}
        self.cost = cost


ExprFn = Callable[[_Runtime], float | int]
StmtFn = Callable[[_Runtime], None]


class CompiledProgram:
    """A program compiled to closures; reusable across environments."""

    def __init__(self, program: Program):
        self.program = program
        self._stmt_fns: dict[int, StmtFn] = {
            id(stmt): _compile_stmt(stmt) for stmt in program.body
        }
        self._loops: dict[int, tuple[StmtFn, ExprFn, ExprFn, ExprFn | None, str]] = {}
        for stmt in program.body:
            if isinstance(stmt, Do):
                self._loops[id(stmt)] = (
                    _compile_block(stmt.body) if stmt.body else _noop,
                    _compile_expr(stmt.start),
                    _compile_expr(stmt.stop),
                    _compile_expr(stmt.step) if stmt.step is not None else None,
                    stmt.var,
                )

    def run(self, env: Environment, cost: CostCounter | None = None) -> CostCounter:
        """Execute the whole program against ``env``."""
        cost = cost if cost is not None else CostCounter()
        rt = _Runtime(env, cost)
        for stmt in self.program.body:
            self._stmt_fns[id(stmt)](rt)
        return cost

    def run_statements(
        self, stmts: list[Stmt], env: Environment, cost: CostCounter
    ) -> None:
        """Execute a subset of the program's top-level statements."""
        rt = _Runtime(env, cost)
        for stmt in stmts:
            fn = self._stmt_fns.get(id(stmt))
            if fn is None:
                raise InterpError("statement was not compiled with this program")
            fn(rt)

    def run_loop(
        self,
        loop: Do,
        env: Environment,
        cost: CostCounter,
        values: list[int],
    ) -> None:
        """Execute the target loop iteration-by-iteration (cost-bracketed).

        Matches :meth:`Interpreter.exec_iteration` driving: one
        IterationCost per value, loop variable left one step past the
        bound by the caller.
        """
        entry = self._loops.get(id(loop))
        if entry is None:
            raise InterpError("loop was not compiled as part of this program")
        body, _start, _stop, _step, var = entry
        kind = env.kinds.get(var)
        if kind is None:
            raise InterpError(f"undeclared scalar {var!r}")
        as_kind = int if kind == "integer" else float
        scalars = env.scalars
        rt = _Runtime(env, cost)
        for value in values:
            scalars[var] = as_kind(value)
            cost.start_iteration()
            body(rt)
            cost.end_iteration()


def compile_program(program: Program) -> CompiledProgram:
    """Compile ``program`` once; run it many times."""
    return CompiledProgram(program)


# ---------------------------------------------------------------------------
# Statement compilation
# ---------------------------------------------------------------------------


def _compile_block(body: list[Stmt]) -> StmtFn:
    fns = [_compile_stmt(stmt) for stmt in body]
    if len(fns) == 1:
        return fns[0]

    def run_block(rt: _Runtime) -> None:
        for fn in fns:
            fn(rt)

    return run_block


def _compile_stmt(stmt: Stmt) -> StmtFn:
    if isinstance(stmt, Assign):
        return _compile_assign(stmt)
    if isinstance(stmt, If):
        cond = _compile_expr(stmt.cond)
        then_body = _compile_block(stmt.then_body) if stmt.then_body else _noop
        else_body = _compile_block(stmt.else_body) if stmt.else_body else _noop

        def run_if(rt: _Runtime) -> None:
            rt.cost.branches += 1
            if cond(rt) != 0:
                then_body(rt)
            else:
                else_body(rt)

        return run_if
    if isinstance(stmt, Do):
        return _compile_do(stmt)
    if isinstance(stmt, While):
        return _compile_while(stmt)
    raise InterpError(f"cannot compile {type(stmt).__name__}")


def _noop(rt: _Runtime) -> None:
    return None


def _compile_assign(stmt: Assign) -> StmtFn:
    value_fn = _compile_expr(stmt.expr)
    target = stmt.target
    if isinstance(target, Var):
        name = target.name

        def run_scalar_assign(rt: _Runtime) -> None:
            value = value_fn(rt)
            rt.cost.scalar_ops += 1
            kind = rt.kinds.get(name)
            if kind is None:
                raise InterpError(f"undeclared scalar {name!r}")
            rt.scalars[name] = int(value) if kind == "integer" else float(value)

        return run_scalar_assign

    assert isinstance(target, ArrayRef)
    index_fn = _compile_index(target.index)
    array = target.name

    def run_array_assign(rt: _Runtime) -> None:
        offset = index_fn(rt, array)
        value = value_fn(rt)
        rt.cost.mem_writes += 1
        rt.arrays[array][offset] = value

    return run_array_assign


def _compile_do(stmt: Do) -> StmtFn:
    start_fn = _compile_expr(stmt.start)
    stop_fn = _compile_expr(stmt.stop)
    step_fn = _compile_expr(stmt.step) if stmt.step is not None else None
    body = _compile_block(stmt.body) if stmt.body else _noop
    var = stmt.var

    def run_do(rt: _Runtime) -> None:
        start = int(start_fn(rt))
        stop = int(stop_fn(rt))
        step = int(step_fn(rt)) if step_fn is not None else 1
        if step == 0:
            raise InterpError("do loop with zero step")
        kind = rt.kinds.get(var)
        if kind is None:
            raise InterpError(f"undeclared scalar {var!r}")
        as_kind = int if kind == "integer" else float
        scalars = rt.scalars
        value = start
        cost = rt.cost
        while (step > 0 and value <= stop) or (step < 0 and value >= stop):
            scalars[var] = as_kind(value)
            cost.scalar_ops += 1
            body(rt)
            value += step
        scalars[var] = as_kind(value)

    return run_do


def _compile_while(stmt: While) -> StmtFn:
    cond = _compile_expr(stmt.cond)
    body = _compile_block(stmt.body) if stmt.body else _noop

    def run_while(rt: _Runtime) -> None:
        count = 0
        while True:
            rt.cost.branches += 1
            if cond(rt) == 0:
                return
            body(rt)
            count += 1
            if count > MAX_WHILE_ITERATIONS:
                raise InterpError("do while exceeded the iteration safety limit")

    return run_while


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

_FAST_BINOPS: dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "==": lambda a, b: 1 if a == b else 0,
    "/=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
}


def _compile_expr(expr: Expr) -> ExprFn:
    if isinstance(expr, Num):
        value = int(expr.value) if expr.is_int else expr.value
        return lambda rt: value
    if isinstance(expr, Var):
        name = expr.name

        def read_scalar(rt: _Runtime):
            rt.cost.scalar_ops += 1
            try:
                return rt.scalars[name]
            except KeyError:
                raise InterpError(f"undeclared scalar {name!r}") from None

        return read_scalar
    if isinstance(expr, ArrayRef):
        index_fn = _compile_index(expr.index)
        array = expr.name

        def read_array(rt: _Runtime):
            offset = index_fn(rt, array)
            rt.cost.mem_reads += 1
            value = rt.arrays[array][offset]
            return int(value) if rt.kinds[array] == "integer" else float(value)

        return read_array
    if isinstance(expr, BinOp):
        return _compile_binop(expr)
    if isinstance(expr, UnaryOp):
        operand = _compile_expr(expr.operand)
        if expr.op == "-":
            def negate(rt: _Runtime):
                rt.cost.flops += 1
                return -operand(rt)

            return negate

        def logical_not(rt: _Runtime):
            rt.cost.flops += 1
            return 1 if operand(rt) == 0 else 0

        return logical_not
    if isinstance(expr, Call):
        func = expr.func
        arg_fns = [_compile_expr(a) for a in expr.args]

        def call(rt: _Runtime):
            rt.cost.intrinsics += 1
            return _apply_intrinsic(func, [fn(rt) for fn in arg_fns])

        return call
    raise InterpError(f"cannot compile {type(expr).__name__}")


def _compile_binop(expr: BinOp) -> ExprFn:
    op = expr.op
    if op == "and":
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)

        def short_and(rt: _Runtime):
            rt.cost.flops += 1
            if left(rt) == 0:
                return 0
            return 1 if right(rt) != 0 else 0

        return short_and
    if op == "or":
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)

        def short_or(rt: _Runtime):
            rt.cost.flops += 1
            if left(rt) != 0:
                return 1
            return 1 if right(rt) != 0 else 0

        return short_or

    left = _compile_expr(expr.left)
    right = _compile_expr(expr.right)
    fast = _FAST_BINOPS.get(op)
    if fast is not None:
        def run_fast(rt: _Runtime):
            rt.cost.flops += 1
            return fast(left(rt), right(rt))

        return run_fast

    def run_general(rt: _Runtime):  # '/' and '**' share the walker's rules
        rt.cost.flops += 1
        return _apply_binop(op, left(rt), right(rt))

    return run_general


def _compile_index(expr: Expr) -> Callable[[_Runtime, str], int]:
    """Compile a subscript: returns the bounds-checked 0-based offset."""
    index_fn = _compile_expr(expr)

    def compute(rt: _Runtime, array: str) -> int:
        value = index_fn(rt)
        if isinstance(value, float):
            if not value.is_integer():
                raise InterpError(f"non-integral array subscript {value!r}")
            value = int(value)
        size = rt.sizes.get(array)
        if size is None:
            raise InterpError(f"undeclared array {array!r}")
        if not 1 <= value <= size:
            raise InterpError(f"index {value} out of bounds for {array}({size})")
        return value - 1

    return compute
