"""Closure-compiled speculative execution engine.

:mod:`repro.interp.compiled` gives serial runs a ~2x fast path but the
speculative doall — the very path the LRPD test's overhead claims are
about — stayed on the tree walker.  This module compiles the *target
loop body* into closures that carry the full speculative machinery:

* array accesses go through the :class:`~repro.interp.memory.MemoryModel`
  (the :class:`~repro.runtime.access_router.AccessRouter` in a doall), so
  privatization, reduction partials and ``redux_refs`` dispatch behave
  exactly as under the walker;
* tested-array accesses are recorded for shadow marking — but instead of
  one observer call per access, each iteration's accesses are buffered as
  ``(position, kind, index0, opcode)`` tuples and flushed in bulk through
  :meth:`repro.core.shadow.ShadowMarker.flush_batch`;
* value-based (LPD) taint semantics are reproduced bit-for-bit: loads of
  tested arrays produce :class:`~repro.interp.interpreter.Tainted`
  values whose pending reads are reported only where the walker would
  report them (stores, subscripts, branch conditions, loop bounds,
  live-out flushes).  A static *taintable-scalars* fixpoint lets every
  expression that provably never sees a tainted value compile to the
  plain fast closure;
* per-iteration cost bracketing matches the walker's
  :meth:`~repro.interp.interpreter.Interpreter.exec_iteration` exactly,
  including the discarded bracket of an eagerly aborted iteration.

Simulated costs, shadow state and LRPD outcomes are bit-identical to the
tree walker (property-tested).  The one *latency* difference: eager
failure detection fires at iteration granularity (at flush time) instead
of per access — the aborted attempt, its shadow state and the raised
element are still identical, because a failing flush falls back to a
scalar replay of the buffered stream.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.privatize import PrivateCopies
from repro.core.reduction_exec import REDUCTION_IDENTITY, ReductionPartials
from repro.core.shadow import KIND_READ, KIND_REDUX, KIND_WRITE, OP_CODES, ShadowMarker
from repro.dsl.ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    Expr,
    If,
    Num,
    Program,
    Stmt,
    UnaryOp,
    Var,
    While,
    walk_statements,
)
from repro.errors import InterpError
from repro.interp.compiled import _FAST_BINOPS
from repro.interp.costs import CostCounter
from repro.interp.env import Environment
from repro.interp.interpreter import (
    MAX_WHILE_ITERATIONS,
    Tainted,
    _apply_binop,
    _apply_intrinsic,
)
from repro.interp.memory import MemoryModel


class _SpecRuntime:
    """Per-processor execution state threaded through the closures."""

    __slots__ = ("scalars", "memory", "cost", "taints", "buffers", "pos", "proc", "iteration")

    def __init__(
        self,
        env: Environment,
        memory: MemoryModel,
        cost: CostCounter,
        tested: Iterable[str],
        proc: int = 0,
    ):
        self.scalars = env.scalars
        self.memory = memory
        self.cost = cost
        #: the virtual processor this runtime belongs to (fixed), and the
        #: current iteration position (the private write stamp).
        self.proc = proc
        self.iteration = 0
        #: pending taints held by scalar variables (value-based mode).
        self.taints: dict[str, frozenset[tuple[str, int]]] = {}
        #: per tested array: buffered (position, kind, index0, opcode).
        self.buffers: dict[str, list[tuple[int, int, int, int]]] = {
            name: [] for name in sorted(tested)
        }
        #: next global stream position (strictly increasing across arrays).
        self.pos = 0


ExprFn = Callable[[_SpecRuntime], object]
StmtFn = Callable[[_SpecRuntime], None]


def _noop(rt: _SpecRuntime) -> None:
    return None


class CompiledSpecLoop:
    """One target loop compiled for marked/routed doall execution."""

    def __init__(
        self,
        program: Program,
        loop: Do,
        *,
        tested: Iterable[str] = (),
        value_based: bool = True,
        redux_refs: Mapping[int, str] | None = None,
        privates: Mapping[str, PrivateCopies] | None = None,
        partials: Mapping[str, ReductionPartials] | None = None,
        shared_env: Environment | None = None,
    ):
        """``privates``/``partials``/``shared_env`` optionally fix each
        reference site's memory route at compile time — they must be the
        very structures the doall's :class:`AccessRouter` dispatches over.
        Routed sites then bind those structures directly (private rows,
        partial maps, shared ndarrays) with inline bounds checks, skipping
        the router's per-access dispatch entirely.  Omit them to stay on
        the generic :class:`~repro.interp.memory.MemoryModel` surface of
        the runtime's ``memory``.
        """
        compiler = _SpecCompiler(
            program, tested, value_based, redux_refs,
            privates=privates, partials=partials, shared_env=shared_env,
        )
        compiler.taintable = compiler.compute_taintable(loop.body)
        self.loop = loop
        self.var = loop.var
        self.tested = compiler.tested
        #: scalars that may carry pending reads (diagnostic/testing aid).
        self.taintable_scalars = compiler.taintable
        kind = compiler.kinds.get(loop.var)
        self._as_kind = None if kind is None else (int if kind == "integer" else float)
        self._body = compiler.compile_block(loop.body) if loop.body else _noop

    def new_runtime(
        self,
        env: Environment,
        memory: MemoryModel,
        cost: CostCounter | None = None,
        proc: int = 0,
    ) -> _SpecRuntime:
        return _SpecRuntime(
            env, memory, cost if cost is not None else CostCounter(), self.tested,
            proc=proc,
        )

    def run_iteration(
        self,
        rt: _SpecRuntime,
        marker: ShadowMarker | None,
        iteration_value: int,
        flush_live_out: Iterable[str] = (),
    ) -> None:
        """Execute one iteration; mirrors ``Interpreter.exec_iteration``.

        The buffered marks are flushed (and charged) inside the cost
        bracket; a :class:`~repro.errors.SpeculationFailed` raised by the
        flush leaves the bracket open, so the aborted iteration's costs
        are discarded exactly as under the per-access walker.
        """
        if self._as_kind is None:
            raise InterpError(f"undeclared scalar {self.var!r}")
        rt.scalars[self.var] = self._as_kind(iteration_value)
        cost = rt.cost
        cost.start_iteration()
        self._body(rt)
        if flush_live_out:
            held = rt.taints
            if held:
                buffers = rt.buffers
                pos = rt.pos
                for name in flush_live_out:
                    taints = held.pop(name, None)
                    if taints:
                        for array, index in taints:
                            buffers[array].append((pos, KIND_READ, index - 1, 0))
                            pos += 1
                rt.pos = pos
        if marker is not None:
            try:
                marker.flush_batch(rt.buffers)
            finally:
                for buf in rt.buffers.values():
                    buf.clear()
                rt.pos = 0
        cost.end_iteration()
        rt.taints.clear()


class _SpecCompiler:
    """Compiles loop-body statements into speculative closures."""

    def __init__(
        self,
        program: Program,
        tested: Iterable[str],
        value_based: bool,
        redux_refs: Mapping[int, str] | None,
        *,
        privates: Mapping[str, PrivateCopies] | None = None,
        partials: Mapping[str, ReductionPartials] | None = None,
        shared_env: Environment | None = None,
    ):
        self.tested = frozenset(tested)
        self.redux_refs = dict(redux_refs or {})
        self.value_based = bool(value_based) and bool(self.tested)
        self.kinds = {decl.name: decl.kind for decl in program.decls}
        self.sizes = {
            decl.name: decl.size
            for decl in program.decls
            if isinstance(decl, ArrayDecl)
        }
        self.taintable: frozenset[str] = frozenset()
        self.privates = privates if shared_env is not None else None
        self.partials: Mapping[str, ReductionPartials] = partials or {}
        self.shared_env = shared_env

    def _route(self, name: str, ref_id: int) -> str:
        """The site's static memory route, mirroring the router's dispatch."""
        if self.privates is None:
            return "generic"
        if self.redux_refs.get(ref_id) is not None and name in self.partials:
            return "partial"
        if name in self.privates:
            return "private"
        return "shared"

    def _as_kind(self, name: str):
        return int if self.kinds.get(name) == "integer" else float

    # -- taintable-scalars fixpoint ----------------------------------------

    def compute_taintable(self, body: list[Stmt]) -> frozenset[str]:
        """Scalars that may ever hold a pending-read taint.

        A scalar is taintable iff some assignment gives it an expression
        that can evaluate to a Tainted value: a tested non-reduction array
        load, or a read of an already-taintable scalar, propagated through
        arithmetic (but not through ``and``/``or``, whose operands are
        flushed).  Everything outside this set compiles to taint-free fast
        closures.
        """
        if not self.value_based:
            return frozenset()
        scalar_assigns = [
            stmt
            for stmt in walk_statements(body)
            if isinstance(stmt, Assign) and isinstance(stmt.target, Var)
        ]
        taintable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for stmt in scalar_assigns:
                if stmt.target.name in taintable:
                    continue
                if self._expr_may_taint(stmt.expr, taintable):
                    taintable.add(stmt.target.name)
                    changed = True
        return frozenset(taintable)

    def _expr_may_taint(self, expr: Expr, taintable: set[str] | frozenset[str]) -> bool:
        if isinstance(expr, Num):
            return False
        if isinstance(expr, Var):
            return expr.name in taintable
        if isinstance(expr, ArrayRef):
            # The loaded value (not the subscript) decides taintedness:
            # subscripts are flushed, and only tested non-reduction loads
            # produce Tainted values.
            return (
                expr.name in self.tested
                and self.redux_refs.get(expr.ref_id) is None
            )
        if isinstance(expr, BinOp):
            if expr.op in ("and", "or"):
                return False
            return self._expr_may_taint(expr.left, taintable) or self._expr_may_taint(
                expr.right, taintable
            )
        if isinstance(expr, UnaryOp):
            return self._expr_may_taint(expr.operand, taintable)
        if isinstance(expr, Call):
            return any(self._expr_may_taint(arg, taintable) for arg in expr.args)
        return False

    def may_taint(self, expr: Expr) -> bool:
        return self.value_based and self._expr_may_taint(expr, self.taintable)

    # -- statements --------------------------------------------------------

    def compile_block(self, body: list[Stmt]) -> StmtFn:
        fns = [self.compile_stmt(stmt) for stmt in body]
        if len(fns) == 1:
            return fns[0]

        def run_block(rt: _SpecRuntime) -> None:
            for fn in fns:
                fn(rt)

        return run_block

    def compile_stmt(self, stmt: Stmt) -> StmtFn:
        if isinstance(stmt, Assign):
            return self._compile_assign(stmt)
        if isinstance(stmt, If):
            cond = self.compile_flushed(stmt.cond)
            then_body = self.compile_block(stmt.then_body) if stmt.then_body else _noop
            else_body = self.compile_block(stmt.else_body) if stmt.else_body else _noop

            def run_if(rt: _SpecRuntime) -> None:
                rt.cost.branches += 1
                if cond(rt) != 0:
                    then_body(rt)
                else:
                    else_body(rt)

            return run_if
        if isinstance(stmt, Do):
            return self._compile_do(stmt)
        if isinstance(stmt, While):
            return self._compile_while(stmt)
        raise InterpError(f"cannot compile {type(stmt).__name__}")

    def _compile_assign(self, stmt: Assign) -> StmtFn:
        target = stmt.target
        if isinstance(target, Var):
            return self._compile_scalar_assign(target.name, stmt.expr)

        assert isinstance(target, ArrayRef)
        index_fn = self.compile_index(target.index)
        value_fn = self.compile_flushed(stmt.expr)
        name = target.name
        ref_id = target.ref_id
        store_fn = self._make_store(name, ref_id)
        if name in self.tested:
            op = self.redux_refs.get(ref_id)
            kind, opcode = (
                (KIND_WRITE, 0) if op is None else (KIND_REDUX, OP_CODES[op])
            )

            def store_marked(rt: _SpecRuntime) -> None:
                index = index_fn(rt)
                value = value_fn(rt)
                rt.cost.mem_writes += 1
                store_fn(rt, index, value)
                rt.buffers[name].append((rt.pos, kind, index - 1, opcode))
                rt.pos += 1

            return store_marked

        def store_plain(rt: _SpecRuntime) -> None:
            index = index_fn(rt)
            value = value_fn(rt)
            rt.cost.mem_writes += 1
            store_fn(rt, index, value)

        return store_plain

    # -- routed raw accesses -------------------------------------------------
    # ``_make_load``/``_make_store`` bind each site's memory structures at
    # compile time (the transform plan fixes the route): private rows,
    # partial maps or the shared ndarray, with the bounds check inlined
    # against the declared size.  Value semantics are the router's exactly
    # — same bounds error, same kind coercions, same write stamps.

    def _make_load(self, name: str, ref_id: int) -> Callable[[_SpecRuntime, int], object]:
        route = self._route(name, ref_id)
        if route == "generic":

            def load_generic(rt: _SpecRuntime, index: int):
                return rt.memory.load(name, index, ref_id)

            return load_generic
        size = self.sizes[name]
        oob = f"index {{0}} out of bounds for {name}({size})"
        if route == "partial":
            op = self.redux_refs[ref_id]
            identity = REDUCTION_IDENTITY[op]
            maps = self.partials[name].proc_maps()

            def load_partial(rt: _SpecRuntime, index: int):
                if not 1 <= index <= size:
                    raise InterpError(oob.format(index))
                entry = maps[rt.proc].get(index - 1)
                if entry is None:
                    return identity
                return entry[1]

            return load_partial
        if route == "private":
            mirror = self.privates[name].value_rows()

            def load_private(rt: _SpecRuntime, index: int):
                if not 1 <= index <= size:
                    raise InterpError(oob.format(index))
                return mirror[rt.proc][index - 1]

            return load_private
        arr = self.shared_env.arrays[name]
        cast = self._as_kind(name)

        def load_shared(rt: _SpecRuntime, index: int):
            if not 1 <= index <= size:
                raise InterpError(oob.format(index))
            return cast(arr[index - 1])

        return load_shared

    def _make_store(
        self, name: str, ref_id: int
    ) -> Callable[[_SpecRuntime, int, object], None]:
        route = self._route(name, ref_id)
        if route == "generic":

            def store_generic(rt: _SpecRuntime, index: int, value) -> None:
                rt.memory.store(name, index, value, ref_id)

            return store_generic
        size = self.sizes[name]
        oob = f"index {{0}} out of bounds for {name}({size})"
        if route == "partial":
            op = self.redux_refs[ref_id]
            maps = self.partials[name].proc_maps()

            def store_partial(rt: _SpecRuntime, index: int, value) -> None:
                if not 1 <= index <= size:
                    raise InterpError(oob.format(index))
                maps[rt.proc][index - 1] = (op, value)

            return store_partial
        if route == "private":
            copies = self.privates[name]
            data_rows = list(copies.data)
            stamp_rows = list(copies.wstamp)
            mirror = copies.value_rows()
            cast = self._as_kind(name)

            def store_private(rt: _SpecRuntime, index: int, value) -> None:
                if not 1 <= index <= size:
                    raise InterpError(oob.format(index))
                offset = index - 1
                proc = rt.proc
                data_rows[proc][offset] = value
                stamp_rows[proc][offset] = rt.iteration
                mirror[proc][offset] = cast(value)

            return store_private
        arr = self.shared_env.arrays[name]
        cast = self._as_kind(name)

        def store_shared(rt: _SpecRuntime, index: int, value) -> None:
            if not 1 <= index <= size:
                raise InterpError(oob.format(index))
            arr[index - 1] = cast(value)

        return store_shared

    def _compile_scalar_assign(self, name: str, expr: Expr) -> StmtFn:
        value_fn = self.compile_expr(expr)
        kind = self.kinds.get(name)
        if kind is None:

            def assign_undeclared(rt: _SpecRuntime) -> None:
                value_fn(rt)
                rt.cost.scalar_ops += 1
                raise InterpError(f"undeclared scalar {name!r}")

            return assign_undeclared
        as_kind = int if kind == "integer" else float
        if self.may_taint(expr):

            def assign_tainted(rt: _SpecRuntime) -> None:
                value = value_fn(rt)
                rt.cost.scalar_ops += 1
                if type(value) is Tainted:
                    rt.scalars[name] = as_kind(value.value)
                    if value.taints:
                        rt.taints[name] = value.taints
                    else:
                        rt.taints.pop(name, None)
                else:
                    rt.scalars[name] = as_kind(value)
                    rt.taints.pop(name, None)

            return assign_tainted
        if name in self.taintable:
            # Another assignment may have tainted this scalar earlier in
            # the iteration: a raw overwrite drops the pending reads.

            def assign_clearing(rt: _SpecRuntime) -> None:
                value = value_fn(rt)
                rt.cost.scalar_ops += 1
                rt.scalars[name] = as_kind(value)
                rt.taints.pop(name, None)

            return assign_clearing

        def assign_fast(rt: _SpecRuntime) -> None:
            value = value_fn(rt)
            rt.cost.scalar_ops += 1
            rt.scalars[name] = as_kind(value)

        return assign_fast

    def _compile_do(self, stmt: Do) -> StmtFn:
        start_fn = self.compile_flushed(stmt.start)
        stop_fn = self.compile_flushed(stmt.stop)
        step_fn = self.compile_flushed(stmt.step) if stmt.step is not None else None
        body = self.compile_block(stmt.body) if stmt.body else _noop
        var = stmt.var
        kind = self.kinds.get(var)
        as_kind = None if kind is None else (int if kind == "integer" else float)

        def run_do(rt: _SpecRuntime) -> None:
            start = int(start_fn(rt))
            stop = int(stop_fn(rt))
            step = int(step_fn(rt)) if step_fn is not None else 1
            if step == 0:
                raise InterpError("do loop with zero step")
            if as_kind is None:
                raise InterpError(f"undeclared scalar {var!r}")
            scalars = rt.scalars
            cost = rt.cost
            value = start
            while (step > 0 and value <= stop) or (step < 0 and value >= stop):
                scalars[var] = as_kind(value)
                cost.scalar_ops += 1
                body(rt)
                value += step
            # Fortran leaves the loop variable one step past the bound.
            # Note: like the walker, this does NOT clear a pending taint
            # held by the loop variable.
            scalars[var] = as_kind(value)

        return run_do

    def _compile_while(self, stmt: While) -> StmtFn:
        cond = self.compile_flushed(stmt.cond)
        body = self.compile_block(stmt.body) if stmt.body else _noop

        def run_while(rt: _SpecRuntime) -> None:
            count = 0
            while True:
                rt.cost.branches += 1
                if cond(rt) == 0:
                    return
                body(rt)
                count += 1
                if count > MAX_WHILE_ITERATIONS:
                    raise InterpError("do while exceeded the iteration safety limit")

        return run_while

    # -- expressions -------------------------------------------------------

    def compile_flushed(self, expr: Expr) -> ExprFn:
        """Compile an escape position: pending reads are reported here."""
        if (
            self.value_based
            and isinstance(expr, ArrayRef)
            and expr.name in self.tested
            and self.redux_refs.get(expr.ref_id) is None
        ):
            # Singleton peephole: a bare tested load whose value escapes
            # right here never taints anything downstream, so the pending
            # read is reported immediately — no Tainted round trip.  The
            # mark position is the walker's exactly: its flush of the
            # singleton taint set follows the load with nothing between.
            return self._compile_marked_load(expr)
        fn = self.compile_expr(expr)
        if not self.may_taint(expr):
            return fn

        def flushed(rt: _SpecRuntime):
            value = fn(rt)
            if type(value) is Tainted:
                pos = rt.pos
                buffers = rt.buffers
                for array, index in value.taints:
                    buffers[array].append((pos, KIND_READ, index - 1, 0))
                    pos += 1
                rt.pos = pos
                return value.value
            return value

        return flushed

    def compile_index(self, expr: Expr) -> ExprFn:
        """Compile a subscript: flushed, integral, still 1-based."""
        fn = self.compile_flushed(expr)
        if self._is_integral(expr):
            # Statically integer-valued: the float coercion (which is the
            # identity on ints) can be skipped entirely.
            return fn

        def as_index(rt: _SpecRuntime):
            value = fn(rt)
            if isinstance(value, float):
                if not value.is_integer():
                    raise InterpError(f"non-integral array subscript {value!r}")
                return int(value)
            return value

        return as_index

    def _is_integral(self, expr: Expr) -> bool:
        """The expression provably evaluates to a Python int.

        Integer scalars and integer-kind array elements stay ints under
        the walker's numeric rules (``/`` is Fortran integer division,
        comparisons and logicals yield 0/1); ``**`` is excluded because a
        negative exponent goes float at run time.
        """
        if isinstance(expr, Num):
            return expr.is_int
        if isinstance(expr, (Var, ArrayRef)):
            return self.kinds.get(expr.name) == "integer"
        if isinstance(expr, BinOp):
            if expr.op in ("==", "/=", "<", "<=", ">", ">=", "and", "or"):
                return True
            if expr.op in ("+", "-", "*", "/"):
                return self._is_integral(expr.left) and self._is_integral(expr.right)
            return False
        if isinstance(expr, UnaryOp):
            return expr.op == "not" or self._is_integral(expr.operand)
        return False

    def compile_expr(self, expr: Expr) -> ExprFn:
        if isinstance(expr, Num):
            value = int(expr.value) if expr.is_int else expr.value
            return lambda rt: value
        if isinstance(expr, Var):
            return self._compile_var(expr.name)
        if isinstance(expr, ArrayRef):
            return self._compile_load(expr)
        if isinstance(expr, BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, UnaryOp):
            return self._compile_unary(expr)
        if isinstance(expr, Call):
            return self._compile_call(expr)
        raise InterpError(f"cannot compile {type(expr).__name__}")

    def _compile_var(self, name: str) -> ExprFn:
        if name in self.taintable:

            def read_taintable(rt: _SpecRuntime):
                rt.cost.scalar_ops += 1
                try:
                    value = rt.scalars[name]
                except KeyError:
                    raise InterpError(f"undeclared scalar {name!r}") from None
                taints = rt.taints.get(name)
                if taints:
                    return Tainted(value, taints)
                return value

            return read_taintable

        def read_scalar(rt: _SpecRuntime):
            rt.cost.scalar_ops += 1
            try:
                return rt.scalars[name]
            except KeyError:
                raise InterpError(f"undeclared scalar {name!r}") from None

        return read_scalar

    def _compile_load(self, ref: ArrayRef) -> ExprFn:
        index_fn = self.compile_index(ref.index)
        name = ref.name
        ref_id = ref.ref_id
        route = self._route(name, ref_id)
        if name in self.tested:
            op = self.redux_refs.get(ref_id)
            if op is not None:
                opcode = OP_CODES[op]
                load_fn = self._make_load(name, ref_id)

                def load_redux(rt: _SpecRuntime):
                    index = index_fn(rt)
                    rt.cost.mem_reads += 1
                    value = load_fn(rt, index)
                    rt.buffers[name].append((rt.pos, KIND_REDUX, index - 1, opcode))
                    rt.pos += 1
                    return value

                return load_redux
            if self.value_based:
                if route == "private":
                    size = self.sizes[name]
                    mirror = self.privates[name].value_rows()

                    def load_tainted_private(rt: _SpecRuntime):
                        index = index_fn(rt)
                        rt.cost.mem_reads += 1
                        if not 1 <= index <= size:
                            raise InterpError(
                                f"index {index} out of bounds for {name}({size})"
                            )
                        return Tainted(
                            mirror[rt.proc][index - 1],
                            frozenset(((name, index),)),
                        )

                    return load_tainted_private
                load_fn = self._make_load(name, ref_id)

                def load_tainted(rt: _SpecRuntime):
                    index = index_fn(rt)
                    rt.cost.mem_reads += 1
                    return Tainted(load_fn(rt, index), frozenset(((name, index),)))

                return load_tainted
            return self._compile_marked_load(ref, index_fn)
        if route == "shared":
            size = self.sizes[name]
            arr = self.shared_env.arrays[name]
            cast = self._as_kind(name)

            def load_plain_shared(rt: _SpecRuntime):
                index = index_fn(rt)
                rt.cost.mem_reads += 1
                if not 1 <= index <= size:
                    raise InterpError(f"index {index} out of bounds for {name}({size})")
                return cast(arr[index - 1])

            return load_plain_shared
        load_fn = self._make_load(name, ref_id)

        def load_plain(rt: _SpecRuntime):
            index = index_fn(rt)
            rt.cost.mem_reads += 1
            return load_fn(rt, index)

        return load_plain

    def _compile_marked_load(self, ref: ArrayRef, index_fn: ExprFn | None = None) -> ExprFn:
        """A tested non-reduction load whose pending read is reported at
        the load itself (reference-based marking, or the value-based
        singleton peephole)."""
        if index_fn is None:
            index_fn = self.compile_index(ref.index)
        name = ref.name
        ref_id = ref.ref_id
        if self._route(name, ref_id) == "private":
            size = self.sizes[name]
            mirror = self.privates[name].value_rows()

            def load_marked_private(rt: _SpecRuntime):
                index = index_fn(rt)
                rt.cost.mem_reads += 1
                if not 1 <= index <= size:
                    raise InterpError(f"index {index} out of bounds for {name}({size})")
                value = mirror[rt.proc][index - 1]
                rt.buffers[name].append((rt.pos, KIND_READ, index - 1, 0))
                rt.pos += 1
                return value

            return load_marked_private
        load_fn = self._make_load(name, ref_id)

        def load_marked(rt: _SpecRuntime):
            index = index_fn(rt)
            rt.cost.mem_reads += 1
            value = load_fn(rt, index)
            rt.buffers[name].append((rt.pos, KIND_READ, index - 1, 0))
            rt.pos += 1
            return value

        return load_marked

    def _compile_binop(self, expr: BinOp) -> ExprFn:
        op = expr.op
        if op == "and":
            left = self.compile_flushed(expr.left)
            right = self.compile_flushed(expr.right)

            def short_and(rt: _SpecRuntime):
                rt.cost.flops += 1
                if left(rt) == 0:
                    return 0
                return 1 if right(rt) != 0 else 0

            return short_and
        if op == "or":
            left = self.compile_flushed(expr.left)
            right = self.compile_flushed(expr.right)

            def short_or(rt: _SpecRuntime):
                rt.cost.flops += 1
                if left(rt) != 0:
                    return 1
                return 1 if right(rt) != 0 else 0

            return short_or

        left_fn = self.compile_expr(expr.left)
        right_fn = self.compile_expr(expr.right)
        fast = _FAST_BINOPS.get(op)
        if fast is None:

            def apply_op(a, b, _op=op):  # '/' and '**' share the walker's rules
                return _apply_binop(_op, a, b)

        else:
            apply_op = fast
        if not (self.may_taint(expr.left) or self.may_taint(expr.right)):

            def run_fast(rt: _SpecRuntime):
                rt.cost.flops += 1
                return apply_op(left_fn(rt), right_fn(rt))

            return run_fast

        def run_tainted(rt: _SpecRuntime):
            rt.cost.flops += 1
            left = left_fn(rt)
            right = right_fn(rt)
            left_t = type(left) is Tainted
            right_t = type(right) is Tainted
            if not (left_t or right_t):
                return apply_op(left, right)
            result = apply_op(
                left.value if left_t else left,
                right.value if right_t else right,
            )
            # Reuse a lone operand's taint set: equal frozensets iterate
            # identically, so the eventual flush order is unchanged.
            if left_t:
                taints = left.taints | right.taints if right_t else left.taints
            else:
                taints = right.taints
            if taints:
                return Tainted(result, taints)
            return result

        return run_tainted

    def _compile_unary(self, expr: UnaryOp) -> ExprFn:
        operand = self.compile_expr(expr.operand)
        negate = expr.op != "not"
        if not self.may_taint(expr.operand):
            if negate:

                def run_negate(rt: _SpecRuntime):
                    rt.cost.flops += 1
                    return -operand(rt)

                return run_negate

            def run_not(rt: _SpecRuntime):
                rt.cost.flops += 1
                return 1 if operand(rt) == 0 else 0

            return run_not

        def run_tainted(rt: _SpecRuntime):
            rt.cost.flops += 1
            value = operand(rt)
            tainted = type(value) is Tainted
            raw = value.value if tainted else value
            result = -raw if negate else (1 if raw == 0 else 0)
            if tainted and value.taints:
                return Tainted(result, value.taints)
            return result

        return run_tainted

    def _compile_call(self, expr: Call) -> ExprFn:
        func = expr.func
        arg_fns = [self.compile_expr(arg) for arg in expr.args]
        if not any(self.may_taint(arg) for arg in expr.args):

            def run_fast(rt: _SpecRuntime):
                rt.cost.intrinsics += 1
                return _apply_intrinsic(func, [fn(rt) for fn in arg_fns])

            return run_fast

        def run_tainted(rt: _SpecRuntime):
            rt.cost.intrinsics += 1
            values = [fn(rt) for fn in arg_fns]
            raws = [v.value if type(v) is Tainted else v for v in values]
            result = _apply_intrinsic(func, raws)
            taints: frozenset[tuple[str, int]] = frozenset()
            for value in values:
                if type(value) is Tainted:
                    taints |= value.taints
            if taints:
                return Tainted(result, taints)
            return result

        return run_tainted
