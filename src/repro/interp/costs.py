"""Operation counting for the simulated machine's cost model.

The interpreter increments category counters as it executes; the executor
brackets each loop iteration with :meth:`CostCounter.start_iteration` /
:meth:`CostCounter.end_iteration`, producing one :class:`IterationCost`
per iteration.  The simulated multiprocessor (:mod:`repro.machine`)
converts these counts into cycles and schedules them onto processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Counter categories, fixed so IterationCost can be a plain tuple-like.
CATEGORIES = (
    "flops",        # arithmetic / comparison / logical operations
    "mem_reads",    # array element loads
    "mem_writes",   # array element stores
    "scalar_ops",   # scalar variable reads/writes
    "intrinsics",   # intrinsic function calls
    "branches",     # if / while condition evaluations
    "marks",        # shadow-array marking operations (set by the runtime)
)


@dataclass(frozen=True)
class IterationCost:
    """Operation counts attributed to a single loop iteration."""

    flops: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    scalar_ops: int = 0
    intrinsics: int = 0
    branches: int = 0
    marks: int = 0

    def total_ops(self) -> int:
        """Total operation count (unweighted)."""
        return (
            self.flops
            + self.mem_reads
            + self.mem_writes
            + self.scalar_ops
            + self.intrinsics
            + self.branches
            + self.marks
        )

    def without_marks(self) -> "IterationCost":
        """The same iteration with marking overhead removed."""
        return IterationCost(
            flops=self.flops,
            mem_reads=self.mem_reads,
            mem_writes=self.mem_writes,
            scalar_ops=self.scalar_ops,
            intrinsics=self.intrinsics,
            branches=self.branches,
            marks=0,
        )

    def __add__(self, other: "IterationCost") -> "IterationCost":
        return IterationCost(
            flops=self.flops + other.flops,
            mem_reads=self.mem_reads + other.mem_reads,
            mem_writes=self.mem_writes + other.mem_writes,
            scalar_ops=self.scalar_ops + other.scalar_ops,
            intrinsics=self.intrinsics + other.intrinsics,
            branches=self.branches + other.branches,
            marks=self.marks + other.marks,
        )


@dataclass
class CostCounter:
    """Mutable operation counters, with iteration bracketing.

    All counters are plain ints mutated by the interpreter's hot path;
    iteration boundaries snapshot the deltas.
    """

    flops: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    scalar_ops: int = 0
    intrinsics: int = 0
    branches: int = 0
    marks: int = 0
    iteration_costs: list[IterationCost] = field(default_factory=list)
    _iter_base: tuple[int, ...] | None = None

    def _snapshot(self) -> tuple[int, ...]:
        return (
            self.flops,
            self.mem_reads,
            self.mem_writes,
            self.scalar_ops,
            self.intrinsics,
            self.branches,
            self.marks,
        )

    def start_iteration(self) -> None:
        """Begin attributing subsequent counts to a new iteration."""
        self._iter_base = self._snapshot()

    def end_iteration(self) -> IterationCost:
        """Close the current iteration and record its cost delta."""
        if self._iter_base is None:
            raise RuntimeError("end_iteration() without start_iteration()")
        now = self._snapshot()
        delta = IterationCost(*(b - a for a, b in zip(self._iter_base, now)))
        self.iteration_costs.append(delta)
        self._iter_base = None
        return delta

    def total(self) -> IterationCost:
        """All counts accumulated so far, as an immutable record."""
        return IterationCost(*self._snapshot())
