"""Execution environments: scalar and array storage for DSL programs.

Arrays are 1-based (Fortran style) and backed by numpy; the environment
translates to 0-based storage and bounds-checks every access.  Integer
variables hold Python ints, reals hold Python floats; assignment converts
to the declared kind (Fortran assignment semantics: real→integer truncates
toward zero).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

import numpy as np

from repro.dsl.ast_nodes import ArrayDecl, Program, ScalarDecl
from repro.errors import InterpError

_DTYPES = {"real": np.float64, "integer": np.int64}


class Environment:
    """Storage for one program execution.

    Scalars live in :attr:`scalars` (name → int | float); arrays live in
    :attr:`arrays` (name → numpy array).  ``kinds`` maps every declared
    name to ``'real'`` or ``'integer'``.
    """

    def __init__(self, program: Program, inputs: Mapping[str, object] | None = None):
        self.scalars: dict[str, float | int] = {}
        self.arrays: dict[str, np.ndarray] = {}
        self.kinds: dict[str, str] = {}
        self._sizes: dict[str, int] = {}
        #: per-array mutation counters (bumped by every mutating method)
        #: and the content-digest memo they invalidate — see
        #: :meth:`content_digest`.
        self._versions: dict[str, int] = {}
        self._digest_memo: dict[str, tuple[tuple, bytes]] = {}

        self._dims: dict[str, tuple[int, ...]] = {}
        for decl in program.decls:
            self.kinds[decl.name] = decl.kind
            if isinstance(decl, ArrayDecl):
                self.arrays[decl.name] = np.zeros(decl.size, dtype=_DTYPES[decl.kind])
                self._sizes[decl.name] = decl.size
                self._dims[decl.name] = decl.dims
            else:
                assert isinstance(decl, ScalarDecl)
                self.scalars[decl.name] = 0 if decl.kind == "integer" else 0.0

        if inputs:
            for name, value in inputs.items():
                self.set_input(name, value)

    # -- initialization ---------------------------------------------------

    def set_input(self, name: str, value: object) -> None:
        """Initialize a declared scalar or array from a Python value.

        Multi-dimensional arrays accept numpy inputs of the declared
        shape; storage is column-major (Fortran order), matching the
        parse-time subscript linearization.
        """
        if name in self.arrays:
            data = np.asarray(value)
            target = self.arrays[name]
            dims = self._dims.get(name, target.shape)
            if data.ndim > 1:
                if data.shape != dims:
                    raise InterpError(
                        f"input for array {name!r} has shape {data.shape}, "
                        f"declared {dims}"
                    )
                data = data.flatten(order="F")
            if data.shape != target.shape:
                raise InterpError(
                    f"input for array {name!r} has shape {data.shape}, "
                    f"declared {target.shape}"
                )
            target[:] = data  # copies + converts dtype
            self.bump_version(name)
        elif name in self.scalars:
            if self.kinds[name] == "integer":
                self.scalars[name] = int(value)  # type: ignore[arg-type]
            else:
                self.scalars[name] = float(value)  # type: ignore[arg-type]
        else:
            raise InterpError(f"input {name!r} is not declared in the program")

    # -- scalar access ----------------------------------------------------

    def get_scalar(self, name: str) -> float | int:
        try:
            return self.scalars[name]
        except KeyError:
            raise InterpError(f"undeclared scalar {name!r}") from None

    def set_scalar(self, name: str, value: float | int) -> None:
        kind = self.kinds.get(name)
        if kind is None:
            raise InterpError(f"undeclared scalar {name!r}")
        if kind == "integer":
            self.scalars[name] = int(value)
        else:
            self.scalars[name] = float(value)

    # -- array access -----------------------------------------------------

    def array_shaped(self, name: str) -> np.ndarray:
        """The array viewed in its declared shape (Fortran order)."""
        dims = self._dims.get(name)
        if dims is None:
            raise InterpError(f"undeclared array {name!r}")
        return self.arrays[name].reshape(dims, order="F")

    def array_size(self, name: str) -> int:
        try:
            return self._sizes[name]
        except KeyError:
            raise InterpError(f"undeclared array {name!r}") from None

    def check_index(self, name: str, index: int) -> int:
        """Validate a 1-based index; return the 0-based offset."""
        size = self.array_size(name)
        if not 1 <= index <= size:
            raise InterpError(
                f"index {index} out of bounds for {name}({size})"
            )
        return index - 1

    def load(self, name: str, index: int) -> float | int:
        """Read ``name(index)`` (1-based)."""
        offset = self.check_index(name, index)
        value = self.arrays[name][offset]
        return int(value) if self.kinds[name] == "integer" else float(value)

    def store(self, name: str, index: int, value: float | int) -> None:
        """Write ``name(index) = value`` (1-based, kind-converting)."""
        offset = self.check_index(name, index)
        if self.kinds[name] == "integer":
            self.arrays[name][offset] = int(value)
        else:
            self.arrays[name][offset] = float(value)
        self.bump_version(name)

    # -- content digests ----------------------------------------------------

    def bump_version(self, name: str) -> None:
        """Invalidate ``name``'s memoized content digest.

        Every mutating :class:`Environment` method calls this; code that
        writes ``env.arrays[...]`` directly only ever touches arrays the
        loop writes, which are never pattern-signature inputs (the
        signature is disabled for loop-written address arrays), so the
        memo stays sound.
        """
        self._versions[name] = self._versions.get(name, 0) + 1

    def content_digest(self, name: str) -> bytes:
        """SHA-256 of ``name``'s contents, memoized on a cheap pre-key.

        The pre-key is (data pointer, shape, dtype, mutation version): a
        repeated pattern-signature computation over an unchanged array —
        the schedule-reuse hot path — skips re-reading the contents
        entirely, and the hash itself reads the buffer in place instead
        of paying a ``tobytes()`` copy.
        """
        arr = self.arrays[name]
        key = (
            arr.__array_interface__["data"][0],
            arr.shape,
            arr.dtype.str,
            self._versions.get(name, 0),
        )
        memo = self._digest_memo.get(name)
        if memo is not None and memo[0] == key:
            return memo[1]
        data = arr if arr.flags["C_CONTIGUOUS"] else np.ascontiguousarray(arr)
        digest = hashlib.sha256(data).digest()
        self._digest_memo[name] = (key, digest)
        return digest

    # -- snapshots ----------------------------------------------------------

    def snapshot_arrays(self, names: Iterable[str] | None = None) -> dict[str, np.ndarray]:
        """Deep-copy the named arrays (all arrays when ``names`` is None)."""
        selected = self.arrays if names is None else {n: self.arrays[n] for n in names}
        return {name: array.copy() for name, array in selected.items()}

    def restore_arrays(self, snapshot: Mapping[str, np.ndarray]) -> None:
        """Restore arrays previously captured by :meth:`snapshot_arrays`."""
        for name, data in snapshot.items():
            self.arrays[name][:] = data
            self.bump_version(name)

    def snapshot_scalars(self) -> dict[str, float | int]:
        """Copy of all scalar values."""
        return dict(self.scalars)

    def restore_scalars(self, snapshot: Mapping[str, float | int]) -> None:
        self.scalars.update(snapshot)

    def fork_scalars(self) -> "Environment":
        """A new environment with private scalars but *shared* arrays.

        This is how each virtual processor sees memory during a doall:
        scalar variables are privatized per processor, arrays stay shared
        (the access router handles privatized/reduction arrays).
        """
        clone = object.__new__(Environment)
        clone.scalars = dict(self.scalars)
        clone.arrays = self.arrays  # shared on purpose
        clone.kinds = self.kinds
        clone._sizes = self._sizes
        clone._dims = self._dims
        # Shared arrays mean shared versions/digests: a bump through the
        # fork must invalidate the parent's memo too.
        clone._versions = self._versions
        clone._digest_memo = self._digest_memo
        return clone

    def copy(self) -> "Environment":
        """An independent deep copy of this environment."""
        clone = object.__new__(Environment)
        clone.scalars = dict(self.scalars)
        clone.arrays = {name: array.copy() for name, array in self.arrays.items()}
        clone.kinds = dict(self.kinds)
        clone._sizes = dict(self._sizes)
        clone._dims = dict(self._dims)
        clone._versions = {}
        clone._digest_memo = {}
        return clone
