"""Access-observation hooks.

Everything the LRPD runtime learns about a loop's dynamic behaviour flows
through an :class:`AccessObserver`:

* shadow-array marking (:class:`repro.core.shadow.ShadowMarker`) implements
  the paper's ``markread`` / ``markwrite`` / ``markredux`` operations;
* :class:`TraceRecorder` captures a full access trace, which feeds the
  related-work baselines (wavefront schedulers) and the test oracles.

The observer receives *logical* accesses: in value-based (LPD) mode the
interpreter only reports reads whose value actually participates in the
cross-iteration flow of values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

READ = "R"
WRITE = "W"
REDUX = "X"


@dataclass(frozen=True)
class Access:
    """One dynamic access: kind is READ / WRITE / REDUX."""

    kind: str
    array: str
    index: int
    iteration: int
    op: str | None = None  # reduction operator for REDUX accesses


class AccessObserver(Protocol):
    """Callbacks invoked by the interpreter for tested arrays."""

    def on_read(self, array: str, index: int) -> None:
        """A read of ``array(index)`` that contributes to the data flow."""
        ...

    def on_write(self, array: str, index: int) -> None:
        """A write of ``array(index)``."""
        ...

    def on_redux(self, array: str, index: int, op: str) -> None:
        """An access to ``array(index)`` inside a reduction statement."""
        ...


class NullObserver:
    """An observer that ignores everything (serial, unmarked execution)."""

    def on_read(self, array: str, index: int) -> None:
        pass

    def on_write(self, array: str, index: int) -> None:
        pass

    def on_redux(self, array: str, index: int, op: str) -> None:
        pass


class TraceRecorder:
    """Records the full access stream, tagged with the current iteration.

    The driver must set :attr:`iteration` before executing each iteration
    (the runtime executors do this automatically).
    """

    def __init__(self) -> None:
        self.accesses: list[Access] = []
        self.iteration = 0

    def on_read(self, array: str, index: int) -> None:
        self.accesses.append(Access(READ, array, index, self.iteration))

    def on_write(self, array: str, index: int) -> None:
        self.accesses.append(Access(WRITE, array, index, self.iteration))

    def on_redux(self, array: str, index: int, op: str) -> None:
        self.accesses.append(Access(REDUX, array, index, self.iteration, op))

    def by_iteration(self) -> dict[int, list[Access]]:
        """Group the recorded accesses by iteration number."""
        grouped: dict[int, list[Access]] = {}
        for access in self.accesses:
            grouped.setdefault(access.iteration, []).append(access)
        return grouped


class TeeObserver:
    """Forward every event to several observers (e.g. marker + trace)."""

    def __init__(self, *observers: AccessObserver):
        self._observers = observers

    def on_read(self, array: str, index: int) -> None:
        for obs in self._observers:
            obs.on_read(array, index)

    def on_write(self, array: str, index: int) -> None:
        for obs in self._observers:
            obs.on_write(array, index)

    def on_redux(self, array: str, index: int, op: str) -> None:
        for obs in self._observers:
            obs.on_redux(array, index, op)
