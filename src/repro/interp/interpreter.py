"""Tree-walking interpreter for the mini-Fortran DSL.

Numeric semantics are Fortran-flavoured: integer arithmetic stays integral
(`/` truncates toward zero), mixed arithmetic promotes to real, assignment
converts to the declared kind of the target.

Marking disciplines
-------------------

The LRPD runtime observes accesses to the *tested arrays* through an
:class:`repro.interp.events.AccessObserver`.  Two disciplines are
supported, mirroring the paper:

* **reference-based** (``value_based=False``): every executed read of a
  tested array is reported immediately.  This reproduces the earlier PD
  test's marking.
* **value-based** (``value_based=True``): a read produces a *tainted*
  value; the pending read is reported only when the value actually flows
  somewhere that matters — a store to an array, a subscript, a branch or
  loop-bound decision, i.e. when it participates in the cross-iteration
  flow of values.  Reads whose values die in private scalars are never
  reported.  This is the paper's improvement of the LPD test over the PD
  test ("checking only the dynamic data dependences caused by the actual
  cross-iteration flow of values").

References inside validated reduction statements are reported with
``on_redux`` and their loaded values are not tainted (their read-modify-
write flow is accounted for by the reduction machinery).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.dsl.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    Expr,
    If,
    Num,
    Program,
    Stmt,
    UnaryOp,
    Var,
    While,
)
from repro.errors import InterpError
from repro.interp.costs import CostCounter
from repro.interp.env import Environment
from repro.interp.events import AccessObserver, NullObserver
from repro.interp.memory import DirectMemory, MemoryModel

#: Safety valve for ``do while`` loops in buggy generated programs.
MAX_WHILE_ITERATIONS = 10_000_000


class Tainted:
    """A runtime value carrying pending (array, index) reads."""

    __slots__ = ("value", "taints")

    def __init__(self, value: float | int, taints: frozenset[tuple[str, int]]):
        self.value = value
        self.taints = taints

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tainted({self.value!r}, {set(self.taints)!r})"


def find_target_loop(program: Program) -> Do:
    """The loop under test: the first top-level ``do`` in the program body."""
    for stmt in program.body:
        if isinstance(stmt, Do):
            return stmt
    raise InterpError("program has no top-level do loop to test")


def split_at_loop(program: Program, loop: Do) -> tuple[list[Stmt], list[Stmt]]:
    """Split the top-level body into (before-loop, after-loop) statements."""
    for position, stmt in enumerate(program.body):
        if stmt is loop:
            return program.body[:position], program.body[position + 1 :]
    raise InterpError("loop is not a top-level statement of the program")


class Interpreter:
    """Executes DSL statements against an environment and a memory model."""

    def __init__(
        self,
        program: Program,
        env: Environment,
        *,
        memory: MemoryModel | None = None,
        observer: AccessObserver | None = None,
        tested: Iterable[str] = (),
        value_based: bool = True,
        cost: CostCounter | None = None,
        redux_refs: Mapping[int, str] | None = None,
    ):
        self.program = program
        self.env = env
        self.memory: MemoryModel = memory if memory is not None else DirectMemory(env)
        self.observer: AccessObserver = observer if observer is not None else NullObserver()
        self.tested = frozenset(tested)
        self.value_based = value_based
        self.cost = cost if cost is not None else CostCounter()
        #: ref_id -> reduction operator, for references inside validated
        #: reduction statements (assigned by the instrumentation pass).
        self.redux_refs: Mapping[int, str] = redux_refs or {}
        #: pending taints held by scalar variables (value-based mode).
        self._scalar_taints: dict[str, frozenset[tuple[str, int]]] = {}

    # -- public driving API -------------------------------------------------

    def run(self) -> None:
        """Execute the whole program sequentially."""
        self.exec_block(self.program.body)

    def exec_block(self, body: list[Stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_iteration(
        self,
        loop: Do,
        iteration_value: int,
        flush_live_out: Iterable[str] = (),
    ) -> None:
        """Execute one iteration of ``loop`` with the loop variable set.

        Used by the parallel executors, which control iteration order and
        bracket each iteration with cost accounting and taint lifetime.
        Pending reads held by ``flush_live_out`` scalars are reported
        before the iteration's taints are dropped (their values may
        survive the loop).
        """
        self.env.set_scalar(loop.var, iteration_value)
        self.cost.start_iteration()
        self.exec_block(loop.body)
        if flush_live_out:
            self.flush_scalar_taints(flush_live_out)
        self.cost.end_iteration()
        self._scalar_taints.clear()

    def eval_loop_bounds(self, loop: Do) -> tuple[int, int, int]:
        """Evaluate a do loop's (start, stop, step) in the current state."""
        start = int(self._eval_flushed(loop.start))
        stop = int(self._eval_flushed(loop.stop))
        step = 1 if loop.step is None else int(self._eval_flushed(loop.step))
        if step == 0:
            raise InterpError("do loop with zero step")
        return start, stop, step

    def flush_scalar_taints(self, names: Iterable[str]) -> None:
        """Report pending reads held by the named (live-out) scalars."""
        for name in names:
            taints = self._scalar_taints.pop(name, None)
            if taints:
                for array, index in taints:
                    self._mark_read(array, index)

    def clear_scalar_taints(self) -> None:
        """Drop all pending per-iteration taints (dead values)."""
        self._scalar_taints.clear()

    # -- statements -----------------------------------------------------------

    def exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self._exec_assign(stmt)
        elif isinstance(stmt, If):
            self.cost.branches += 1
            if self._truthy(self._eval_flushed(stmt.cond)):
                self.exec_block(stmt.then_body)
            else:
                self.exec_block(stmt.else_body)
        elif isinstance(stmt, Do):
            self._exec_do(stmt)
        elif isinstance(stmt, While):
            self._exec_while(stmt)
        else:
            raise InterpError(f"cannot execute {type(stmt).__name__}")

    def _exec_assign(self, stmt: Assign) -> None:
        target = stmt.target
        if isinstance(target, Var):
            value = self.eval(stmt.expr)
            self.cost.scalar_ops += 1
            if isinstance(value, Tainted):
                self.env.set_scalar(target.name, value.value)
                if value.taints:
                    self._scalar_taints[target.name] = value.taints
                else:
                    self._scalar_taints.pop(target.name, None)
            else:
                self.env.set_scalar(target.name, value)
                self._scalar_taints.pop(target.name, None)
            return

        assert isinstance(target, ArrayRef)
        index = self._eval_index(target.index)
        value = self._eval_flushed(stmt.expr)
        self.cost.mem_writes += 1
        self.memory.store(target.name, index, value, target.ref_id)
        if target.name in self.tested:
            op = self.redux_refs.get(target.ref_id)
            if op is not None:
                self.observer.on_redux(target.name, index, op)
            else:
                self.observer.on_write(target.name, index)

    def _exec_do(self, stmt: Do) -> None:
        start = int(self._eval_flushed(stmt.start))
        stop = int(self._eval_flushed(stmt.stop))
        step = 1 if stmt.step is None else int(self._eval_flushed(stmt.step))
        if step == 0:
            raise InterpError("do loop with zero step")
        value = start
        while (step > 0 and value <= stop) or (step < 0 and value >= stop):
            self.env.set_scalar(stmt.var, value)
            self.cost.scalar_ops += 1
            self.exec_block(stmt.body)
            value += step
        # Fortran leaves the loop variable one step past the bound.
        self.env.set_scalar(stmt.var, value)

    def _exec_while(self, stmt: While) -> None:
        count = 0
        while True:
            self.cost.branches += 1
            if not self._truthy(self._eval_flushed(stmt.cond)):
                return
            self.exec_block(stmt.body)
            count += 1
            if count > MAX_WHILE_ITERATIONS:
                raise InterpError("do while exceeded the iteration safety limit")

    # -- expressions ------------------------------------------------------------

    def eval(self, expr: Expr):
        """Evaluate ``expr``; may return a raw number or a Tainted value."""
        if isinstance(expr, Num):
            return int(expr.value) if expr.is_int else expr.value
        if isinstance(expr, Var):
            self.cost.scalar_ops += 1
            value = self.env.get_scalar(expr.name)
            taints = self._scalar_taints.get(expr.name)
            if taints:
                return Tainted(value, taints)
            return value
        if isinstance(expr, ArrayRef):
            return self._eval_array_load(expr)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, UnaryOp):
            self.cost.flops += 1
            value = self.eval(expr.operand)
            raw = value.value if isinstance(value, Tainted) else value
            result = (1 if not self._truthy(raw) else 0) if expr.op == "not" else -raw
            if isinstance(value, Tainted) and value.taints:
                return Tainted(result, value.taints)
            return result
        if isinstance(expr, Call):
            return self._eval_call(expr)
        raise InterpError(f"cannot evaluate {type(expr).__name__}")

    def _eval_array_load(self, ref: ArrayRef):
        index = self._eval_index(ref.index)
        self.cost.mem_reads += 1
        value = self.memory.load(ref.name, index, ref.ref_id)
        if ref.name not in self.tested:
            return value
        op = self.redux_refs.get(ref.ref_id)
        if op is not None:
            # A read inside a validated reduction statement: marked as a
            # reduction access; the value is the (routed) partial accumulator
            # and must not spread a read taint.
            self.observer.on_redux(ref.name, index, op)
            return value
        if self.value_based:
            return Tainted(value, frozenset(((ref.name, index),)))
        self.observer.on_read(ref.name, index)
        return value

    def _eval_binop(self, expr: BinOp):
        op = expr.op
        if op == "and":
            self.cost.flops += 1
            left = self._eval_flushed(expr.left)
            if not self._truthy(left):
                return 0
            return 1 if self._truthy(self._eval_flushed(expr.right)) else 0
        if op == "or":
            self.cost.flops += 1
            left = self._eval_flushed(expr.left)
            if self._truthy(left):
                return 1
            return 1 if self._truthy(self._eval_flushed(expr.right)) else 0

        self.cost.flops += 1
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        left_raw = left.value if isinstance(left, Tainted) else left
        right_raw = right.value if isinstance(right, Tainted) else right
        result = _apply_binop(op, left_raw, right_raw)

        taints: frozenset[tuple[str, int]] = frozenset()
        if isinstance(left, Tainted):
            taints |= left.taints
        if isinstance(right, Tainted):
            taints |= right.taints
        if taints:
            return Tainted(result, taints)
        return result

    def _eval_call(self, expr: Call):
        self.cost.intrinsics += 1
        values = [self.eval(arg) for arg in expr.args]
        raws = [v.value if isinstance(v, Tainted) else v for v in values]
        result = _apply_intrinsic(expr.func, raws)
        taints: frozenset[tuple[str, int]] = frozenset()
        for value in values:
            if isinstance(value, Tainted):
                taints |= value.taints
        if taints:
            return Tainted(result, taints)
        return result

    # -- taint helpers -----------------------------------------------------------

    def _eval_flushed(self, expr: Expr) -> float | int:
        """Evaluate ``expr`` and flush any pending reads it carries.

        Used wherever the value observably escapes: stores to arrays,
        subscripts, branch conditions and loop bounds.
        """
        value = self.eval(expr)
        if isinstance(value, Tainted):
            for array, index in value.taints:
                self._mark_read(array, index)
            return value.value
        return value

    def _eval_index(self, expr: Expr) -> int:
        value = self._eval_flushed(expr)
        if isinstance(value, float):
            if not value.is_integer():
                raise InterpError(f"non-integral array subscript {value!r}")
            value = int(value)
        return value

    def _mark_read(self, array: str, index: int) -> None:
        self.observer.on_read(array, index)

    @staticmethod
    def _truthy(value: float | int) -> bool:
        return value != 0


# ---------------------------------------------------------------------------
# Numeric semantics
# ---------------------------------------------------------------------------


def _int_div(a: int, b: int) -> int:
    """Fortran integer division: truncate toward zero."""
    if b == 0:
        raise InterpError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _apply_binop(op: str, a: float | int, b: float | int) -> float | int:
    both_int = isinstance(a, int) and isinstance(b, int)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if both_int:
            return _int_div(a, b)
        if b == 0:
            raise InterpError("division by zero")
        return a / b
    if op == "**":
        if both_int and b >= 0:
            return a**b
        return float(a) ** float(b)
    if op == "==":
        return 1 if a == b else 0
    if op == "/=":
        return 1 if a != b else 0
    if op == "<":
        return 1 if a < b else 0
    if op == "<=":
        return 1 if a <= b else 0
    if op == ">":
        return 1 if a > b else 0
    if op == ">=":
        return 1 if a >= b else 0
    raise InterpError(f"unknown operator {op!r}")


def _apply_intrinsic(func: str, args: list[float | int]) -> float | int:
    if func == "abs":
        return abs(args[0])
    if func == "sqrt":
        if args[0] < 0:
            raise InterpError("sqrt of a negative value")
        return math.sqrt(args[0])
    if func == "exp":
        return math.exp(args[0])
    if func == "log":
        if args[0] <= 0:
            raise InterpError("log of a non-positive value")
        return math.log(args[0])
    if func == "sin":
        return math.sin(args[0])
    if func == "cos":
        return math.cos(args[0])
    if func == "floor":
        return int(math.floor(args[0]))
    if func == "int":
        return int(args[0]) if args[0] >= 0 else -int(-args[0])
    if func == "real":
        return float(args[0])
    if func == "sign":
        magnitude = abs(args[0])
        return magnitude if args[1] >= 0 else -magnitude
    if func == "mod":
        a, b = args
        if b == 0:
            raise InterpError("mod with zero divisor")
        if isinstance(a, int) and isinstance(b, int):
            return a - _int_div(a, b) * b
        return math.fmod(a, b)
    if func == "min":
        return min(args)
    if func == "max":
        return max(args)
    raise InterpError(f"unknown intrinsic {func!r}")
