"""Pluggable memory models.

The interpreter performs every array access through a :class:`MemoryModel`.
Serial execution uses :class:`DirectMemory`; the speculative runtime
substitutes a router that sends privatized arrays to per-processor copies
and reduction arrays to partial accumulators (see
:mod:`repro.runtime.access_router`).
"""

from __future__ import annotations

from typing import Protocol

from repro.interp.env import Environment


class MemoryModel(Protocol):
    """The array-access interface the interpreter executes against.

    ``ref_id`` identifies the syntactic reference site; routers use it to
    send reduction-statement accesses to partial accumulators.
    """

    def load(self, array: str, index: int, ref_id: int = -1) -> float | int:
        """Read ``array(index)`` (1-based)."""
        ...

    def store(self, array: str, index: int, value: float | int, ref_id: int = -1) -> None:
        """Write ``array(index) = value`` (1-based)."""
        ...


class DirectMemory:
    """Accesses go straight to the environment's shared arrays."""

    def __init__(self, env: Environment):
        self._env = env

    def load(self, array: str, index: int, ref_id: int = -1) -> float | int:
        return self._env.load(array, index)

    def store(self, array: str, index: int, value: float | int, ref_id: int = -1) -> None:
        self._env.store(array, index, value)
