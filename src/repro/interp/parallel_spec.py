"""Worker-side shard execution for the multiprocess speculative backend.

The true-parallel doall (:mod:`repro.runtime.parallel_backend`) shards
the *virtual processors* of a marked doall across real OS worker
processes.  This module is the part that runs inside one worker: it owns
a contiguous block of virtual processors, executes exactly the
iterations the deterministic schedule assigned to them — in the same
per-processor order the emulated executor uses — and records everything
the parent needs to reconstruct a bit-identical
:class:`~repro.runtime.doall.DoallRun`:

* shadow marks go into the worker's own shadow set (the parent hands in
  a :class:`~repro.core.shadow.ShadowMarker`, typically backed by
  shared-memory views, so marks need no serialization at all);
* speculative array writes go to the owned processors' private copies
  and reduction partials, returned as per-processor rows/maps;
* writes to untransformed (shared) arrays are tracked as a diff against
  the loop-entry state and returned as sparse (index, value) updates;
* per-iteration operation counts are bracketed exactly as the emulated
  engine brackets them, including the discarded bracket of an eagerly
  aborted iteration.

Everything here is deliberately single-process and deterministic — the
module has no multiprocessing dependency, which is what lets the parity
suite drive a shard in-process and compare it mark-for-mark against the
emulated engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.privatize import PrivateCopies
from repro.core.reduction_exec import REDUCTION_IDENTITY, ReductionPartials
from repro.core.shadow import Granularity, ShadowMarker
from repro.dsl.ast_nodes import Do, Program
from repro.errors import SpeculationFailed
from repro.analysis.vectorize import classify_loop
from repro.interp.compiled_spec import CompiledSpecLoop
from repro.interp.costs import CostCounter, IterationCost
from repro.interp.vectorized_spec import VectorizeBail, execute_vectorized_block
from repro.interp.env import Environment
from repro.runtime.access_router import AccessRouter


@dataclass(frozen=True)
class ShardSpec:
    """Static per-loop configuration, fixed for a worker pool's lifetime.

    Everything that does not change between doalls of the same target
    loop: the program, the transform plan's array classification and the
    virtual-processor count.  Shipped to workers once (inherited through
    ``fork``), while the per-doall state travels in :class:`ShardTask`.
    """

    program: Program
    loop: Do
    tested_arrays: frozenset[str]
    reduction_arrays: frozenset[str]
    redux_refs: dict[int, str]
    scalar_reductions: dict[str, str]
    live_out_scalars: frozenset[str]
    #: arrays the doall writes in place (checkpointed minus transformed).
    inplace_arrays: tuple[str, ...]
    num_procs: int
    shadow_sizes: dict[str, int]

    @classmethod
    def from_plan(cls, program: Program, loop: Do, plan, env: Environment,
                  num_procs: int) -> "ShardSpec":
        inplace = tuple(sorted(
            set(plan.checkpoint_arrays)
            - set(plan.tested_arrays)
            - set(plan.reduction_arrays)
        ))
        return cls(
            program=program,
            loop=loop,
            tested_arrays=plan.tested_arrays,
            reduction_arrays=plan.reduction_arrays,
            redux_refs=dict(plan.redux_refs),
            scalar_reductions=dict(plan.scalar_reductions),
            live_out_scalars=plan.live_out_scalars,
            inplace_arrays=inplace,
            num_procs=num_procs,
            shadow_sizes={
                name: env.array_size(name) for name in sorted(plan.tested_arrays)
            },
        )


@dataclass
class ShardTask:
    """One worker's slice of one doall execution."""

    #: the iteration values of the whole doall (strip) being executed.
    values: list[int]
    #: full schedule: positions into ``values`` per virtual processor.
    assignment: list[list[int]]
    #: the virtual processors this worker owns (contiguous block).
    procs: list[int]
    #: loop-entry state (pickled across the pipe; workers never touch
    #: the parent's environment).
    env: Environment
    marking: bool = True
    value_based: bool = True
    granularity: Granularity = Granularity.ITERATION
    eager: bool = False
    #: run the owned lanes through the vectorized whole-block lowering
    #: (falls back to compiled per-iteration on a bail) instead of the
    #: per-iteration compiled executor.
    whole_block: bool = False
    #: hand the whole-block lowering the native kernel set
    #: (:func:`repro.core.jit_kernels.load_kernels`, loaded in-worker);
    #: silently runs without kernels when the set is unavailable.
    use_jit: bool = False


@dataclass
class ShardResult:
    """What one worker hands back (shadow marks travel via shared memory)."""

    #: post-execution scalar state per owned virtual processor.
    proc_scalars: dict[int, dict[str, float | int]]
    #: per tested array: {proc: (data row, wstamp row)} for owned procs.
    private_rows: dict[str, dict[int, tuple[np.ndarray, np.ndarray]]]
    #: per reduction array: {proc: partial map} for owned procs.
    partial_maps: dict[str, dict[int, dict[int, tuple[str, float]]]]
    #: (position, cost tuple) per completed iteration.
    iteration_costs: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)
    #: sparse in-place writes to untransformed arrays: name -> (idx, values).
    shared_writes: dict[str, tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    #: per tested array: this worker's tw contribution.
    tw: dict[str, int] = field(default_factory=dict)
    executed: int = 0
    aborted: bool = False
    #: why a requested vectorized execution degraded to compiled (if it did).
    fallback: str | None = None


def execute_shard(
    spec: ShardSpec, task: ShardTask, marker: ShadowMarker | None
) -> ShardResult:
    """Run one worker's virtual processors through their assigned iterations.

    Mirrors the emulated executor's round-robin interleaving restricted
    to the owned processors, so every per-processor observable (private
    rows, partials, scalars, iteration cost brackets, shadow marks and
    the eager-abort point) is deterministic and identical to what those
    processors produce under the single-process engines.
    """
    env = task.env
    privates = {
        name: PrivateCopies(name, env.arrays[name], spec.num_procs)
        for name in sorted(spec.tested_arrays)
    }
    partials = {
        name: ReductionPartials(name, spec.num_procs)
        for name in sorted(spec.reduction_arrays)
    }
    router = AccessRouter(env, privates, partials, spec.redux_refs)

    baselines = {name: env.arrays[name].copy() for name in spec.inplace_arrays}

    proc_envs: dict[int, Environment] = {}
    for proc in task.procs:
        proc_env = env.fork_scalars()
        for name, op in spec.scalar_reductions.items():
            proc_env.scalars[name] = REDUCTION_IDENTITY[op]
        proc_envs[proc] = proc_env

    tested = spec.tested_arrays if (marker is not None and task.marking) else frozenset()

    fallback: str | None = None
    if task.whole_block:
        kernels = None
        if task.use_jit:
            from repro.core.jit_kernels import load_kernels

            kernels = load_kernels()
        positions = [p for proc in task.procs for p in task.assignment[proc]]
        decision = classify_loop(spec.program, spec.loop, spec)
        if decision:
            try:
                pairs = execute_vectorized_block(
                    spec.program, spec.loop,
                    values=task.values, positions=positions,
                    assignment=task.assignment, num_procs=spec.num_procs,
                    tested=tested, redux_refs=spec.redux_refs,
                    scalar_reductions=spec.scalar_reductions,
                    live_out_scalars=spec.live_out_scalars,
                    value_based=task.value_based,
                    marker=marker if task.marking else None,
                    privates=privates, partials=partials,
                    proc_envs=proc_envs, shared_env=env,
                    kernels=kernels,
                )
            except VectorizeBail as bail:
                fallback = bail.reason
            else:
                return ShardResult(
                    proc_scalars={
                        proc: dict(pe.scalars) for proc, pe in proc_envs.items()
                    },
                    private_rows={
                        name: {
                            proc: (copies.data[proc].copy(),
                                   copies.wstamp[proc].copy())
                            for proc in task.procs
                        }
                        for name, copies in privates.items()
                    },
                    partial_maps={
                        name: {proc: dict(p.proc_maps()[proc])
                               for proc in task.procs}
                        for name, p in partials.items()
                    },
                    iteration_costs=[
                        (pos, (c.flops, c.mem_reads, c.mem_writes,
                               c.scalar_ops, c.intrinsics, c.branches,
                               c.marks))
                        for pos, c in pairs
                    ],
                    shared_writes={},  # the classifier rejects shared stores
                    tw={
                        name: shadow.tw
                        for name, shadow in (
                            marker.shadows if marker else {}
                        ).items()
                    },
                    executed=len(positions),
                    aborted=False,
                )
        else:
            fallback = decision.reason
        # The block attempt committed nothing: run the owned processors
        # per-iteration on the compiled engine over the same structures.

    spec_loop = CompiledSpecLoop(
        spec.program, spec.loop,
        tested=tested, value_based=task.value_based, redux_refs=spec.redux_refs,
        privates=privates, partials=partials, shared_env=env,
    )
    runtimes = {
        proc: spec_loop.new_runtime(proc_envs[proc], router, CostCounter(), proc=proc)
        for proc in task.procs
    }

    iteration_costs: list[tuple[int, IterationCost]] = []
    pointers = {proc: 0 for proc in task.procs}
    remaining = sum(len(task.assignment[proc]) for proc in task.procs)
    executed = 0
    aborted = False
    values = task.values
    while remaining and not aborted:
        for proc in task.procs:
            if pointers[proc] >= len(task.assignment[proc]):
                continue
            position = task.assignment[proc][pointers[proc]]
            pointers[proc] += 1
            remaining -= 1
            rt = runtimes[proc]
            rt.iteration = position
            router.set_context(proc, position)
            if marker is not None:
                granule = (
                    position
                    if marker.granularity is Granularity.ITERATION
                    else proc
                )
                marker.set_granule(granule)
                marker.cost = rt.cost
            try:
                spec_loop.run_iteration(
                    rt, marker if task.marking else None,
                    values[position], spec.live_out_scalars,
                )
            except SpeculationFailed:
                # Local on-the-fly detection: a conflict within this
                # worker's granules is already a certain global failure
                # (the merge only adds marks), so the shard stops here.
                aborted = True
                break
            iteration_costs.append((position, rt.cost.iteration_costs[-1]))
            executed += 1

    shared_writes: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, baseline in baselines.items():
        current = env.arrays[name]
        changed = np.nonzero(current != baseline)[0]
        if changed.size:
            shared_writes[name] = (changed, current[changed].copy())

    return ShardResult(
        proc_scalars={proc: dict(pe.scalars) for proc, pe in proc_envs.items()},
        private_rows={
            name: {
                proc: (copies.data[proc].copy(), copies.wstamp[proc].copy())
                for proc in task.procs
            }
            for name, copies in privates.items()
        },
        partial_maps={
            name: {proc: dict(p.proc_maps()[proc]) for proc in task.procs}
            for name, p in partials.items()
        },
        iteration_costs=[
            (pos, (c.flops, c.mem_reads, c.mem_writes, c.scalar_ops,
                   c.intrinsics, c.branches, c.marks))
            for pos, c in iteration_costs
        ],
        shared_writes=shared_writes,
        tw={name: shadow.tw for name, shadow in (marker.shadows if marker else {}).items()},
        executed=executed,
        aborted=aborted,
        fallback=fallback,
    )
