"""Whole-block vectorized speculative execution engine.

Executes every iteration of a marked doall *at once*: each statement of
the (classifier-accepted, see :mod:`repro.analysis.vectorize`) loop body
is lowered to NumPy kernels over index vectors with one lane per
iteration — gathers for loads, last-writer-wins scatters for private
stores, exec-order ufunc folds for reduction partials — and the shadow
marks are staged in bulk on the same index vectors through
:meth:`repro.core.shadow.ShadowArray.stage_stream_vec`.

The engine is *transactional*: evaluation only appends to logs (scalar
value events, private write/base-read logs, partial contributions,
shadow emissions) and touches no runtime structure until every dynamic
check has passed.  Any condition the lockstep lowering cannot reproduce
bit-identically — a value the scalar engines would compute differently
(int64 overflow, mixed int/float comparison beyond 2^53), a condition
they would turn into an exception (out-of-bounds subscript, zero
divisor), a cross-iteration dependence the lanes cannot see (a scalar or
private element carried between iterations of one virtual processor), or
an eager speculation failure — raises :class:`VectorizeBail` *before*
any commit.  The caller then reruns the block per-iteration on the
compiled engine over the very same (untouched) structures, which
reproduces the exact state, costs, marks and raised errors by
construction.  Committed vectorized runs are bit-identical to the
compiled/walk engines (parity-tested on the paper workloads and fuzzed).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.reduction_exec import REDUCTION_IDENTITY
from repro.core.shadow import (
    KIND_READ,
    KIND_REDUX,
    KIND_WRITE,
    OP_CODES,
    Granularity,
    ShadowMarker,
)
from repro.dsl.ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    Expr,
    If,
    Num,
    Program,
    Stmt,
    UnaryOp,
    Var,
    walk_statements,
)
from repro.interp.costs import CATEGORIES, IterationCost
from repro.interp.env import Environment

_I64 = np.int64
_BIG = 1 << 62          # safe headroom below int64 overflow
_F_EXACT = 1 << 53      # ints exactly representable as float64
_SCRATCH_CELL_CAP = 1 << 23   # private scratch budget (rows * size)
_NESTED_TRIP_CAP = 1_000_000  # lockstep nested-do step budget


class VectorizeBail(Exception):
    """The whole-block attempt cannot proceed bit-identically.

    Raised strictly before any state is committed; the caller falls back
    to the compiled per-iteration engine with :attr:`reason` recorded.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _Atom:
    """One pending-read taint source: a tested load's index vector.

    ``present`` marks the lanes on which the taint is still pending; the
    arrays are treated as immutable (copy-on-write) so atoms can be
    shared across scalar states and expression values.
    """

    __slots__ = ("name", "idx0", "present")

    def __init__(self, name: str, idx0: np.ndarray, present: np.ndarray):
        self.name = name
        self.idx0 = idx0
        self.present = present


def _merge_atoms(left: tuple, right: tuple) -> tuple:
    """Union of two taint sets.

    Duplicate ``(array, index)`` pairs are kept here and collapsed at
    flush time (:meth:`_BlockExecutor._flush_atoms`) — the scalar
    engines' frozensets make a flush emit each distinct pair once, and
    per-flush dedup reproduces that with cheap concatenation in between.
    """
    if not right:
        return left
    if not left:
        return right
    return left + right


def _mask_atoms(atoms: tuple, mask: np.ndarray) -> tuple:
    # The emptiness filter bounds the live atom count inside masked
    # accumulation loops — without it dead taints pile up per step and
    # the per-statement masking cost goes quadratic.  Masking and the
    # filter run over one stacked matrix so the cost is a couple of C
    # calls, not a pair of numpy ops per atom.
    if not atoms:
        return ()
    if len(atoms) == 1:
        present = atoms[0].present & mask
        if present.any():
            return (_Atom(atoms[0].name, atoms[0].idx0, present),)
        return ()
    stacked = np.stack([atom.present for atom in atoms]) & mask
    keep = stacked.any(axis=1)
    return tuple(
        _Atom(atom.name, atom.idx0, stacked[i])
        for i, atom in enumerate(atoms)
        if keep[i]
    )


class _Val:
    """A lane-vector expression value with its static kind and taints."""

    __slots__ = ("vec", "kind", "atoms")

    def __init__(self, vec: np.ndarray, kind: str, atoms: tuple = ()):
        self.vec = vec
        self.kind = kind
        self.atoms = atoms


class _ScalarState:
    """Per-lane state of one scalar variable."""

    __slots__ = (
        "vec", "assigned", "assigned_all", "atoms", "kind",
        "initially_defined",
    )

    def __init__(self, vec, assigned, kind, initially_defined):
        self.vec = vec
        self.assigned = assigned
        #: fast-path flag: True once every lane has assigned this scalar.
        self.assigned_all = bool(assigned.all())
        self.atoms: tuple = ()
        self.kind = kind
        self.initially_defined = initially_defined


class _PrivateState:
    """Staged per-lane view of one privatized array."""

    __slots__ = ("base", "scratch", "written", "writes", "base_reads", "size")

    def __init__(self, base: np.ndarray, rows: int):
        self.base = base
        self.size = int(base.size)
        self.scratch = np.zeros((rows, self.size), dtype=base.dtype)
        self.written = np.zeros((rows, self.size), dtype=bool)
        #: (lane_sel, idx0_sel, cast values, seq) per store event.
        self.writes: list = []
        #: (lane_sel, idx0_sel) per load that fell through to the base.
        self.base_reads: list = []


def execute_vectorized_block(
    program: Program,
    loop: Do,
    *,
    values: Sequence[int],
    positions: Sequence[int],
    assignment: Sequence[Sequence[int]],
    num_procs: int,
    tested: Iterable[str],
    redux_refs: Mapping[int, str],
    scalar_reductions: Mapping[str, str],
    live_out_scalars: Iterable[str],
    value_based: bool,
    marker: ShadowMarker | None,
    privates: Mapping[str, object],
    partials: Mapping[str, object],
    proc_envs,
    shared_env: Environment,
    kernels=None,
    need_costs: bool = True,
) -> list[tuple[int, IterationCost]]:
    """Execute ``positions`` (a subset of the doall's iteration space, or
    all of it) in lockstep and commit the results.

    Returns ``(position, IterationCost)`` pairs in execution order —
    empty with ``need_costs=False`` (schedule reuse with memoized
    times), which skips the per-iteration cost materialization.
    Raises :class:`VectorizeBail` — with *nothing* committed — when the
    lockstep lowering cannot guarantee bit-identity; the caller must
    then rerun the same positions on the compiled engine.
    """
    executor = _BlockExecutor(
        program, loop,
        values=values, positions=positions, assignment=assignment,
        num_procs=num_procs, tested=tested, redux_refs=redux_refs,
        scalar_reductions=scalar_reductions,
        live_out_scalars=live_out_scalars, value_based=value_based,
        marker=marker, privates=privates, partials=partials,
        proc_envs=proc_envs, shared_env=shared_env, kernels=kernels,
        need_costs=need_costs,
    )
    return executor.run()


class _BlockExecutor:
    def __init__(
        self, program, loop, *, values, positions, assignment, num_procs,
        tested, redux_refs, scalar_reductions, live_out_scalars,
        value_based, marker, privates, partials, proc_envs, shared_env,
        kernels=None, need_costs=True,
    ):
        self.need_costs = need_costs
        self.program = program
        self.loop = loop
        self.values = values
        self.positions = np.asarray(list(positions), dtype=_I64)
        self.num_procs = num_procs
        self.tested = frozenset(tested)
        self.redux_refs = dict(redux_refs)
        self.scalar_reductions = dict(scalar_reductions)
        self.live_out_scalars = live_out_scalars
        self.value_based = bool(value_based) and bool(self.tested)
        self.marker = marker
        self.privates = privates
        self.partials = partials
        self.proc_envs = proc_envs
        self.shared_env = shared_env
        #: optional native kernel set (the ``jit`` engine passes one);
        #: None keeps every hot path on the numpy lowering.
        self.kernels = kernels

        self.kinds = {decl.name: decl.kind for decl in program.decls}
        self.sizes = {
            decl.name: decl.size
            for decl in program.decls
            if isinstance(decl, ArrayDecl)
        }

        R = int(self.positions.size)
        self.R = R
        #: the all-lanes mask shared by every top-level statement; the
        #: hot paths test identity against it to skip compressions.
        self._full = np.ones(R, dtype=bool)
        self._rows_all = np.arange(R)
        self._sel_key = None
        self._sel_val = None
        proc_of = np.zeros(len(values), dtype=_I64)
        k_of = np.zeros(len(values), dtype=_I64)
        for proc, plist in enumerate(assignment):
            for k, pos in enumerate(plist):
                proc_of[pos] = proc
                k_of[pos] = k
        self.proc_of = proc_of[self.positions]
        self.k_of = k_of[self.positions]
        #: deterministic round-robin execution order of the lanes.
        self.row_rank = self.k_of * num_procs + self.proc_of
        if marker is not None:
            self.granule = (
                self.positions
                if marker.granularity is Granularity.ITERATION
                else self.proc_of
            )
        else:
            self.granule = self.positions
        self.procs_present = sorted({int(p) for p in self.proc_of})

        self.cost = {cat: np.zeros(R, dtype=_I64) for cat in CATEGORIES}
        self.seq = 0
        #: (name, lane_sel, idx0_sel, kind, opcode, seq) shadow emissions.
        self.emissions: list = []
        self.scalar_states: dict[str, _ScalarState] = {}
        #: (name, seq, lane_sel, value_sel) scalar assignment events.
        self.scalar_events: list = []
        #: per reduction array: (lane_sel, idx0_sel, contrib_sel, seq).
        self.redux_logs: dict[str, list] = {}
        #: per scalar reduction: (lane_sel, contrib_sel, seq, form).
        self.scalar_redux_logs: dict[str, list] = {}
        self.private_states: dict[str, _PrivateState] = {}

        self.assigned_in_body: set[str] = {loop.var}
        for stmt in walk_statements(loop.body):
            if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
                self.assigned_in_body.add(stmt.target.name)
            elif isinstance(stmt, Do):
                self.assigned_in_body.add(stmt.var)

    # -- small helpers -------------------------------------------------------

    def _bail(self, reason: str):
        raise VectorizeBail(reason)

    def _charge(self, cat: str, mask: np.ndarray) -> None:
        if mask is self._full:
            self.cost[cat] += 1
        else:
            self.cost[cat] += mask

    def _sel_of(self, mask: np.ndarray) -> np.ndarray:
        """``np.flatnonzero(mask)`` with a one-entry identity cache —
        every access in a statement shares the statement's mask object,
        so the compression is computed once per mask, not per access.
        The result is shared read-only; callers must not mutate it."""
        if mask is self._full:
            return self._rows_all
        if self._sel_key is mask:
            return self._sel_val
        sel = np.flatnonzero(mask)
        self._sel_key = mask
        self._sel_val = sel
        return sel

    def _next_seq(self) -> int:
        seq = self.seq
        self.seq = seq + 1
        return seq

    def _emit(self, name, idx0, mask, kind, opcode=0) -> None:
        """Record one shadow-mark event (charged like a flushed mark)."""
        self._charge("marks", mask)
        if mask is self._full:
            self.emissions.append(
                (name, self._rows_all, idx0, kind, opcode, self._next_seq())
            )
            return
        sel = self._sel_of(mask)
        if sel.size:
            self.emissions.append(
                (name, sel, idx0[sel], kind, opcode, self._next_seq())
            )
        else:
            self._next_seq()

    def _emit_pairs(self, name, lanes, idx_sel, kind, opcode=0) -> None:
        """Like :meth:`_emit` but over explicit (lane, element) pairs."""
        if lanes.size:
            self.cost["marks"] += np.bincount(lanes, minlength=self.R)
            self.emissions.append(
                (name, lanes, idx_sel, kind, opcode, self._next_seq())
            )
        else:
            self._next_seq()

    def _flush_atoms(self, atoms: tuple, mask: np.ndarray) -> None:
        """Report every pending read an expression's taints hold.

        ``mask`` bounds the reporting lanes: scalar reads hand their
        state's taints over unmasked (see :meth:`_eval_var`), and the
        flush — the only consumer that observes presence — intersects
        once here instead of at every propagation step.

        Per flush event each distinct (lane, array, element) pair emits
        exactly one READ — the frozenset semantics of the scalar
        engines' taint sets; within-flush emission order is immaterial
        to the committed shadow state, the mark counts and the eager
        verdict.
        """
        full = mask is self._full
        per_name: dict[str, list] = {}
        for atom in atoms:
            per_name.setdefault(atom.name, []).append(atom)
        for name, group in per_name.items():
            if len(group) == 1:
                present = group[0].present if full else group[0].present & mask
                sel = np.flatnonzero(present)
                self._emit_pairs(name, sel, group[0].idx0[sel], KIND_READ)
                continue
            present = np.stack([a.present for a in group])
            if not full:
                present &= mask
            rows, lanes = np.nonzero(present)
            idxs = np.stack([a.idx0 for a in group])[rows, lanes]
            # Guard arithmetic in Python ints: a fixed-width product can
            # wrap for shadow sizes >= 2**31 and silently pick the
            # narrow key (overflow-tested).
            stride = self.sizes.get(name, 0) + 1
            if self.R * stride < 2**62:
                keys = lanes * np.int64(stride) + idxs
                if self.R * stride < 2**31:
                    keys = keys.astype(np.int32)
                _uniq, first = np.unique(keys, return_index=True)
            else:  # pragma: no cover - needs a >2**62-element key space
                _uniq, first = np.unique(
                    np.stack([lanes, idxs]), axis=1, return_index=True
                )
            self._emit_pairs(name, lanes[first], idxs[first], KIND_READ)

    def _dtype_of(self, kind: str):
        return _I64 if kind == "integer" else np.float64

    def _zeros(self, kind: str) -> np.ndarray:
        return np.zeros(self.R, dtype=self._dtype_of(kind))

    def _private_state(self, name: str) -> _PrivateState:
        state = self.private_states.get(name)
        if state is None:
            copies = self.privates[name]
            if self.R * copies.size > _SCRATCH_CELL_CAP:
                self._bail(
                    f"private scratch for {name!r} exceeds the lane budget"
                )
            # All per-processor rows are identical at loop entry (tiled
            # copy-in), so any row serves as the pre-block base image.
            state = _PrivateState(copies.data[0].copy(), self.R)
            self.private_states[name] = state
        return state

    def _scalar_state(self, name: str) -> _ScalarState:
        state = self.scalar_states.get(name)
        if state is None:
            kind = self.kinds.get(name)
            if kind is None:
                self._bail(f"undeclared scalar {name!r}")
            vec = self._zeros(kind)
            env = self.proc_envs[self.procs_present[0]]
            initially_defined = name in env.scalars
            if initially_defined:
                try:
                    vec[:] = env.scalars[name]
                except (OverflowError, ValueError):
                    self._bail(f"scalar {name!r} exceeds the vector range")
            state = _ScalarState(
                vec, np.zeros(self.R, dtype=bool), kind, initially_defined
            )
            self.scalar_states[name] = state
        return state

    # -- numeric guards ------------------------------------------------------

    def _guard_int_range(self, vec: np.ndarray, mask: np.ndarray, what: str):
        act = vec[mask]
        if act.size and (int(act.min()) <= -_BIG or int(act.max()) >= _BIG):
            self._bail(f"integer magnitude in {what} exceeds the vector range")

    def _cast_to_int(self, val: _Val, mask: np.ndarray, what: str) -> np.ndarray:
        """Mirror Python ``int(x)`` truncation; bail where the scalar
        engines would raise or int64 cannot hold the result."""
        if val.kind == "integer":
            return val.vec
        act = val.vec[mask]
        if act.size:
            if not np.all(np.isfinite(act)):
                self._bail(f"non-finite value cast to integer in {what}")
            if float(np.abs(act).max()) >= float(_BIG):
                self._bail(f"float magnitude in {what} exceeds the vector range")
        return np.trunc(np.where(mask, val.vec, 0.0)).astype(_I64)

    def _cast_to_kind(self, val: _Val, kind: str, mask, what: str) -> np.ndarray:
        if kind == "integer":
            return self._cast_to_int(val, mask, what)
        if val.kind == "integer":
            return val.vec.astype(np.float64)
        return val.vec

    # -- expression evaluation ----------------------------------------------

    def eval_expr(self, expr: Expr, mask: np.ndarray) -> _Val:
        if isinstance(expr, Num):
            if expr.is_int:
                return _Val(np.full(self.R, int(expr.value), dtype=_I64), "integer")
            return _Val(np.full(self.R, expr.value, dtype=np.float64), "real")
        if isinstance(expr, Var):
            return self._eval_var(expr.name, mask)
        if isinstance(expr, ArrayRef):
            return self._eval_load(expr, mask)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, mask)
        if isinstance(expr, UnaryOp):
            return self._eval_unary(expr, mask)
        if isinstance(expr, Call):
            return self._eval_call(expr, mask)
        self._bail(f"cannot vectorize {type(expr).__name__}")

    def eval_flushed(self, expr: Expr, mask: np.ndarray) -> _Val:
        """An escape position: pending reads are reported here (with the
        compiled engine's bare-load peephole)."""
        if (
            self.value_based
            and isinstance(expr, ArrayRef)
            and expr.name in self.tested
            and self.redux_refs.get(expr.ref_id) is None
        ):
            return self._eval_load(expr, mask, force_mark=True)
        val = self.eval_expr(expr, mask)
        if val.atoms:
            self._flush_atoms(val.atoms, mask)
            val = _Val(val.vec, val.kind)
        return val

    def eval_index(self, expr: Expr, mask: np.ndarray) -> np.ndarray:
        """A subscript: flushed, integral, still 1-based."""
        val = self.eval_flushed(expr, mask)
        if val.kind == "integer":
            return val.vec
        act = val.vec[mask]
        if act.size:
            if not np.all(np.isfinite(act)):
                self._bail("non-finite array subscript")
            if np.any(act != np.trunc(act)):
                self._bail("non-integral array subscript")
            if float(np.abs(act).max()) >= float(_BIG):
                self._bail("array subscript exceeds the vector range")
        return np.trunc(np.where(mask, val.vec, 1.0)).astype(_I64)

    def _eval_var(self, name: str, mask: np.ndarray) -> _Val:
        self._charge("scalar_ops", mask)
        state = self._scalar_state(name)
        if name in self.assigned_in_body:
            if not state.assigned_all and np.any(mask & ~state.assigned):
                self._bail(
                    f"scalar {name!r} carried across iterations "
                    "(read before its in-iteration assignment)"
                )
        elif not state.initially_defined:
            self._bail(f"scalar {name!r} read while undefined")
        # Taints hand over unmasked: every consumer either re-masks at
        # assignment or intersects with its lane mask at flush time.
        return _Val(state.vec, state.kind, state.atoms)

    def _route(self, name: str, ref_id: int) -> str:
        if self.redux_refs.get(ref_id) is not None and name in self.partials:
            return "partial"
        if name in self.privates:
            return "private"
        return "shared"

    def _eval_load(self, ref: ArrayRef, mask, force_mark: bool = False) -> _Val:
        name = ref.name
        idx = self.eval_index(ref.index, mask)
        self._charge("mem_reads", mask)
        size = self.sizes.get(name)
        if size is None:
            self._bail(f"undeclared array {name!r}")
        kind = self.kinds[name]
        act = idx[mask]
        if act.size and (int(act.min()) < 1 or int(act.max()) > size):
            self._bail(f"subscript of {name!r} out of bounds")
        idx0 = idx - 1
        route = self._route(name, ref.ref_id)
        if route == "partial":
            self._bail("reduction-array load outside its own update")
        full = mask is self._full
        if route == "private":
            state = self._private_state(name)
            if full:
                rows = self._rows_all
                own = state.written[rows, idx0]
                vec = np.where(
                    own, state.scratch[rows, idx0], state.base[idx0]
                )
                if vec.dtype != self._dtype_of(kind):
                    vec = vec.astype(self._dtype_of(kind))
                base_sel = np.flatnonzero(~own)
                if base_sel.size:
                    state.base_reads.append((base_sel, idx0[base_sel]))
            else:
                sel = self._sel_of(mask)
                vec = self._zeros(kind)
                own = np.zeros(self.R, dtype=bool)
                if sel.size:
                    own[sel] = state.written[sel, idx0[sel]]
                    own_sel = np.flatnonzero(own)
                    vec[own_sel] = state.scratch[own_sel, idx0[own_sel]]
                    base_sel = np.flatnonzero(mask & ~own)
                    if base_sel.size:
                        vec[base_sel] = state.base[idx0[base_sel]]
                        state.base_reads.append((base_sel, idx0[base_sel]))
        elif full:
            vec = self.shared_env.arrays[name][idx0]
            if vec.dtype != self._dtype_of(kind):
                vec = vec.astype(self._dtype_of(kind))
        else:
            sel = self._sel_of(mask)
            vec = self._zeros(kind)
            if sel.size:
                vec[sel] = self.shared_env.arrays[name][idx0[sel]]
        atoms: tuple = ()
        if name in self.tested:
            if self.value_based and not force_mark:
                atoms = (_Atom(name, idx0, mask.copy()),)
            else:
                self._emit(name, idx0, mask, KIND_READ)
        return _Val(vec, kind, atoms)

    def _eval_binop(self, expr: BinOp, mask: np.ndarray) -> _Val:
        op = expr.op
        if op in ("and", "or"):
            self._charge("flops", mask)
            left = self.eval_flushed(expr.left, mask)
            if op == "and":
                need_right = mask & (left.vec != 0)
                right = self.eval_flushed(expr.right, need_right)
                result = np.where(need_right & (right.vec != 0), 1, 0)
            else:
                need_right = mask & (left.vec == 0)
                right = self.eval_flushed(expr.right, need_right)
                result = np.where(
                    mask & ~need_right, 1,
                    np.where(need_right & (right.vec != 0), 1, 0),
                )
            return _Val(result.astype(_I64), "integer")

        self._charge("flops", mask)
        left = self.eval_expr(expr.left, mask)
        right = self.eval_expr(expr.right, mask)
        atoms = _merge_atoms(left.atoms, right.atoms)
        vec = self._apply_binop(op, left, right, mask)
        kind = (
            "integer"
            if vec.dtype == _I64
            else "real"
        )
        if atoms and op not in ("and", "or"):
            return _Val(vec, kind, atoms)
        return _Val(vec, kind)

    def _apply_binop(self, op, left: _Val, right: _Val, mask) -> np.ndarray:
        a, b = left.vec, right.vec
        both_int = left.kind == "integer" and right.kind == "integer"
        if op in ("==", "/=", "<", "<=", ">", ">="):
            if left.kind != right.kind:
                ivec = a if left.kind == "integer" else b
                act = ivec[mask]
                if act.size and (
                    int(act.min()) < -_F_EXACT or int(act.max()) > _F_EXACT
                ):
                    self._bail(
                        "mixed integer/real comparison beyond exact "
                        "float64 range"
                    )
            cmp = {
                "==": np.equal, "/=": np.not_equal, "<": np.less,
                "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
            }[op]
            return cmp(a, b).astype(_I64)
        if op in ("+", "-", "*"):
            if both_int:
                self._guard_int_range(a, mask, f"{op!r}")
                self._guard_int_range(b, mask, f"{op!r}")
                if op == "*":
                    aa, bb = a[mask], b[mask]
                    if aa.size:
                        amax = max(abs(int(aa.min())), abs(int(aa.max())))
                        bmax = max(abs(int(bb.min())), abs(int(bb.max())))
                        if amax * bmax >= _BIG:
                            self._bail(
                                "integer product exceeds the vector range"
                            )
                return {"+": np.add, "-": np.subtract, "*": np.multiply}[op](a, b)
            fa = a.astype(np.float64) if left.kind == "integer" else a
            fb = b.astype(np.float64) if right.kind == "integer" else b
            return {"+": np.add, "-": np.subtract, "*": np.multiply}[op](fa, fb)
        if op == "/":
            if both_int:
                if np.any(b[mask] == 0):
                    self._bail("integer division by zero in the block")
                return self._int_div(a, b)
            fa = a.astype(np.float64) if left.kind == "integer" else a
            fb = b.astype(np.float64) if right.kind == "integer" else b
            if np.any(fb[mask] == 0.0):
                self._bail("division by zero in the block")
            return fa / np.where(fb == 0.0, 1.0, fb)
        self._bail(f"operator {op!r} not vectorizable")

    def _int_div(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fortran integer division: truncation toward zero."""
        bs = np.where(b == 0, 1, b)
        q = np.abs(a) // np.abs(bs)
        return np.where((a >= 0) == (bs >= 0), q, -q)

    def _eval_unary(self, expr: UnaryOp, mask: np.ndarray) -> _Val:
        self._charge("flops", mask)
        val = self.eval_expr(expr.operand, mask)
        if expr.op == "not":
            return _Val((val.vec == 0).astype(_I64), "integer", val.atoms)
        if val.kind == "integer":
            self._guard_int_range(val.vec, mask, "negation")
        return _Val(-val.vec, val.kind, val.atoms)

    def _eval_call(self, expr: Call, mask: np.ndarray) -> _Val:
        self._charge("intrinsics", mask)
        args = [self.eval_expr(arg, mask) for arg in expr.args]
        atoms: tuple = ()
        for arg in args:
            atoms = _merge_atoms(atoms, arg.atoms)
        vec, kind = self._apply_intrinsic(expr.func, args, mask)
        return _Val(vec, kind, atoms)

    def _apply_intrinsic(self, func: str, args: list, mask):
        if func == "abs":
            (x,) = args
            if x.kind == "integer":
                self._guard_int_range(x.vec, mask, "abs()")
            return np.abs(x.vec), x.kind
        if func == "sqrt":
            (x,) = args
            v = x.vec.astype(np.float64) if x.kind == "integer" else x.vec
            if np.any(v[mask] < 0):
                self._bail("sqrt of a negative value in the block")
            return np.sqrt(np.where(v < 0, 0.0, v)), "real"
        if func == "floor":
            (x,) = args
            if x.kind == "integer":
                return x.vec, "integer"
            act = x.vec[mask]
            if act.size:
                if not np.all(np.isfinite(act)):
                    self._bail("non-finite value in floor()")
                if float(np.abs(act).max()) >= float(_BIG):
                    self._bail("floor() magnitude exceeds the vector range")
            return (
                np.floor(np.where(mask, x.vec, 0.0)).astype(_I64),
                "integer",
            )
        if func == "int":
            (x,) = args
            return self._cast_to_int(x, mask, "int()"), "integer"
        if func == "real":
            (x,) = args
            if x.kind == "integer":
                return x.vec.astype(np.float64), "real"
            return x.vec, "real"
        if func == "sign":
            x, y = args
            if x.kind == "integer" and y.kind == "integer":
                self._guard_int_range(x.vec, mask, "sign()")
                return np.where(y.vec >= 0, np.abs(x.vec), -np.abs(x.vec)), "integer"
            fx = x.vec.astype(np.float64) if x.kind == "integer" else x.vec
            fy = y.vec.astype(np.float64) if y.kind == "integer" else y.vec
            return np.where(fy >= 0, np.abs(fx), -np.abs(fx)), "real"
        if func == "mod":
            x, y = args
            if np.any(y.vec[mask] == 0):
                self._bail("mod with zero divisor in the block")
            if x.kind == "integer" and y.kind == "integer":
                self._guard_int_range(x.vec, mask, "mod()")
                self._guard_int_range(y.vec, mask, "mod()")
                q = self._int_div(x.vec, y.vec)
                return x.vec - q * np.where(y.vec == 0, 1, y.vec), "integer"
            fx = x.vec.astype(np.float64) if x.kind == "integer" else x.vec
            fy = y.vec.astype(np.float64) if y.kind == "integer" else y.vec
            return np.fmod(fx, np.where(fy == 0.0, 1.0, fy)), "real"
        if func in ("min", "max"):
            # Python's variadic min/max: first-wins on ties, NaNs keep
            # the current accumulator — exactly the where() fold below.
            kinds = {arg.kind for arg in args}
            if len(kinds) > 1:
                self._bail(f"{func}() over mixed integer/real arguments")
            acc = args[0].vec
            for arg in args[1:]:
                if func == "min":
                    acc = np.where(arg.vec < acc, arg.vec, acc)
                else:
                    acc = np.where(arg.vec > acc, arg.vec, acc)
            return acc, args[0].kind
        self._bail(f"intrinsic {func!r} is not vectorizable")

    # -- statements ----------------------------------------------------------

    def exec_block(self, body: list[Stmt], mask: np.ndarray) -> None:
        for stmt in body:
            self.exec_stmt(stmt, mask)

    def exec_stmt(self, stmt: Stmt, mask: np.ndarray) -> None:
        if not mask.any():
            return
        if isinstance(stmt, Assign):
            self._exec_assign(stmt, mask)
        elif isinstance(stmt, If):
            self._charge("branches", mask)
            cond = self.eval_flushed(stmt.cond, mask)
            taken = mask & (cond.vec != 0)
            self.exec_block(stmt.then_body, taken)
            self.exec_block(stmt.else_body, mask & ~taken)
        elif isinstance(stmt, Do):
            self._exec_do(stmt, mask)
        else:
            self._bail(f"cannot vectorize {type(stmt).__name__}")

    def _set_scalar(
        self, name, val: _Val, mask, *, charge: bool, clear_taints: bool,
        log: bool = True, seq: int | None = None,
    ) -> None:
        """The scalar-assignment kernel shared by assigns and do-vars."""
        state = self._scalar_state(name)
        if charge:
            self._charge("scalar_ops", mask)
        cast = self._cast_to_kind(val, state.kind, mask, f"scalar {name!r}")
        if mask is self._full:
            # all-lane assignment: the surviving taints are exactly the
            # value's (created under this same mask), and every lane is
            # assigned afterwards.
            state.vec = cast.copy()
            state.assigned = self._full
            state.assigned_all = True
            if clear_taints:
                state.atoms = val.atoms
        else:
            state.vec = np.where(mask, cast, state.vec)
            if not state.assigned_all:
                state.assigned = state.assigned | mask
                state.assigned_all = bool(state.assigned.all())
            if clear_taints:
                state.atoms = _mask_atoms(state.atoms, ~mask) + _mask_atoms(
                    val.atoms, mask
                )
        if log:
            sel = self._sel_of(mask)
            if sel.size:
                self.scalar_events.append(
                    (name,
                     self._next_seq() if seq is None else seq,
                     sel, state.vec[sel].copy())
                )

    def _exec_assign(self, stmt: Assign, mask: np.ndarray) -> None:
        target = stmt.target
        if isinstance(target, Var):
            if target.name in self.scalar_reductions:
                self._exec_scalar_reduction(stmt, mask)
                return
            val = self.eval_expr(stmt.expr, mask)
            self._set_scalar(
                target.name, val, mask, charge=True, clear_taints=True
            )
            return
        name = target.name
        if self.redux_refs.get(target.ref_id) is not None:
            self._exec_array_reduction(stmt, target, mask)
            return
        idx = self.eval_index(target.index, mask)
        val = self.eval_flushed(stmt.expr, mask)
        self._charge("mem_writes", mask)
        size = self.sizes.get(name)
        act = idx[mask]
        if act.size and (int(act.min()) < 1 or int(act.max()) > size):
            self._bail(f"subscript of {name!r} out of bounds")
        idx0 = idx - 1
        if self._route(name, target.ref_id) != "private":
            self._bail(
                f"store to untransformed shared array {name!r} "
                "(cross-iteration visibility)"
            )
        state = self._private_state(name)
        kind = self.kinds[name]
        cast = self._cast_to_kind(val, kind, mask, f"store to {name!r}")
        sel = self._sel_of(mask)
        if sel.size:
            state.scratch[sel, idx0[sel]] = cast[sel]
            state.written[sel, idx0[sel]] = True
            state.writes.append((sel, idx0[sel], cast[sel], self._next_seq()))
        if name in self.tested:
            self._emit(name, idx0, mask, KIND_WRITE)

    def _exec_array_reduction(self, stmt: Assign, target: ArrayRef, mask) -> None:
        """A direct reduction update ``A(e) = A(e) op rest`` (validated by
        the classifier): contributions are logged for an exec-order fold
        into the per-processor partials, with the compiled engine's exact
        evaluation order, costs and mark stream."""
        name = target.name
        op = self.redux_refs[target.ref_id]
        opcode = OP_CODES[op]
        size = self.sizes[name]
        idx = self.eval_index(target.index, mask)
        act = idx[mask]
        if act.size and (int(act.min()) < 1 or int(act.max()) > size):
            self._bail(f"subscript of {name!r} out of bounds")
        idx0 = idx - 1

        # RHS evaluation order: the top-level BinOp charges a flop, then
        # its operands evaluate left-to-right (the self reference as a
        # marked reduction load, the other operand as the contribution).
        expr = stmt.expr
        self._charge("flops", mask)

        def is_self(node) -> bool:
            return (
                isinstance(node, ArrayRef)
                and node.name == name
                and self.redux_refs.get(node.ref_id) is not None
            )

        atoms: tuple = ()
        rest_val = None
        for operand in (expr.left, expr.right):
            if is_self(operand):
                # load_redux: its own subscript evaluation, a charged
                # memory read and a REDUX mark; the loaded running value
                # itself is reproduced by the commit-time fold.
                self_idx = self.eval_index(operand.index, mask)
                self._charge("mem_reads", mask)
                self_act = self_idx[mask]
                if self_act.size and (
                    int(self_act.min()) < 1 or int(self_act.max()) > size
                ):
                    self._bail(f"subscript of {name!r} out of bounds")
                if name in self.tested:
                    self._emit(name, self_idx - 1, mask, KIND_REDUX, opcode)
            else:
                rest_val = self.eval_expr(operand, mask)
                atoms = _merge_atoms(atoms, rest_val.atoms)
        # compile_flushed on the RHS: pending reads report here.
        self._flush_atoms(atoms, mask)

        self._charge("mem_writes", mask)
        contrib = rest_val.vec
        if contrib.dtype == _I64:
            contrib = contrib.astype(np.float64)
        if expr.op == "-":
            contrib = -contrib
        sel = self._sel_of(mask)
        if sel.size:
            self.redux_logs.setdefault(name, []).append(
                (sel, idx0[sel], contrib[sel], self._next_seq())
            )
        if name in self.tested:
            self._emit(name, idx0, mask, KIND_REDUX, opcode)

    def _exec_scalar_reduction(self, stmt: Assign, mask: np.ndarray) -> None:
        """A direct scalar reduction ``s = s op rest`` (validated): the
        contribution is logged for a per-processor exec-order fold; the
        running value is never materialized per lane."""
        name = stmt.target.name
        expr = stmt.expr
        self._charge("flops", mask)  # the update's BinOp
        state = self._scalar_state(name)
        atoms: tuple = ()
        rest_val = None
        form = None
        for side, operand in (("l", expr.left), ("r", expr.right)):
            if isinstance(operand, Var) and operand.name == name and form is None:
                # the self read: charged, taints propagate, value folded.
                self._charge("scalar_ops", mask)
                atoms = _merge_atoms(atoms, state.atoms)
                form = f"s{expr.op}r" if side == "l" else f"r{expr.op}s"
            else:
                rest_val = self.eval_expr(operand, mask)
                atoms = _merge_atoms(atoms, rest_val.atoms)
        self._charge("scalar_ops", mask)  # the assignment itself
        state.atoms = _mask_atoms(state.atoms, ~mask) + _mask_atoms(atoms, mask)
        state.assigned = state.assigned | mask
        sel = self._sel_of(mask)
        if sel.size:
            self.scalar_redux_logs.setdefault(name, []).append(
                (sel, rest_val.vec[sel].copy(), self._next_seq(), form)
            )

    def _exec_do(self, stmt: Do, mask: np.ndarray) -> None:
        start = self._cast_to_int(
            self.eval_flushed(stmt.start, mask), mask, "do bounds"
        )
        stop = self._cast_to_int(
            self.eval_flushed(stmt.stop, mask), mask, "do bounds"
        )
        if stmt.step is not None:
            step = self._cast_to_int(
                self.eval_flushed(stmt.step, mask), mask, "do bounds"
            )
        else:
            step = np.ones(self.R, dtype=_I64)
        if np.any(step[mask] == 0):
            self._bail("nested do loop with zero step")
        kind = self.kinds.get(stmt.var)
        if kind is None:
            self._bail(f"undeclared scalar {stmt.var!r}")
        self._guard_int_range(start, mask, "do bounds")
        self._guard_int_range(stop, mask, "do bounds")
        self._guard_int_range(step, mask, "do bounds")
        step_safe = np.where(step == 0, 1, step)
        trip = np.maximum(0, (stop - start) // step_safe + 1)
        trip = np.where(mask, trip, 0)
        max_trip = int(trip.max()) if trip.size else 0
        if max_trip > _NESTED_TRIP_CAP:
            self._bail("nested do loop exceeds the lockstep step budget")
        for t in range(max_trip):
            active = mask & (t < trip)
            value = start + t * step_safe
            val = _Val(value, "integer")
            # Like the scalar engines, setting the do variable does NOT
            # clear a pending taint it may hold.
            self._set_scalar(
                stmt.var, val, active, charge=True, clear_taints=False
            )
            self.exec_block(stmt.body, active)
        # Fortran one-past exit value (uncharged).
        final = _Val(start + trip * step_safe, "integer")
        self._set_scalar(stmt.var, final, mask, charge=False, clear_taints=False)

    # -- the block run -------------------------------------------------------

    def run(self) -> list[tuple[int, IterationCost]]:
        R = self.R
        if R == 0:
            return []
        var_kind = self.kinds.get(self.loop.var)
        if var_kind is None:
            self._bail(f"undeclared loop variable {self.loop.var!r}")
        vals = np.asarray(
            [self.values[int(p)] for p in self.positions], dtype=_I64
        )
        # run_iteration's uncharged loop-variable set.
        self._set_scalar(
            self.loop.var, _Val(vals, "integer"),
            self._full, charge=False, clear_taints=False, seq=-1,
        )

        self.exec_block(self.loop.body, self._full)

        # live-out flush: pending reads held by live-out scalars report
        # at iteration end, before the batched marks apply.
        if self.tested:
            for name in self.live_out_scalars:
                state = self.scalar_states.get(name)
                if state is not None and state.atoms:
                    self._flush_atoms(state.atoms, self._full)
                    state.atoms = ()

        staged = self._stage_shadows()
        self._check_private_dependences()

        # -------- point of no return: commit everything -----------------
        if self.marker is not None:
            for shadow, batch in staged:
                shadow.commit_batch(batch)
        self._commit_privates()
        self._commit_partials()
        self._commit_scalar_reductions()
        self._commit_scalar_finals()
        if not self.need_costs:
            return []
        return self._iteration_costs()

    # -- staging checks ------------------------------------------------------

    def _stage_shadows(self):
        if self.marker is None or not self.emissions:
            return []
        span = self.seq + 2
        if (int(self.row_rank.max()) + 1) * span >= _BIG:
            self._bail("mark-rank key exceeds the vector range")
        per_array: dict[str, list] = {}
        for name, sel, idx0, kind, opcode, seq in self.emissions:
            per_array.setdefault(name, []).append((sel, idx0, kind, opcode, seq))
        staged = []
        would_fail = False
        for name, events in per_array.items():
            lengths = np.asarray(
                [sel.size for sel, _i, _k, _o, _s in events], dtype=_I64
            )
            lanes = np.concatenate([sel for sel, _i, _k, _o, _s in events])
            kinds = np.repeat(
                np.asarray([k for _s, _i, k, _o, _q in events], dtype=_I64),
                lengths,
            )
            idx = np.concatenate([i for _s, i, _k, _o, _q in events])
            ops = np.repeat(
                np.asarray([o for _s, _i, _k, o, _q in events], dtype=_I64),
                lengths,
            )
            grans = self.granule[lanes]
            rank = self.row_rank[lanes] * span + np.repeat(
                np.asarray([q for _s, _i, _k, _o, q in events], dtype=_I64),
                lengths,
            )
            shadow = self.marker.shadows[name]
            batch = shadow.stage_stream_vec(
                kinds, idx, ops, grans, rank, kernels=self.kernels
            )
            would_fail = would_fail or batch.would_fail
            staged.append((shadow, batch))
        if would_fail:
            self._bail("eager speculation failure inside the block")
        return staged

    def _check_private_dependences(self) -> None:
        """A private element read from the pre-block base must not have
        been written by an *earlier* iteration of the same virtual
        processor — that value would be carried, which the lanes cannot
        see.  (Same-iteration reads were forwarded from the lane's own
        scratch row and never reach the base.)"""
        for name, state in self.private_states.items():
            if not state.base_reads or not state.writes:
                continue
            first_k = np.full(
                (self.num_procs, state.size), np.iinfo(_I64).max, dtype=_I64
            )
            for sel, idx0, _vals, _seq in state.writes:
                np.minimum.at(first_k, (self.proc_of[sel], idx0), self.k_of[sel])
            for sel, idx0 in state.base_reads:
                if np.any(first_k[self.proc_of[sel], idx0] < self.k_of[sel]):
                    self._bail(
                        f"cross-iteration private dependence on {name!r}"
                    )

    # -- commits -------------------------------------------------------------

    def _commit_privates(self) -> None:
        for name, state in self.private_states.items():
            if not state.writes:
                continue
            copies = self.privates[name]
            rows = np.concatenate([sel for sel, _i, _v, _s in state.writes])
            idx0 = np.concatenate([i for _s, i, _v, _q in state.writes])
            vals = np.concatenate([v for _s, _i, v, _q in state.writes])
            seqs = np.concatenate(
                [np.full(sel.size, seq, dtype=_I64)
                 for sel, _i, _v, seq in state.writes]
            )
            procs = self.proc_of[rows]
            ks = self.k_of[rows]
            order = np.lexsort((seqs, ks, idx0, procs))
            if self.kernels is not None and copies._rows is None:
                # Native scatter: every sorted event is written, the
                # last write per (proc, element) wins — the same final
                # state the group-last winner scatter leaves.
                self.kernels.scatter_writes(
                    procs[order], idx0[order], vals[order],
                    self.positions[rows[order]],
                    copies.data, copies.wstamp,
                )
                continue
            group_last = np.ones(order.size, dtype=bool)
            group_last[:-1] = (procs[order][1:] != procs[order][:-1]) | (
                idx0[order][1:] != idx0[order][:-1]
            )
            win = order[group_last]
            copies.data[procs[win], idx0[win]] = vals[win]
            copies.wstamp[procs[win], idx0[win]] = self.positions[rows[win]]
            if copies._rows is not None:  # keep a materialized mirror honest
                for w in win:
                    copies._rows[int(procs[w])][int(idx0[w])] = (
                        copies.data[int(procs[w]), int(idx0[w])].item()
                    )

    def _commit_partials(self) -> None:
        for name, events in self.redux_logs.items():
            partial = self.partials[name]
            size = self.sizes[name]
            rows = np.concatenate([sel for sel, _i, _c, _s in events])
            idx0 = np.concatenate([i for _s, i, _c, _q in events])
            contribs = np.concatenate([c for _s, _i, c, _q in events])
            seqs = np.concatenate(
                [np.full(sel.size, seq, dtype=_I64)
                 for sel, _i, _c, seq in events]
            )
            op = self._partial_op(name)
            order = np.lexsort((seqs, self.row_rank[rows]))
            procs = self.proc_of[rows][order]
            elems = idx0[order]
            vals = contribs[order]
            acc = np.full(
                (self.num_procs, size), REDUCTION_IDENTITY[op], dtype=np.float64
            )
            if self.kernels is not None:
                # Native fold in the very same sorted order np.*.at
                # accumulates in — bit-identical float results.
                self.kernels.fold_partials(
                    procs, elems, vals.astype(np.float64, copy=False),
                    acc, OP_CODES[op],
                )
            elif op == "+":
                np.add.at(acc, (procs, elems), vals)
            else:
                np.multiply.at(acc, (procs, elems), vals)
            touched = np.zeros((self.num_procs, size), dtype=bool)
            touched[procs, elems] = True
            maps = partial.proc_maps()
            for proc, elem in zip(*np.nonzero(touched)):
                maps[int(proc)][int(elem)] = (op, float(acc[proc, elem]))

    def _partial_op(self, name: str) -> str:
        # Every redux ref of one array shares one op family (classifier-
        # guaranteed); recover it from the body's update statements.
        ops = set()
        for stmt in walk_statements(self.loop.body):
            if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
                if (
                    stmt.target.name == name
                    and self.redux_refs.get(stmt.target.ref_id) is not None
                ):
                    ops.add(self.redux_refs[stmt.target.ref_id])
        if len(ops) != 1:
            self._bail(f"ambiguous reduction operator for {name!r}")
        return ops.pop()

    def _commit_scalar_reductions(self) -> None:
        for name, events in self.scalar_redux_logs.items():
            kind = self.kinds[name]
            as_kind = int if kind == "integer" else float
            rows = np.concatenate([sel for sel, _c, _s, _f in events])
            seqs = np.concatenate(
                [np.full(sel.size, seq, dtype=_I64)
                 for sel, _c, seq, _f in events]
            )
            contribs = np.concatenate([c for _s, c, _q, _f in events])
            forms = np.concatenate(
                [np.full(sel.size, i, dtype=_I64)
                 for i, (sel, _c, _q, _f) in enumerate(events)]
            )
            form_of = [f for _s, _c, _q, f in events]
            int_contrib = contribs.dtype == _I64
            order = np.lexsort((seqs, self.row_rank[rows]))
            totals = {
                p: self.proc_envs[p].scalars[name] for p in self.procs_present
            }
            for at in order:
                p = int(self.proc_of[rows[at]])
                c = contribs[at]
                c = int(c) if int_contrib else float(c)
                form = form_of[int(forms[at])]
                total = totals[p]
                if form == "s+r" or form == "r+s":
                    total = total + c if form == "s+r" else c + total
                elif form == "s-r":
                    total = total - c
                elif form == "s*r":
                    total = total * c
                else:  # "r*s"
                    total = c * total
                totals[p] = as_kind(total)
            for p, total in totals.items():
                self.proc_envs[p].scalars[name] = total

    def _commit_scalar_finals(self) -> None:
        per_name: dict[str, list] = {}
        for name, seq, sel, vals in self.scalar_events:
            if name in self.scalar_reductions:
                continue
            per_name.setdefault(name, []).append((seq, sel, vals))
        for name, events in per_name.items():
            kind = self.kinds[name]
            as_kind = int if kind == "integer" else float
            rows = np.concatenate([sel for _s, sel, _v in events])
            seqs = np.concatenate(
                [np.full(sel.size, seq, dtype=_I64) for seq, sel, _v in events]
            )
            vals = np.concatenate([v for _s, _sel, v in events])
            procs = self.proc_of[rows]
            order = np.lexsort((seqs, self.row_rank[rows], procs))
            group_last = np.ones(order.size, dtype=bool)
            group_last[:-1] = procs[order][1:] != procs[order][:-1]
            for at in order[group_last]:
                self.proc_envs[int(procs[at])].scalars[name] = as_kind(vals[at])

    def _iteration_costs(self) -> list[tuple[int, IterationCost]]:
        order = np.argsort(self.row_rank, kind="stable")
        positions = self.positions[order].tolist()
        columns = [self.cost[cat][order].tolist() for cat in CATEGORIES]
        return [
            (pos, IterationCost(*row))
            for pos, row in zip(positions, zip(*columns))
        ]
