"""A simulated shared-memory multiprocessor.

The paper evaluates on an 8-processor Alliant FX/80 and a 14-processor
Alliant FX/2800; CPython cannot produce real parallel speedups (GIL), so
this package substitutes a deterministic machine model: interpreter
operation counts are converted to cycles by a :class:`CostModel`,
iterations are scheduled onto ``p`` virtual processors, and every phase
of the run-time framework (checkpointing, marking, the parallel analysis,
reduction merge, copy-out, barriers) is charged its asymptotic cost.
Speedups reported by the benchmarks are ratios of these simulated times.
"""

from repro.machine.costmodel import CostModel, fx80, fx2800
from repro.machine.schedule import ScheduleKind, assign_iterations, makespan
from repro.machine.simulator import DoallSimulator
from repro.machine.stats import TimeBreakdown

__all__ = [
    "CostModel",
    "DoallSimulator",
    "ScheduleKind",
    "TimeBreakdown",
    "assign_iterations",
    "fx80",
    "fx2800",
    "makespan",
]
