"""Cycle-cost model for the simulated machine.

All weights are in abstract cycles.  The defaults are chosen to mirror
the qualitative behaviour the paper reports on the Alliant machines:
marking a reference costs a handful of cycles (address arithmetic plus a
shadow store), barriers and critical sections are expensive relative to
arithmetic, and the analysis/merge phases are linear in the shadow size
divided by the processor count plus a logarithmic combining term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import MachineConfigError
from repro.interp.costs import IterationCost


@dataclass(frozen=True)
class CostModel:
    """Cycle weights of the simulated machine."""

    name: str = "generic"
    num_procs: int = 8

    # per interpreter operation
    flop: float = 1.0
    mem_access: float = 2.0
    scalar_op: float = 0.25
    intrinsic: float = 8.0
    branch: float = 1.0
    mark: float = 4.0

    # scheduling / synchronization
    dispatch_per_iteration: float = 3.0
    barrier_base: float = 200.0
    barrier_per_proc: float = 12.0
    critical_section: float = 60.0

    # speculative-framework phases, per element
    checkpoint_per_element: float = 0.5
    restore_per_element: float = 0.5
    private_init_per_element: float = 0.5
    shadow_init_per_element: float = 0.25
    analysis_per_element: float = 1.0
    reduction_merge_per_element: float = 3.0
    copy_out_per_element: float = 2.0

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise MachineConfigError("a machine needs at least one processor")

    # -- conversions ---------------------------------------------------------

    def iteration_cycles(self, cost: IterationCost) -> float:
        """Cycles for one loop iteration's operation counts."""
        return (
            cost.flops * self.flop
            + (cost.mem_reads + cost.mem_writes) * self.mem_access
            + cost.scalar_ops * self.scalar_op
            + cost.intrinsics * self.intrinsic
            + cost.branches * self.branch
            + cost.marks * self.mark
        )

    def barrier(self, p: int) -> float:
        """Cost of one global barrier among ``p`` processors."""
        return self.barrier_base + self.barrier_per_proc * p

    def parallel_sweep(self, elements: int, p: int, per_element: float) -> float:
        """A fully parallel O(elements/p + log p) phase."""
        if elements <= 0:
            return 0.0
        return per_element * math.ceil(elements / p) + self.barrier_per_proc * math.log2(
            max(p, 2)
        )

    def analysis_time(self, shadow_elements: int, p: int) -> float:
        """The LRPD analysis phase: vector ops over shadows + combining."""
        return self.parallel_sweep(shadow_elements, p, self.analysis_per_element) + self.barrier(p)

    def with_procs(self, p: int) -> "CostModel":
        """The same machine with a different processor count."""
        return replace(self, num_procs=p)


def fx80() -> CostModel:
    """An Alliant FX/80-flavoured machine: 8 processors, pricier memory."""
    return CostModel(
        name="fx80",
        num_procs=8,
        mem_access=2.5,
        barrier_base=250.0,
        barrier_per_proc=15.0,
    )


def fx2800() -> CostModel:
    """An Alliant FX/2800-flavoured machine: 14 faster processors."""
    return CostModel(
        name="fx2800",
        num_procs=14,
        mem_access=2.0,
        barrier_base=180.0,
        barrier_per_proc=10.0,
    )
