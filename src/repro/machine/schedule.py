"""Iteration-to-processor scheduling policies.

Block scheduling is the default: it is what the processor-wise LRPD test
requires (each processor executes its iterations in increasing order) and
what the paper's Fortran library used.  Cyclic and dynamic
(self-scheduling) policies are provided for the load-imbalance ablation.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.errors import MachineConfigError


class ScheduleKind(Enum):
    BLOCK = "block"
    CYCLIC = "cyclic"
    DYNAMIC = "dynamic"


def assign_iterations(
    num_iterations: int,
    num_procs: int,
    kind: ScheduleKind = ScheduleKind.BLOCK,
    costs: Sequence[float] | None = None,
    chunk: int = 1,
) -> list[list[int]]:
    """Assign iteration indices (0-based) to processors.

    Dynamic scheduling simulates a self-scheduling queue using the given
    per-iteration ``costs`` (required): the next chunk goes to the
    processor that becomes free first.
    """
    if num_procs < 1:
        raise MachineConfigError("num_procs must be >= 1")
    if kind is ScheduleKind.BLOCK:
        return _block(num_iterations, num_procs)
    if kind is ScheduleKind.CYCLIC:
        return _cyclic(num_iterations, num_procs)
    if kind is ScheduleKind.DYNAMIC:
        if costs is None:
            raise MachineConfigError("dynamic scheduling needs per-iteration costs")
        return _dynamic(num_iterations, num_procs, costs, chunk)
    raise MachineConfigError(f"unknown schedule kind {kind!r}")


def _block(n: int, p: int) -> list[list[int]]:
    base, extra = divmod(n, p)
    out: list[list[int]] = []
    start = 0
    for proc in range(p):
        count = base + (1 if proc < extra else 0)
        out.append(list(range(start, start + count)))
        start += count
    return out


def _cyclic(n: int, p: int) -> list[list[int]]:
    return [list(range(proc, n, p)) for proc in range(p)]


def _dynamic(n: int, p: int, costs: Sequence[float], chunk: int) -> list[list[int]]:
    import heapq

    free_at = [(0.0, proc) for proc in range(p)]
    heapq.heapify(free_at)
    out: list[list[int]] = [[] for _ in range(p)]
    position = 0
    while position < n:
        time, proc = heapq.heappop(free_at)
        take = list(range(position, min(position + chunk, n)))
        position += len(take)
        out[proc].extend(take)
        heapq.heappush(free_at, (time + sum(costs[i] for i in take), proc))
    return out


def makespan(
    assignment: list[list[int]],
    costs: Sequence[float],
    dispatch_per_iteration: float = 0.0,
) -> float:
    """Parallel completion time: the maximum per-processor load."""
    loads = [
        sum(costs[i] for i in iterations) + dispatch_per_iteration * len(iterations)
        for iterations in assignment
    ]
    return max(loads) if loads else 0.0
