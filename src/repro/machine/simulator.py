"""Doall timing simulation.

Converts per-iteration operation counts into a parallel completion time
under a scheduling policy, and prices the framework phases (checkpoint,
shadow initialization, analysis, merges).  Used by every execution
strategy in :mod:`repro.runtime`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.interp.costs import IterationCost
from repro.machine.costmodel import CostModel
from repro.machine.schedule import ScheduleKind, assign_iterations, makespan


@dataclass(frozen=True)
class DoacrossRecoveryTime:
    """Priced pipelined DOACROSS re-execution of a failed region."""

    total: float          # makespan including dispatch and the final barrier
    chunk: int            # static chunk size used
    chunks: int           # number of chunks dispatched
    sync_waits: int       # post/wait hops where the consumer actually stalled
    sync_wait_cycles: float  # total cycles spent stalled on posts


class DoallSimulator:
    """Prices doall executions and framework phases on one machine."""

    def __init__(self, model: CostModel, schedule: ScheduleKind = ScheduleKind.BLOCK):
        self.model = model
        self.schedule = schedule

    @property
    def num_procs(self) -> int:
        return self.model.num_procs

    def iteration_cycles(self, costs: Sequence[IterationCost]) -> list[float]:
        return [self.model.iteration_cycles(c) for c in costs]

    def serial_time(self, costs: Sequence[IterationCost]) -> float:
        """Serial loop time: straight sum, no dispatch, no barrier."""
        return sum(self.iteration_cycles(costs))

    def doall_time(
        self,
        costs: Sequence[IterationCost],
        *,
        assignment: list[list[int]] | None = None,
    ) -> tuple[float, float, float]:
        """(body, dispatch, barrier) cycles of a doall over ``costs``.

        ``assignment`` overrides the scheduling policy (the executors pass
        the actual assignment they executed with, so timing and semantics
        agree).
        """
        cycles = self.iteration_cycles(costs)
        if assignment is None:
            assignment = assign_iterations(
                len(cycles), self.num_procs, self.schedule, costs=cycles
            )
        body = makespan(assignment, cycles)
        dispatch = self.model.dispatch_per_iteration * max(
            (len(chunk) for chunk in assignment), default=0
        )
        return body, dispatch, self.model.barrier(self.num_procs)

    def doacross_chunk(self, iterations: int, distance: int) -> int:
        """Static chunk size for a pipelined DOACROSS recovery.

        Chunks no larger than the dependence distance keep consecutive
        chunks overlappable (iteration ``i`` waits only on ``i - d``,
        which then lives in an earlier chunk); never fewer than one
        chunk per processor's fair share.
        """
        fair = math.ceil(iterations / max(self.num_procs, 1))
        return max(1, min(distance, fair))

    def doacross_time(
        self,
        costs: Sequence[IterationCost],
        *,
        distance: int,
        chunk: int | None = None,
    ) -> DoacrossRecoveryTime:
        """Price a chunked pipelined DOACROSS over ``costs``.

        Static chunks are assigned round-robin over the processors
        (chunk ``k`` on processor ``k % p``, as
        :func:`repro.baselines.doacross.simulate_doacross` schedules
        single iterations); iteration ``i`` waits until every iteration
        ``<= i - distance`` has completed plus the post/wait
        critical-section hop.  Because chunks are processed in index
        order here, the prefix maximum of completion times makes that
        wait exact even for dependences longer than ``distance``.
        """
        cycles = self.iteration_cycles(costs)
        n = len(cycles)
        p = self.num_procs
        if n == 0:
            return DoacrossRecoveryTime(0.0, 0, 0, 0, 0.0)
        if chunk is None:
            chunk = self.doacross_chunk(n, distance)
        completion = [0.0] * n
        done_upto = [0.0] * n  # prefix max of completion
        proc_free = [0.0] * p
        sync_waits = 0
        sync_wait_cycles = 0.0
        chunks = math.ceil(n / chunk)
        for k in range(chunks):
            proc = k % p
            t = proc_free[proc]
            for i in range(k * chunk, min((k + 1) * chunk, n)):
                start = t + self.model.dispatch_per_iteration
                pred = i - distance
                if pred >= 0:
                    posted = done_upto[pred] + self.model.critical_section
                    if posted > start:
                        sync_waits += 1
                        sync_wait_cycles += posted - start
                        start = posted
                completion[i] = start + cycles[i]
                done_upto[i] = (
                    max(done_upto[i - 1], completion[i]) if i else completion[i]
                )
                t = completion[i]
            proc_free[proc] = t
        total = max(completion) + self.model.barrier(p)
        return DoacrossRecoveryTime(
            total=total,
            chunk=chunk,
            chunks=chunks,
            sync_waits=sync_waits,
            sync_wait_cycles=sync_wait_cycles,
        )

    # -- framework phases ----------------------------------------------------

    def checkpoint_time(self, elements: int) -> float:
        return self.model.parallel_sweep(
            elements, self.num_procs, self.model.checkpoint_per_element
        )

    def restore_time(self, elements: int) -> float:
        return self.model.parallel_sweep(
            elements, self.num_procs, self.model.restore_per_element
        )

    def shadow_init_time(self, elements: int) -> float:
        return self.model.parallel_sweep(
            elements, self.num_procs, self.model.shadow_init_per_element
        )

    def private_init_time(self, elements_per_proc: int) -> float:
        """Private copies are initialized by each processor in parallel."""
        return self.model.private_init_per_element * elements_per_proc

    def analysis_time(self, shadow_elements: int) -> float:
        return self.model.analysis_time(shadow_elements, self.num_procs)

    # -- strip-mined phases --------------------------------------------------
    #
    # The strip pipeline keeps a per-processor touched-element list while
    # marking (R-LRPD style), so the per-strip test and the in-place
    # shadow reset sweep only the elements the strip touched instead of
    # the full shadow size — without it, an s-element shadow analyzed
    # once per strip would cost num_strips times the unstripped analysis
    # and erase the benefit of strip-mining.

    def strip_analysis_time(self, touched_elements: int) -> float:
        """Per-strip LRPD analysis over the strip's touched elements."""
        return self.model.analysis_time(touched_elements, self.num_procs)

    def strip_reset_time(self, touched_elements: int) -> float:
        """In-place shadow reset of the previous strip's touched elements."""
        return self.model.parallel_sweep(
            touched_elements, self.num_procs, self.model.shadow_init_per_element
        )

    def reduction_merge_time(self, touched_elements: int) -> float:
        """Recursive-doubling merge of reduction partials [19, 21]."""
        import math

        if touched_elements == 0:
            return 0.0
        p = self.num_procs
        return (
            self.model.reduction_merge_per_element
            * touched_elements
            * max(1.0, math.log2(max(p, 2)))
            / p
            + self.model.barrier(p)
        )

    def copy_out_time(self, elements: int) -> float:
        return self.model.parallel_sweep(
            elements, self.num_procs, self.model.copy_out_per_element
        )
