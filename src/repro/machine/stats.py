"""Time accounting records produced by the simulated machine."""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class TimeBreakdown:
    """Simulated cycles of one strategy execution, by phase.

    Phases that a strategy does not perform stay at zero; ``total()``
    sums everything.  The per-phase decomposition feeds the overhead
    figures and EXPERIMENTS.md.
    """

    setup: float = 0.0            # pre-loop statements (serial)
    checkpoint: float = 0.0
    shadow_init: float = 0.0
    private_init: float = 0.0
    inspector: float = 0.0        # marking-only inspector traversal
    body: float = 0.0             # parallel loop body (incl. marking)
    dispatch: float = 0.0
    barrier: float = 0.0
    analysis: float = 0.0         # LRPD analysis phase
    reduction_merge: float = 0.0
    copy_out: float = 0.0
    restore: float = 0.0          # rollback after a failed test
    serial_rerun: float = 0.0     # serial re-execution after failure
    doacross: float = 0.0         # pipelined DOACROSS recovery after failure

    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    def overhead(self) -> float:
        """Everything that is not the parallel loop body itself."""
        return self.total() - self.body

    def merged_with(self, other: "TimeBreakdown") -> "TimeBreakdown":
        out = TimeBreakdown()
        for f in fields(TimeBreakdown):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def nonzero_phases(self) -> dict[str, float]:
        return {k: v for k, v in self.as_dict().items() if v > 0.0}


@dataclass
class WallClock:
    """Measured wall-clock seconds of one strategy execution, by phase.

    The *simulated* cycles in :class:`TimeBreakdown` price the modeled
    multiprocessor; these are real ``perf_counter`` durations of the
    host execution, recorded so the measured speedup of the multiprocess
    backend (``engine="parallel"``) can be reported next to — never
    mixed into — the simulated numbers.  The doall phase includes
    shadow/private initialization and, for the parallel engine, task
    dispatch and the cross-processor shadow merge.
    """

    checkpoint: float = 0.0
    doall: float = 0.0
    analysis: float = 0.0
    commit: float = 0.0       # reduction merge + copy-out + scalar fold
    rollback: float = 0.0     # restore + serial re-execution
    jit_compile: float = 0.0  # jit engine's native-kernel warm-up
    signature: float = 0.0    # pattern-signature digest (schedule reuse)

    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    def merged_with(self, other: "WallClock") -> "WallClock":
        out = WallClock()
        for f in fields(WallClock):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class StripRecord:
    """Per-strip accounting of one strip-mined speculative execution.

    One record per strip, in commit order.  ``times`` holds the strip's
    own phase breakdown (checkpoint, body, analysis, and — on failure —
    restore + serial_rerun); the pipeline's whole-loop breakdown is the
    field-wise sum of these, so stripped speedups decompose exactly like
    the unstripped ones in Table 1/2.
    """

    index: int
    first_value: int          # first iteration value of the strip
    iterations: int
    strip_size: int           # the sizer's decision (>= iterations)
    passed: bool
    aborted: bool             # eager detection fired inside the strip
    times: TimeBreakdown
    #: a failed strip re-executed as a pipelined DOACROSS instead of serially.
    recovered: bool = False

    @property
    def time(self) -> float:
        return self.times.total()


@dataclass
class SpeedupPoint:
    """One (processors, speedup) sample of a figure series."""

    procs: int
    speedup: float
    time: float
    breakdown: TimeBreakdown | None = None


@dataclass
class SpeedupSeries:
    """A named speedup-vs-processors series (one figure line)."""

    label: str
    points: list[SpeedupPoint] = field(default_factory=list)

    def add(self, point: SpeedupPoint) -> None:
        self.points.append(point)

    def speedups(self) -> list[float]:
        return [p.speedup for p in self.points]
