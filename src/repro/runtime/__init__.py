"""Execution strategies: serial, speculative doall, inspector/executor.

The orchestrator (:class:`repro.runtime.orchestrator.LoopRunner`) ties
the whole framework together: it compiles the instrumentation plan,
chooses (or is told) a strategy, runs it against the simulated machine
and produces an :class:`repro.runtime.results.ExecutionReport` with the
simulated time breakdown and speedup.
"""

from repro.runtime.adaptive import AdaptivePolicy, AdaptiveRunner
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.results import ExecutionReport, SerialRun

__all__ = [
    "AdaptivePolicy",
    "AdaptiveRunner",
    "ExecutionReport",
    "LoopRunner",
    "RunConfig",
    "SerialRun",
    "Strategy",
]
