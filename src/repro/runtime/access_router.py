"""The speculative memory router.

During a speculative (or post-inspector) doall, array accesses are
redirected according to the transform plan:

* references inside validated reduction statements → the executing
  processor's partial accumulator;
* other references to tested arrays → the processor's private copy
  (copy-in initialized, write-stamped for dynamic last-value assignment);
* everything else → the shared environment.

The executor must call :meth:`set_context` before each iteration.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.privatize import PrivateCopies
from repro.core.reduction_exec import ReductionPartials
from repro.errors import InterpError
from repro.interp.env import Environment


class AccessRouter:
    """A :class:`repro.interp.memory.MemoryModel` with speculation routing."""

    def __init__(
        self,
        env: Environment,
        privates: Mapping[str, PrivateCopies],
        partials: Mapping[str, ReductionPartials],
        redux_refs: Mapping[int, str],
    ):
        self._env = env
        self._privates = privates
        self._partials = partials
        self._redux_refs = redux_refs
        self._proc = 0
        self._iteration = 0

    def set_context(self, proc: int, iteration: int) -> None:
        self._proc = proc
        self._iteration = iteration

    def load(self, array: str, index: int, ref_id: int = -1) -> float | int:
        op = self._redux_refs.get(ref_id)
        if op is not None and array in self._partials:
            offset = self._env.check_index(array, index)
            return self._partials[array].load(self._proc, offset, op)
        copies = self._privates.get(array)
        if copies is not None:
            offset = self._env.check_index(array, index)
            return copies.load(self._proc, offset)
        return self._env.load(array, index)

    def store(self, array: str, index: int, value: float | int, ref_id: int = -1) -> None:
        op = self._redux_refs.get(ref_id)
        if op is not None and array in self._partials:
            offset = self._env.check_index(array, index)
            self._partials[array].store(self._proc, offset, op, value)
            return
        copies = self._privates.get(array)
        if copies is not None:
            offset = self._env.check_index(array, index)
            copies.store(self._proc, offset, value, self._iteration)
            return
        self._env.store(array, index, value)

    def private_elements_per_proc(self) -> int:
        """Private-copy elements each processor initializes (for timing)."""
        return sum(p.size for p in self._privates.values())


def check_router_config(
    privates: Mapping[str, PrivateCopies],
    partials: Mapping[str, ReductionPartials],
    num_procs: int,
) -> None:
    """Validate that all routed structures agree on the processor count."""
    for name, copies in privates.items():
        if copies.num_procs != num_procs:
            raise InterpError(f"private copies of {name!r} sized for wrong p")
    for name, partial in partials.items():
        if partial.num_procs != num_procs:
            raise InterpError(f"reduction partials of {name!r} sized for wrong p")
