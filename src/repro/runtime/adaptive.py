"""Adaptive strategy selection across repeated invocations.

The paper's conclusion: "the decision on when to apply the methods
should make use of run-time collected information about the fully
parallel / not parallel nature of the loop."  This engine implements
that feedback loop for a repeatedly invoked loop:

* start speculative (optimistic, one traversal, as the paper advocates);
* after a failure, prefer inspector/executor when the address slice is
  extractable and cheap — a failing inspector wastes only the slice
  traversal and needs no rollback;
* after ``max_consecutive_failures``, stop testing and run serially
  until the access-pattern signature changes (then optimism resets);
* reuse schedules whenever the pattern signature repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.profile import pattern_signature
from repro.dsl.ast_nodes import Assign, Program
from repro.interp.env import Environment
from repro.machine.costmodel import fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.results import ExecutionReport


class AdaptiveStripSizer:
    """Feedback-driven strip sizing for the strip-mined pipeline.

    Grows the strip geometrically after ``grow_after`` consecutive
    passing strips (per-strip overheads — checkpoint, barrier, analysis —
    amortize better over bigger strips) and halves it after a failure
    (smaller strips bound the serial re-execution loss around a
    dependence cluster).  Sizes stay within ``[min_size, max_size]``.

    Failures shrink no further than :attr:`floor` — normally
    ``min_size``, but a warm-started sizer raises it to the converged
    size history handed it (:meth:`raise_floor`): one unlucky strip
    should not throw away a whole run's worth of convergence.  When the
    history behind that floor goes stale — the profile store reports a
    lifted speculation veto — the caller must :meth:`reset_floor`,
    otherwise the sizer can never shrink below the stale warm size.
    """

    DEFAULT_INITIAL = 16

    def __init__(
        self,
        initial_size: int = DEFAULT_INITIAL,
        *,
        min_size: int = 2,
        max_size: int = 4096,
        grow_after: int = 2,
    ):
        if initial_size < 1:
            raise ValueError("initial strip size must be >= 1")
        if not (1 <= min_size <= max_size):
            raise ValueError("need 1 <= min_size <= max_size")
        if grow_after < 1:
            raise ValueError("grow_after must be >= 1")
        self.size = max(min_size, min(initial_size, max_size))
        self.min_size = min_size
        self.max_size = max_size
        self.grow_after = grow_after
        self.floor = min_size
        self._pass_streak = 0

    def next_size(self) -> int:
        return self.size

    def raise_floor(self, size: int) -> None:
        """Keep failures from shrinking below ``size`` (clamped to the
        sizer's bounds) — the warm-start contract."""
        self.floor = max(self.min_size, min(size, self.max_size))

    def reset_floor(self) -> None:
        """Drop the warm-start floor back to ``min_size`` (stale history)."""
        self.floor = self.min_size

    def record(self, passed: bool) -> None:
        if passed:
            self._pass_streak += 1
            if self._pass_streak >= self.grow_after:
                self.size = min(self.size * 2, self.max_size)
                self._pass_streak = 0
        else:
            self.size = max(self.size // 2, self.floor)
            self._pass_streak = 0


@dataclass(frozen=True)
class AdaptivePolicy:
    """Tunable decision thresholds."""

    #: give up on run-time testing after this many consecutive failures.
    max_consecutive_failures: int = 2
    #: switch to inspector mode after a failure when the slice is at most
    #: this fraction of the loop body (statement-count estimate).
    inspector_slice_threshold: float = 0.6
    #: memoize test outcomes on the pattern signature.
    use_schedule_cache: bool = True
    #: speculate in strips of this size instead of all-or-nothing
    #: (:class:`repro.runtime.orchestrator.Strategy.STRIPPED`); failures
    #: then roll back one strip, so the give-up counter never trips
    #: unless *every* strip of an invocation fails.
    strip_size: int | None = None


@dataclass
class AdaptiveStats:
    """What the engine has learned/done so far."""

    invocations: int = 0
    passes: int = 0
    failures: int = 0
    serial_runs: int = 0
    reuses: int = 0
    strategies: list[str] = field(default_factory=list)
    total_time: float = 0.0


class AdaptiveRunner:
    """Run a loop repeatedly, choosing the strategy from history."""

    def __init__(
        self,
        program: Program,
        inputs: dict,
        *,
        config: RunConfig | None = None,
        policy: AdaptivePolicy | None = None,
    ):
        self.config = config or RunConfig(model=fx80())
        self.policy = policy or AdaptivePolicy()
        self._runner = LoopRunner(program, inputs)
        self.stats = AdaptiveStats()
        self._consecutive_failures = 0
        self._given_up_signature: str | None = None
        if self.policy.use_schedule_cache:
            self.config = _with_cache(self.config)
        if self.policy.strip_size is not None:
            import dataclasses

            self.config = dataclasses.replace(
                self.config, strip_size=self.policy.strip_size
            )

    # -- inputs --------------------------------------------------------------

    @property
    def plan(self):
        return self._runner.plan

    def set_input(self, name: str, value) -> None:
        """Change one input for subsequent invocations."""
        self._runner.inputs[name] = value
        self._runner._serial_runs.clear()  # the oracle must be recomputed

    # -- decision ------------------------------------------------------------

    def choose_strategy(self) -> Strategy:
        """The strategy the next invocation will use (pure decision)."""
        plan = self._runner.plan
        if not plan.parallelizable_scalars:
            return Strategy.SERIAL
        if self._consecutive_failures >= self.policy.max_consecutive_failures:
            if self._signature() == self._given_up_signature:
                return Strategy.SERIAL
            # The pattern changed since we gave up: be optimistic again.
            self._consecutive_failures = 0
            self._given_up_signature = None
        if self._consecutive_failures > 0 and plan.inspector_extractable:
            if self._slice_fraction() <= self.policy.inspector_slice_threshold:
                return Strategy.INSPECTOR
        if self.policy.strip_size is not None:
            return Strategy.STRIPPED
        return Strategy.SPECULATIVE

    def _slice_fraction(self) -> float:
        body = self._runner.plan.loop.body
        assigns = [s for s in _walk(body) if isinstance(s, Assign)]
        if not assigns:
            return 1.0
        in_slice = sum(
            1 for s in assigns if id(s) in self._runner.plan.slice_stmt_ids
        )
        return in_slice / len(assigns)

    def _signature(self) -> str | None:
        env = Environment(self._runner.program, self._runner.inputs)
        return pattern_signature(self._runner.plan, env)

    # -- invocation -------------------------------------------------------------

    def invoke(self) -> ExecutionReport:
        """Run the loop once with the adaptively chosen strategy."""
        strategy = self.choose_strategy()
        report = self._runner.run(strategy, self.config)

        self.stats.invocations += 1
        self.stats.strategies.append(report.strategy)
        self.stats.total_time += report.loop_time
        if report.reused_schedule:
            self.stats.reuses += 1
        if report.passed is None:
            self.stats.serial_runs += 1
        elif report.passed:
            self.stats.passes += 1
            self._consecutive_failures = 0
        else:
            self.stats.failures += 1
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.policy.max_consecutive_failures:
                self._given_up_signature = self._signature()
        return report


def _with_cache(config: RunConfig) -> RunConfig:
    import dataclasses

    return dataclasses.replace(config, use_schedule_cache=True)


def _walk(body):
    from repro.dsl.ast_nodes import Do, If, While

    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk(stmt.then_body)
            yield from _walk(stmt.else_body)
        elif isinstance(stmt, (Do, While)):
            yield from _walk(stmt.body)
