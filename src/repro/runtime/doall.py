"""The emulated speculative doall.

CPython cannot run the iterations on real concurrent processors, so the
doall is *emulated*: iterations are block-assigned to ``p`` virtual
processors and executed in a deterministic round-robin interleaving of
the processors' streams.  Each virtual processor has private scalars
(a forked environment) and, via the access router, private copies of the
tested arrays and partial accumulators for reduction arrays — exactly the
state a real processor would own.  The interleaving preserves each
processor's program order (required by the processor-wise test) while
exercising cross-processor orderings, so any unsoundness in the test
surfaces as a wrong result against the serial oracle (the property tests
rely on this).

Timing is not taken from the emulation's wall clock: per-iteration
operation counts are priced by the machine model and scheduled onto the
virtual processors by :mod:`repro.machine`.

Which *body executor* runs the iterations is an execution-engine choice
resolved through :mod:`repro.runtime.engines`: :func:`run_doall` builds
an engine-independent :class:`~repro.runtime.engines.DoallContext` and
hands it to the registry's dispatcher, which selects the engine
(planning ``"auto"`` per loop) and walks declared fallback chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.instrument import InstrumentationPlan
from repro.core.privatize import PrivateCopies
from repro.core.reduction_exec import COMBINE, REDUCTION_IDENTITY, ReductionPartials
from repro.core.shadow import ShadowMarker
from repro.dsl.ast_nodes import Do, Program
from repro.interp.costs import IterationCost
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.machine.schedule import ScheduleKind
from repro.runtime.serial import loop_iteration_values


@dataclass
class DoallRun:
    """State produced by one emulated doall execution."""

    values: list[int]
    assignment: list[list[int]]  # positions into ``values`` per processor
    iteration_costs: list[IterationCost]
    privates: dict[str, PrivateCopies]
    partials: dict[str, ReductionPartials]
    proc_envs: list[Environment]
    marker: ShadowMarker | None
    scalar_init: dict[str, float | int] = field(default_factory=dict)
    #: eager (on-the-fly) failure detection fired before completion.
    aborted: bool = False
    executed_iterations: int = 0
    #: the engine that actually executed the body (``"vectorized"`` may
    #: degrade to ``"compiled"``; the reason is recorded alongside).
    engine_used: str = "compiled"
    fallback_reason: str | None = None
    #: the ``auto`` planner's recorded rationale (None for explicit
    #: engine requests).
    engine_decision: str | None = None
    #: seconds the jit engine spent warming cold native kernels before
    #: this doall (0.0 on warm keys and for every other engine).
    jit_compile_s: float = 0.0

    @property
    def num_iterations(self) -> int:
        return len(self.values)

    def final_proc(self) -> int | None:
        """The processor that executed the last (serial-order) iteration."""
        best_pos = -1
        best_proc = None
        for proc, positions in enumerate(self.assignment):
            if positions and positions[-1] > best_pos:
                best_pos = positions[-1]
                best_proc = proc
        return best_proc


def run_doall(
    program: Program,
    loop: Do,
    env: Environment,
    plan: InstrumentationPlan,
    num_procs: int,
    *,
    marker: ShadowMarker | None,
    value_based: bool = True,
    schedule: ScheduleKind = ScheduleKind.BLOCK,
    engine: str = "compiled",
    values: list[int] | None = None,
    workers: int | None = None,
    pool=None,
    backend: str = "fork",
    profiles=None,
    loop_key: str | None = None,
    need_costs: bool = True,
) -> DoallRun:
    """Execute the target loop as an emulated doall.

    ``marker`` enables shadow marking (speculative mode); pass None for a
    post-test executor run (inspector/executor mode or schedule reuse).
    ``env`` must be positioned at loop entry; its arrays are mutated
    through the router (shared arrays directly, tested arrays via private
    copies, reduction arrays via partials) — call :func:`finalize_doall`
    to fold private state back in after a successful test.

    ``engine`` names a registered execution engine (see
    :mod:`repro.runtime.engines`): ``"compiled"`` (the closure-compiled
    speculative engine with batched marking), ``"walk"`` (the per-access
    instrumented tree walker), ``"vectorized"`` (the whole-block NumPy
    lowering; classifier-rejected loops and runtime bails walk the
    declared fallback chain to ``"compiled"`` with the reason on the
    outcome), ``"parallel"`` (real worker processes with shared-memory
    shadow sets and the paper's cross-processor merge), or ``"auto"``
    (the per-loop planner, decision recorded on the run).  All produce
    bit-identical state, costs and shadow marks on completed runs.

    ``workers``/``pool`` apply to worker-sharding engines only: a real
    process count (default: one per usable core) or a persistent
    :class:`~repro.runtime.parallel_backend.WorkerPool` to reuse across
    strips.  ``backend`` picks the pool flavour for owned pools:
    ``"fork"`` (processes over shared-memory shadows) or ``"threads"``
    (in-process workers, no fork cost).

    ``values`` overrides the iteration values to execute — the
    strip-mined pipeline passes one strip of the loop's iteration space
    at a time.  When None the loop bounds are evaluated from ``env``
    (the full iteration space).  Granules, private write stamps and the
    returned assignment are positions *within* ``values``; strips
    preserve serial order because each strip's positions follow its
    serial iteration order and strips commit in order.

    ``profiles``/``loop_key`` hand planner engines the caller's
    :class:`~repro.runtime.profile.LoopProfileStore` and the loop
    identity it is keyed by; executing engines ignore both.

    ``need_costs=False`` tells engines the caller will not read
    ``iteration_costs`` (schedule reuse with memoized times); engines
    with separable accounting skip it.
    """
    # Imported lazily: the engine implementations import DoallRun from
    # this module.
    from repro.runtime.engines import DoallContext, execute_doall, get_engine

    get_engine(engine)  # validate before any work starts
    if values is None:
        bounds_interp = Interpreter(program, env, value_based=False)
        start, stop, step = bounds_interp.eval_loop_bounds(loop)
        values = loop_iteration_values(start, stop, step)

    ctx = DoallContext(
        program=program,
        loop=loop,
        env=env,
        plan=plan,
        num_procs=num_procs,
        marker=marker,
        value_based=value_based,
        schedule=schedule,
        values=values,
        workers=workers,
        pool=pool,
        backend=backend,
        profiles=profiles,
        loop_key=loop_key,
        need_costs=need_costs,
    )
    return execute_doall(ctx, engine)


@dataclass
class FinalizeStats:
    """Element counts of the post-test merge phases (for timing)."""

    reduction_merged: int = 0
    copied_out: int = 0


def finalize_doall(
    run: DoallRun,
    env: Environment,
    plan: InstrumentationPlan,
    loop: Do,
) -> FinalizeStats:
    """Fold private state into the shared environment after a passed test.

    Order matters: reduction partials merge first (their elements are then
    excluded from the private copy-out), then dynamic last-value copy-out,
    then scalar reductions and live-out scalars.
    """
    stats = FinalizeStats()

    redux_masks: dict[str, object] = {}
    for name, partials in run.partials.items():
        valid_mask = None
        if run.marker is not None and name in run.marker.shadows:
            valid_mask = run.marker.shadows[name].reduction_mask()
        stats.reduction_merged += partials.merge_into(env.arrays[name], valid_mask)
        size = env.arrays[name].size
        mask = partials.touched_mask(size)
        if valid_mask is not None:
            mask = mask & valid_mask
        redux_masks[name] = mask

    for name, privates in run.privates.items():
        exclude = redux_masks.get(name)
        stats.copied_out += privates.copy_out(env.arrays[name], exclude=exclude)

    for name, op in plan.scalar_reductions.items():
        total = run.scalar_init.get(name, REDUCTION_IDENTITY[op])
        for proc_env in run.proc_envs:
            total = COMBINE[op](total, proc_env.scalars[name])
        env.set_scalar(name, total)

    final_proc = run.final_proc()
    if final_proc is not None:
        source = run.proc_envs[final_proc]
        for name in plan.live_out_scalars:
            if name in plan.scalar_reductions or name not in env.scalars:
                continue
            if name in source.scalars:
                env.set_scalar(name, source.scalars[name])

    if run.values:
        step = run.values[1] - run.values[0] if len(run.values) > 1 else 1
        env.set_scalar(loop.var, run.values[-1] + step)
    return stats
