"""The emulated speculative doall.

CPython cannot run the iterations on real concurrent processors, so the
doall is *emulated*: iterations are block-assigned to ``p`` virtual
processors and executed in a deterministic round-robin interleaving of
the processors' streams.  Each virtual processor has private scalars
(a forked environment) and, via the access router, private copies of the
tested arrays and partial accumulators for reduction arrays — exactly the
state a real processor would own.  The interleaving preserves each
processor's program order (required by the processor-wise test) while
exercising cross-processor orderings, so any unsoundness in the test
surfaces as a wrong result against the serial oracle (the property tests
rely on this).

Timing is not taken from the emulation's wall clock: per-iteration
operation counts are priced by the machine model and scheduled onto the
virtual processors by :mod:`repro.machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.instrument import InstrumentationPlan
from repro.analysis.vectorize import classify_loop
from repro.core.privatize import PrivateCopies
from repro.core.reduction_exec import COMBINE, REDUCTION_IDENTITY, ReductionPartials
from repro.core.shadow import Granularity, ShadowMarker
from repro.dsl.ast_nodes import Do, Program
from repro.errors import InterpError, SpeculationFailed
from repro.interp.compiled_spec import CompiledSpecLoop
from repro.interp.costs import CostCounter, IterationCost
from repro.interp.env import Environment
from repro.interp.events import NullObserver
from repro.interp.vectorized_spec import VectorizeBail, execute_vectorized_block
from repro.interp.interpreter import Interpreter
from repro.machine.schedule import ScheduleKind, assign_iterations
from repro.runtime.access_router import AccessRouter, check_router_config
from repro.runtime.serial import loop_iteration_values


@dataclass
class DoallRun:
    """State produced by one emulated doall execution."""

    values: list[int]
    assignment: list[list[int]]  # positions into ``values`` per processor
    iteration_costs: list[IterationCost]
    privates: dict[str, PrivateCopies]
    partials: dict[str, ReductionPartials]
    proc_envs: list[Environment]
    marker: ShadowMarker | None
    scalar_init: dict[str, float | int] = field(default_factory=dict)
    #: eager (on-the-fly) failure detection fired before completion.
    aborted: bool = False
    executed_iterations: int = 0
    #: the engine that actually executed the body (``"vectorized"`` may
    #: degrade to ``"compiled"``; the reason is recorded alongside).
    engine_used: str = "compiled"
    fallback_reason: str | None = None

    @property
    def num_iterations(self) -> int:
        return len(self.values)

    def final_proc(self) -> int | None:
        """The processor that executed the last (serial-order) iteration."""
        best_pos = -1
        best_proc = None
        for proc, positions in enumerate(self.assignment):
            if positions and positions[-1] > best_pos:
                best_pos = positions[-1]
                best_proc = proc
        return best_proc


def run_doall(
    program: Program,
    loop: Do,
    env: Environment,
    plan: InstrumentationPlan,
    num_procs: int,
    *,
    marker: ShadowMarker | None,
    value_based: bool = True,
    schedule: ScheduleKind = ScheduleKind.BLOCK,
    engine: str = "compiled",
    values: list[int] | None = None,
    workers: int | None = None,
    pool=None,
) -> DoallRun:
    """Execute the target loop as an emulated doall.

    ``marker`` enables shadow marking (speculative mode); pass None for a
    post-test executor run (inspector/executor mode or schedule reuse).
    ``env`` must be positioned at loop entry; its arrays are mutated
    through the router (shared arrays directly, tested arrays via private
    copies, reduction arrays via partials) — call :func:`finalize_doall`
    to fold private state back in after a successful test.

    ``engine`` selects the iteration executor: ``"compiled"`` (the
    closure-compiled speculative engine with batched marking,
    :mod:`repro.interp.compiled_spec`), ``"walk"`` (the per-access
    instrumented tree walker), ``"vectorized"`` (the whole-block NumPy
    lowering with bulk shadow marking,
    :mod:`repro.interp.vectorized_spec`; classifier-rejected loops and
    runtime bails fall through to ``"compiled"`` with the reason on the
    outcome), or ``"parallel"`` (real worker processes with
    shared-memory shadow sets and the paper's cross-processor merge,
    :mod:`repro.runtime.parallel_backend`).  All produce bit-identical
    state, costs and shadow marks on completed runs.

    ``workers``/``pool`` apply to the parallel engine only: a real
    process count (default: one per usable core) or a persistent
    :class:`~repro.runtime.parallel_backend.WorkerPool` to reuse across
    strips.

    ``values`` overrides the iteration values to execute — the
    strip-mined pipeline passes one strip of the loop's iteration space
    at a time.  When None the loop bounds are evaluated from ``env``
    (the full iteration space).  Granules, private write stamps and the
    returned assignment are positions *within* ``values``; strips
    preserve serial order because each strip's positions follow its
    serial iteration order and strips commit in order.
    """
    if engine not in ("compiled", "walk", "parallel", "vectorized"):
        raise InterpError(f"unknown doall engine {engine!r}")
    if engine == "parallel" or (
        engine == "vectorized" and (workers is not None or pool is not None)
    ):
        # Imported lazily: the backend imports DoallRun from this module.
        from repro.runtime.parallel_backend import run_parallel_doall

        return run_parallel_doall(
            program, loop, env, plan, num_procs,
            marker=marker, value_based=value_based, schedule=schedule,
            values=values, workers=workers, pool=pool,
            engine="vectorized" if engine == "vectorized" else "compiled",
        )
    if values is None:
        bounds_interp = Interpreter(program, env, value_based=False)
        start, stop, step = bounds_interp.eval_loop_bounds(loop)
        values = loop_iteration_values(start, stop, step)

    privates = {
        name: PrivateCopies(name, env.arrays[name], num_procs)
        for name in sorted(plan.tested_arrays)
    }
    partials = {
        name: ReductionPartials(name, num_procs)
        for name in sorted(plan.reduction_arrays)
    }
    check_router_config(privates, partials, num_procs)
    router = AccessRouter(env, privates, partials, plan.redux_refs)

    scalar_init = {
        name: env.scalars[name] for name in plan.scalar_reductions if name in env.scalars
    }

    tested = plan.tested_arrays if marker is not None else frozenset()
    proc_envs: list[Environment] = []
    for _proc in range(num_procs):
        proc_env = env.fork_scalars()
        for name, op in plan.scalar_reductions.items():
            proc_env.scalars[name] = REDUCTION_IDENTITY[op]
        proc_envs.append(proc_env)

    # Dynamic self-scheduling cannot be pre-assigned (iteration costs are
    # only known after execution): emulate with a cyclic deal — a fair
    # stand-in for a self-scheduling queue's interleaving — and let the
    # machine model re-price the makespan with the measured costs.
    exec_schedule = (
        ScheduleKind.CYCLIC if schedule is ScheduleKind.DYNAMIC else schedule
    )
    assignment = assign_iterations(len(values), num_procs, exec_schedule)

    fallback_reason: str | None = None
    if engine == "vectorized":
        decision = classify_loop(program, loop, plan)
        if decision:
            try:
                pairs = execute_vectorized_block(
                    program, loop,
                    values=values, positions=range(len(values)),
                    assignment=assignment, num_procs=num_procs,
                    tested=tested, redux_refs=plan.redux_refs,
                    scalar_reductions=plan.scalar_reductions,
                    live_out_scalars=plan.live_out_scalars,
                    value_based=value_based, marker=marker,
                    privates=privates, partials=partials,
                    proc_envs=proc_envs, shared_env=env,
                )
            except VectorizeBail as bail:
                fallback_reason = bail.reason
            else:
                vec_costs = [IterationCost()] * len(values)
                for position, cost in pairs:
                    vec_costs[position] = cost
                return DoallRun(
                    values=values,
                    assignment=assignment,
                    iteration_costs=vec_costs,
                    privates=privates,
                    partials=partials,
                    proc_envs=proc_envs,
                    marker=marker,
                    scalar_init=scalar_init,
                    aborted=False,
                    executed_iterations=len(values),
                    engine_used="vectorized",
                )
        else:
            fallback_reason = decision.reason
        # The whole-block attempt touched nothing: rerun per-iteration on
        # the compiled engine over the very same structures.
        engine = "compiled"

    if engine == "compiled":
        spec = CompiledSpecLoop(
            program, loop,
            tested=tested, value_based=value_based, redux_refs=plan.redux_refs,
            privates=privates, partials=partials, shared_env=env,
        )
        runtimes = [
            spec.new_runtime(proc_env, router, CostCounter(), proc=proc)
            for proc, proc_env in enumerate(proc_envs)
        ]

        def proc_cost(proc: int) -> CostCounter:
            return runtimes[proc].cost

        def execute(proc: int, position: int) -> None:
            rt = runtimes[proc]
            rt.iteration = position
            spec.run_iteration(rt, marker, values[position], plan.live_out_scalars)

    else:
        observer = marker if marker is not None else NullObserver()
        interps = [
            Interpreter(
                program,
                proc_env,
                memory=router,
                observer=observer,
                tested=tested,
                value_based=value_based,
                cost=CostCounter(),
                redux_refs=plan.redux_refs,
            )
            for proc_env in proc_envs
        ]

        def proc_cost(proc: int) -> CostCounter:
            return interps[proc].cost

        def execute(proc: int, position: int) -> None:
            interps[proc].exec_iteration(
                loop, values[position], flush_live_out=plan.live_out_scalars
            )

    iteration_costs: list[IterationCost | None] = [None] * len(values)

    pointers = [0] * num_procs
    remaining = len(values)
    executed = 0
    aborted = False
    while remaining and not aborted:
        for proc in range(num_procs):
            if pointers[proc] >= len(assignment[proc]):
                continue
            position = assignment[proc][pointers[proc]]
            pointers[proc] += 1
            remaining -= 1
            cost = proc_cost(proc)
            router.set_context(proc, position)
            if marker is not None:
                granule = (
                    position
                    if marker.granularity is Granularity.ITERATION
                    else proc
                )
                marker.set_granule(granule)
                marker.cost = cost
            try:
                execute(proc, position)
            except SpeculationFailed:
                # On-the-fly detection: the attempt is over; the partial
                # iteration's cost bracketing is discarded with it.
                aborted = True
                break
            iteration_costs[position] = cost.iteration_costs[-1]
            executed += 1

    done_costs = [c if c is not None else IterationCost() for c in iteration_costs]
    return DoallRun(
        values=values,
        assignment=assignment,
        iteration_costs=done_costs,
        privates=privates,
        partials=partials,
        proc_envs=proc_envs,
        marker=marker,
        scalar_init=scalar_init,
        aborted=aborted,
        executed_iterations=executed,
        fallback_reason=fallback_reason,
    )


@dataclass
class FinalizeStats:
    """Element counts of the post-test merge phases (for timing)."""

    reduction_merged: int = 0
    copied_out: int = 0


def finalize_doall(
    run: DoallRun,
    env: Environment,
    plan: InstrumentationPlan,
    loop: Do,
) -> FinalizeStats:
    """Fold private state into the shared environment after a passed test.

    Order matters: reduction partials merge first (their elements are then
    excluded from the private copy-out), then dynamic last-value copy-out,
    then scalar reductions and live-out scalars.
    """
    stats = FinalizeStats()

    redux_masks: dict[str, object] = {}
    for name, partials in run.partials.items():
        valid_mask = None
        if run.marker is not None and name in run.marker.shadows:
            valid_mask = run.marker.shadows[name].reduction_mask()
        stats.reduction_merged += partials.merge_into(env.arrays[name], valid_mask)
        size = env.arrays[name].size
        mask = partials.touched_mask(size)
        if valid_mask is not None:
            mask = mask & valid_mask
        redux_masks[name] = mask

    for name, privates in run.privates.items():
        exclude = redux_masks.get(name)
        stats.copied_out += privates.copy_out(env.arrays[name], exclude=exclude)

    for name, op in plan.scalar_reductions.items():
        total = run.scalar_init.get(name, REDUCTION_IDENTITY[op])
        for proc_env in run.proc_envs:
            total = COMBINE[op](total, proc_env.scalars[name])
        env.set_scalar(name, total)

    final_proc = run.final_proc()
    if final_proc is not None:
        source = run.proc_envs[final_proc]
        for name in plan.live_out_scalars:
            if name in plan.scalar_reductions or name not in env.scalars:
                continue
            if name in source.scalars:
                env.set_scalar(name, source.scalars[name])

    if run.values:
        step = run.values[1] - run.values[0] if len(run.values) > 1 else 1
        env.set_scalar(loop.var, run.values[-1] + step)
    return stats
