"""Pluggable execution engines behind one registry seam.

Importing this package registers the built-in engines (walk, compiled,
vectorized, jit, parallel, auto); everything else resolves engines through
:data:`registry` — by name for dispatch, by capability for decisions
(worker pools, serial substitution, CLI choices, test
parameterization).  Adding an engine is one module: subclass
:class:`ExecutionEngine`, declare :class:`EngineCaps`, call
``registry.register``, import it here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import InterpError
from repro.runtime.engines.base import (
    DoallContext,
    EngineCaps,
    EngineFallback,
    ExecutionEngine,
    UnknownEngineError,
)
from repro.runtime.engines.planner import (
    EPSILON_PERIOD,
    MIN_OBSERVATIONS,
    MIN_VECTOR_TRIP,
    EnginePlan,
    EnginePlanner,
)
from repro.runtime.engines.registry import EngineRegistry, registry

# Importing the engine modules is what populates the registry.
from repro.runtime.engines import compiled as _compiled  # noqa: E402,F401
from repro.runtime.engines import walk as _walk  # noqa: E402,F401
from repro.runtime.engines import vectorized as _vectorized  # noqa: E402,F401
from repro.runtime.engines import jit as _jit  # noqa: E402,F401
from repro.runtime.engines import parallel as _parallel  # noqa: E402,F401
from repro.runtime.engines import auto as _auto  # noqa: E402,F401
from repro.runtime.engines import doacross as _doacross  # noqa: E402,F401

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.doall import DoallRun

#: the engine a fresh :class:`~repro.runtime.orchestrator.RunConfig` uses.
DEFAULT_ENGINE = "compiled"

#: didactic ordering of the generated docs table (registry order is
#: alphabetical; the docs read reference-first).
_DOC_ORDER = (
    "walk", "compiled", "vectorized", "jit", "parallel", "auto", "doacross"
)


def get_engine(name: str) -> ExecutionEngine:
    """Resolve ``name`` (raises :class:`UnknownEngineError` listing the
    registered engines) — the single engine-validation point."""
    return registry.get(name)


def engine_names() -> list[str]:
    """Registered engine names, sorted (the CLI's ``--engine`` choices)."""
    return registry.names()


def all_engines() -> list[ExecutionEngine]:
    """Registered engines in name order (test parameterization)."""
    return registry.all()


def serial_engine_for(name: str) -> tuple[str, Optional[str]]:
    """See :meth:`EngineRegistry.serial_engine_for`."""
    return registry.serial_engine_for(name)


def needs_worker_pool(name: str, workers: Optional[int]) -> bool:
    """See :meth:`EngineRegistry.needs_worker_pool`."""
    return registry.needs_worker_pool(name, workers)


def recovery_engine() -> ExecutionEngine:
    """The registered post-failure recovery engine (``caps.recovery``).

    The speculative pipeline resolves the recovery tier through this
    capability query instead of naming an engine — the same no-string-
    dispatch seam every other engine decision goes through.
    """
    for engine in registry.all():
        if engine.caps.recovery:
            return engine
    raise UnknownEngineError("no engine declares the recovery capability")


def execute_doall(ctx: DoallContext, name: str) -> "DoallRun":
    """Select, execute, and — on declines — walk the fallback chain.

    This is the one dispatcher behind :func:`repro.runtime.doall.run_doall`:
    ``select`` resolves planners (``auto``) to their per-loop pick, then
    the chosen engine runs; an :class:`EngineFallback` re-dispatches to
    the engine's declared ``caps.fallback`` with the first decline
    reason recorded on the returned run (exactly the old inline
    vectorized→compiled special case, now a declared chain).
    """
    engine, decision = registry.get(name).select(ctx)
    fallback_reason: Optional[str] = None
    current = engine
    while True:
        try:
            run = current.execute_doall(ctx)
            break
        except EngineFallback as decline:
            if fallback_reason is None:
                fallback_reason = decline.reason
            next_name = current.caps.fallback
            if next_name is None:
                raise InterpError(
                    f"engine {current.name!r} declined the loop "
                    f"({decline.reason}) and declares no fallback"
                ) from decline
            current = registry.get(next_name)
    if run.fallback_reason is None:
        run.fallback_reason = fallback_reason
    run.engine_decision = decision
    return run


def render_engine_table() -> str:
    """The README's engine table, generated from the registry.

    One row per registered engine (declared ``summary``/``guarantee``),
    so the docs cannot drift from the code —
    ``tests/integration/test_readme_examples.py`` asserts the README
    matches this output verbatim.
    """
    names = [n for n in _DOC_ORDER if n in registry.names()]
    names += [n for n in registry.names() if n not in names]
    lines = ["| Engine | What it is | Guarantee |", "|---|---|---|"]
    for name in names:
        engine = registry.get(name)
        label = f"`{name}`" + (" (default)" if name == DEFAULT_ENGINE else "")
        lines.append(f"| {label} | {engine.summary} | {engine.guarantee} |")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_ENGINE",
    "DoallContext",
    "EngineCaps",
    "EngineFallback",
    "EnginePlan",
    "EnginePlanner",
    "EngineRegistry",
    "ExecutionEngine",
    "EPSILON_PERIOD",
    "MIN_OBSERVATIONS",
    "MIN_VECTOR_TRIP",
    "UnknownEngineError",
    "all_engines",
    "engine_names",
    "execute_doall",
    "get_engine",
    "needs_worker_pool",
    "recovery_engine",
    "registry",
    "render_engine_table",
    "serial_engine_for",
]
