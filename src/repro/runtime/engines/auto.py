"""The ``auto`` pseudo-engine: registry-resolved adaptive selection.

``auto`` never executes a loop itself — its :meth:`select` hook runs
the :class:`~repro.runtime.engines.planner.EnginePlanner` over the
doall context and hands the dispatcher the chosen engine plus the
recorded reason.  Registering it like any other engine is what makes
``--engine auto`` and ``RunConfig(engine="auto")`` fall out of the
registry with no special cases at the call sites.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.doall import DoallRun
from repro.runtime.engines.base import DoallContext, EngineCaps, ExecutionEngine
from repro.runtime.engines.planner import EnginePlanner
from repro.runtime.engines.registry import registry


class AutoEngine(ExecutionEngine):
    name = "auto"
    caps = EngineCaps(
        supports_workers=True,
        planner=True,
        fallback="compiled",
    )
    summary = (
        "per-loop adaptive selection: a planner picks among the "
        "registered engines — from static signals (classifier verdict, "
        "trip count, worker availability) on cold loops, and from the "
        "loop's recorded profile (per-engine mean doall wall clock, "
        "deterministic epsilon-greedy) once history exists; the decision "
        "and its evidence are recorded on the report (`--verbose`)"
    )
    guarantee = (
        "bit-identical to the engine it picks (engine parity makes any "
        "pick safe)"
    )

    def __init__(self, planner: Optional[EnginePlanner] = None):
        self.planner = planner or EnginePlanner()

    def select(self, ctx: DoallContext) -> tuple[ExecutionEngine, Optional[str]]:
        plan = self.planner.plan(
            ctx.program, ctx.loop, ctx.plan,
            trip_count=len(ctx.values), workers=ctx.workers,
            profiles=ctx.profiles, loop_key=ctx.loop_key,
        )
        return registry.get(plan.engine), plan.reason

    def execute_doall(self, ctx: DoallContext) -> DoallRun:
        # The dispatcher always goes through select(); delegating here
        # keeps direct calls (tests, third-party drivers) working.
        engine, reason = self.select(ctx)
        run = engine.execute_doall(ctx)
        run.engine_decision = reason
        return run


registry.register(AutoEngine())
