"""The execution-engine protocol: capabilities, context, fallback.

Every doall body executor — the reference tree walker, the
closure-compiled fast path, the vectorized whole-block lowering, the
multiprocess backend and the ``auto`` planner — implements
:class:`ExecutionEngine` and registers itself in
:mod:`repro.runtime.engines.registry`.  The rest of the runtime never
compares engine *names*; it asks the registry for an engine object and
queries its declared :class:`EngineCaps`.  That single seam is what
makes a fifth engine a one-file addition: define it, register it, and
the CLI choices, ``RunConfig`` validation, worker-pool decisions,
serial substitution and the equivalence test suites all pick it up.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import InterpError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (doall imports us)
    from repro.analysis.instrument import InstrumentationPlan
    from repro.core.shadow import ShadowMarker
    from repro.dsl.ast_nodes import Do, Program
    from repro.interp.env import Environment
    from repro.machine.costmodel import CostModel
    from repro.machine.schedule import ScheduleKind
    from repro.runtime.doall import DoallRun
    from repro.runtime.results import SerialRun


class UnknownEngineError(InterpError, ValueError):
    """An engine name that no registered engine answers to.

    Doubles as a :class:`ValueError` so construction-time validation
    (``RunConfig``, CLI) and the historic ``run_serial`` contract raise
    a type existing callers already catch.
    """


class EngineFallback(Exception):
    """Raised by an engine that declines the loop (pre-commit, no state
    touched); the dispatcher walks the engine's declared fallback chain
    and records ``reason`` on the resulting run."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class EngineCaps:
    """Declared capabilities of one execution engine.

    These replace every scattered ``engine == "..."`` comparison: call
    sites query the capability they actually care about.
    """

    #: has a serial (non-doall) executor — :meth:`ExecutionEngine.execute_serial`.
    supports_serial: bool = False
    #: can shard the doall across real worker processes (``workers=``/``pool=``).
    supports_workers: bool = False
    #: always runs on the multiprocess backend, even without an explicit
    #: worker count (the "parallel" engine).
    requires_workers: bool = False
    #: consults the static vectorizability classifier before executing.
    needs_classifier: bool = False
    #: executes the loop body as one whole-block lowering rather than
    #: per-iteration dispatch.
    whole_block: bool = False
    #: selects another engine per loop instead of executing itself
    #: (the ``auto`` planner).
    planner: bool = False
    #: a post-failure recovery tier: re-executes a failed LRPD region as
    #: a pipelined DOACROSS instead of running marked doalls itself.
    recovery: bool = False
    #: next engine to try when this one declines a loop
    #: (:class:`EngineFallback`), and the serial substitute when
    #: ``supports_serial`` is false.  ``None`` terminates the chain.
    fallback: Optional[str] = None


@dataclass
class DoallContext:
    """Everything one doall execution needs, engine-independent.

    Built once by :func:`repro.runtime.doall.run_doall` and handed to
    the selected engine; a fallback re-dispatch reuses the same context
    (the declining engine is contractually forbidden from mutating any
    of it pre-commit).
    """

    program: "Program"
    loop: "Do"
    env: "Environment"
    plan: "InstrumentationPlan"
    num_procs: int
    marker: Optional["ShadowMarker"]
    value_based: bool
    schedule: "ScheduleKind"
    #: the iteration values to execute (already resolved: full loop
    #: bounds or one strip of them).
    values: list[int]
    workers: Optional[int] = None
    pool: object = None
    #: worker-pool flavour for sharded execution ("fork" or "threads");
    #: validated by :func:`repro.runtime.parallel_backend.validate_backend`.
    backend: str = "fork"
    #: the caller's :class:`~repro.runtime.profile.LoopProfileStore`
    #: (None when no history is available) — planner engines consult its
    #: per-engine observations; executing engines ignore it.
    profiles: object = None
    #: the loop identity the profiles are keyed by.
    loop_key: Optional[str] = None
    #: False when the caller will not read ``iteration_costs`` off the
    #: run (schedule reuse with memoized times): engines whose cost
    #: accounting is separable from execution may skip it and return an
    #: empty cost list.  Engines with accounting interleaved into
    #: execution simply ignore the hint.
    need_costs: bool = True


class ExecutionEngine(abc.ABC):
    """One doall body executor.

    Subclasses set :attr:`name`, :attr:`caps` and the documentation
    strings (the README engine table is generated from them), implement
    :meth:`execute_doall`, and — when ``caps.supports_serial`` —
    :meth:`execute_serial`.  ``select`` is the planner hook: the default
    engine selects itself.
    """

    #: registry key and user-facing ``--engine`` value.
    name: str = ""
    caps: EngineCaps = EngineCaps()
    #: one-line description for generated docs (README engine table).
    summary: str = ""
    #: the parity/performance contract for generated docs.
    guarantee: str = ""

    def select(self, ctx: DoallContext) -> tuple["ExecutionEngine", Optional[str]]:
        """Resolve the engine that should execute ``ctx``.

        Returns ``(engine, reason)``; non-planner engines return
        themselves with no reason, the ``auto`` planner returns its
        per-loop pick and the recorded rationale.
        """
        return self, None

    @abc.abstractmethod
    def execute_doall(self, ctx: DoallContext) -> "DoallRun":
        """Execute the marked doall; raise :class:`EngineFallback` to
        decline (strictly before touching any caller-visible state)."""

    def execute_serial(
        self,
        program: "Program",
        env: "Environment",
        model: "CostModel",
        loop: "Do",
        before: list,
        after: list,
    ) -> "SerialRun":
        """Serial whole-program execution (engines with ``supports_serial``)."""
        raise UnknownEngineError(
            f"engine {self.name!r} has no serial executor"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<engine {self.name!r}>"
