"""The closure-compiled engine (``engine="compiled"``, the default).

The loop body is compiled once into per-node closures with direct
structure binding and batched shadow marking
(:mod:`repro.interp.compiled_spec`); iterations then run without tree
dispatch.  Bit-identical to the walker on every observable — state,
operation counts, shadow marks — just faster.
"""

from __future__ import annotations

from repro.interp.compiled_spec import CompiledSpecLoop
from repro.interp.costs import CostCounter
from repro.interp.interpreter import Interpreter
from repro.machine.costmodel import CostModel
from repro.runtime.engines.base import DoallContext, EngineCaps
from repro.runtime.engines.emulated import EmulatedEngine, EmulationState
from repro.runtime.engines.registry import registry
from repro.runtime.results import SerialRun
from repro.runtime.serial import loop_iteration_values


class CompiledEngine(EmulatedEngine):
    name = "compiled"
    caps = EngineCaps(supports_serial=True)
    summary = "per-node compiled closures, batched shadow marking"
    guarantee = "bit-identical to `walk`, ~2x faster"

    def _executors(self, ctx: DoallContext, state: EmulationState):
        spec = CompiledSpecLoop(
            ctx.program, ctx.loop,
            tested=state.tested, value_based=ctx.value_based,
            redux_refs=ctx.plan.redux_refs,
            privates=state.privates, partials=state.partials,
            shared_env=ctx.env,
        )
        runtimes = [
            spec.new_runtime(proc_env, state.router, CostCounter(), proc=proc)
            for proc, proc_env in enumerate(state.proc_envs)
        ]

        def proc_cost(proc: int) -> CostCounter:
            return runtimes[proc].cost

        def execute(proc: int, position: int) -> None:
            rt = runtimes[proc]
            rt.iteration = position
            spec.run_iteration(
                rt, ctx.marker, ctx.values[position], ctx.plan.live_out_scalars
            )

        return proc_cost, execute

    def execute_serial(
        self, program, env, model: CostModel, loop, before, after
    ) -> SerialRun:
        from repro.interp.compiled import compile_program

        compiled = compile_program(program)

        setup_cost = CostCounter()
        compiled.run_statements(before, env, setup_cost)
        setup_time = model.iteration_cycles(setup_cost.total())

        bounds_interp = Interpreter(program, env, value_based=False)
        start, stop, step = bounds_interp.eval_loop_bounds(loop)
        # Bound evaluation is re-done by the walker for simplicity; undo
        # its count contribution by using a throwaway counter (already
        # the case: the walker gets a fresh default counter here).
        values = loop_iteration_values(start, stop, step)
        loop_cost = CostCounter()
        compiled.run_loop(loop, env, loop_cost, values)
        env.set_scalar(loop.var, (values[-1] + step) if values else start)

        teardown_cost = CostCounter()
        compiled.run_statements(after, env, teardown_cost)
        teardown_time = model.iteration_cycles(teardown_cost.total())

        iteration_costs = list(loop_cost.iteration_costs)
        return SerialRun(
            env=env,
            loop_iteration_costs=iteration_costs,
            loop_time=sum(model.iteration_cycles(c) for c in iteration_costs),
            setup_time=setup_time,
            teardown_time=teardown_time,
            num_iterations=len(values),
            engine=self.name,
        )


registry.register(CompiledEngine())
