"""The speculative DOACROSS recovery engine.

A failed LRPD test no longer has to mean full serial re-execution: the
shadow arrays the test populated already bound every cross-iteration
dependence distance the loop exercised
(:func:`repro.analysis.dependence.measure_shadow_distances`).  When the
minimum measured distance ``d`` exceeds 1, the failed region is
re-executed in serial order — so the final state stays bit-identical to
the rollback path — while the *priced* execution is a chunked, pipelined
DOACROSS: static chunks round-robin over the processors with post/wait
synchronization at distance ``d``, exactly the Saltz/Mirchandaney
discipline :mod:`repro.baselines.doacross` prices for fully inspected
loops.  Anti dependences are covered by the old/new-copy renaming that
discipline assumes; multiply-written elements and distance-≤1 chains
deterministically veto the recovery (the region really is serial).

The engine never runs marked doalls itself — ``execute_doall`` declines
to its fallback — it exists in the registry so capability queries, CLI
choices, the generated docs table and the fallback chains all see the
recovery tier through the same seam as every executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.dependence import DistanceReport
from repro.core.shadow import Granularity
from repro.interp.interpreter import Interpreter
from repro.machine.simulator import DoacrossRecoveryTime
from repro.runtime.engines.base import DoallContext, EngineCaps, EngineFallback, ExecutionEngine
from repro.runtime.engines.registry import registry
from repro.runtime.serial import rerun_values_serially

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsl.ast_nodes import Do, Program
    from repro.interp.env import Environment
    from repro.machine.simulator import DoallSimulator
    from repro.runtime.doall import DoallRun


@dataclass(frozen=True)
class RecoveryRun:
    """One priced DOACROSS re-execution of a failed region."""

    time: DoacrossRecoveryTime
    #: what the plain serial re-run of the same iterations would cost —
    #: the denominator of the recovered fraction.
    serial_equivalent: float
    iterations: int
    distance: int

    @property
    def recovered_fraction(self) -> float:
        """Fraction of the serial re-run cost the pipeline won back."""
        if self.serial_equivalent <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.time.total / self.serial_equivalent)


class DoacrossEngine(ExecutionEngine):
    """Pipelined post/wait re-execution of failed LRPD regions."""

    name = "doacross"
    caps = EngineCaps(recovery=True, fallback="compiled")
    summary = (
        "post-failure recovery tier: re-runs a failed LRPD region as a "
        "chunked pipelined DOACROSS, post/wait at the minimum dependence "
        "distance measured from the shadow stamps"
    )
    guarantee = (
        "bit-identical to serial re-execution; deterministic veto (and "
        "serial rollback) when the measured distance is ≤ 1"
    )

    def execute_doall(self, ctx: DoallContext) -> "DoallRun":
        raise EngineFallback(
            "doacross is a recovery tier, not a doall executor — it only "
            "re-executes regions that already failed the LRPD test"
        )

    # -- recovery protocol ---------------------------------------------------

    def recovery_decision(
        self,
        report: DistanceReport,
        *,
        aborted: bool,
        granularity: Granularity,
    ) -> tuple[int | None, str]:
        """Deterministic go/veto on one failed region's measured distances.

        Returns ``(distance, reason)`` — ``distance`` is None on a veto.
        Every condition is decided from the run the failure came from, so
        the same failure always gets the same verdict.
        """
        if granularity is not Granularity.ITERATION:
            return None, (
                "recovery veto: processor-wise shadow stamps are processor "
                "ids, not iteration numbers — no iteration distances to "
                "synchronize at"
            )
        if aborted:
            return None, (
                "recovery veto: eager detection aborted the attempt, so the "
                "shadow stamps cover only a prefix of the iteration space"
            )
        d = report.min_distance
        if d is None:
            return None, (
                "recovery veto: no cross-iteration dependence was measured "
                "— the failure is an artifact the serial re-run resolves"
            )
        if d <= 1:
            return None, (
                f"recovery veto: measured min dependence distance {d} is a "
                f"fully serial chain ({report.explain()})"
            )
        return d, (
            f"recovery: pipelined DOACROSS at distance {d} over "
            f"{report.num_granules} iteration(s) ({report.explain()})"
        )

    def recover(
        self,
        program: "Program",
        loop: "Do",
        env: "Environment",
        values: list[int],
        step: int,
        sim: "DoallSimulator",
        *,
        distance: int,
    ) -> RecoveryRun:
        """Re-execute ``values`` in place, priced as a pipelined DOACROSS.

        The iterations run serially in serial order — identical state
        effects to the rollback path's
        :func:`~repro.runtime.serial.rerun_values_serially`, which is
        what makes bit-identity unconditional — while the recorded cost
        is the chunked post/wait makespan over the measured per-iteration
        cycles (the emulate-then-price architecture every strategy uses).
        """
        serial_interp = Interpreter(program, env, value_based=False)
        serial_time, costs = rerun_values_serially(
            serial_interp, loop, values, step, sim.model
        )
        priced = sim.doacross_time(costs, distance=distance)
        return RecoveryRun(
            time=priced,
            serial_equivalent=serial_time,
            iterations=len(values),
            distance=distance,
        )


registry.register(DoacrossEngine())
