"""Shared machinery of the in-process (emulated) doall engines.

The walk, compiled and vectorized engines all execute inside one OS
process against the same structures a real processor would own: private
copies of the tested arrays, partial reduction accumulators, forked
per-processor scalar environments and the access router that binds them
together.  :func:`prepare_state` builds that state; :class:`EmulatedEngine`
is the template for the per-iteration engines — subclasses supply the
iteration executor, the deterministic round-robin interleaving and the
eager-abort handling live here, verbatim the semantics
:func:`repro.runtime.doall.run_doall` has always had.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.privatize import PrivateCopies
from repro.core.reduction_exec import REDUCTION_IDENTITY, ReductionPartials
from repro.core.shadow import Granularity
from repro.errors import SpeculationFailed
from repro.interp.costs import CostCounter, IterationCost
from repro.interp.env import Environment
from repro.machine.schedule import ScheduleKind, assign_iterations
from repro.runtime.access_router import AccessRouter, check_router_config
from repro.runtime.doall import DoallRun
from repro.runtime.engines.base import DoallContext, ExecutionEngine


@dataclass
class EmulationState:
    """The per-doall structures shared by every in-process engine."""

    privates: dict[str, PrivateCopies]
    partials: dict[str, ReductionPartials]
    router: AccessRouter
    scalar_init: dict[str, float | int]
    tested: frozenset[str]
    proc_envs: list[Environment]
    assignment: list[list[int]]


def prepare_state(ctx: DoallContext) -> EmulationState:
    """Build private copies, partials, router, per-proc environments and
    the iteration assignment for one emulated doall."""
    env, plan, num_procs = ctx.env, ctx.plan, ctx.num_procs
    privates = {
        name: PrivateCopies(name, env.arrays[name], num_procs)
        for name in sorted(plan.tested_arrays)
    }
    partials = {
        name: ReductionPartials(name, num_procs)
        for name in sorted(plan.reduction_arrays)
    }
    check_router_config(privates, partials, num_procs)
    router = AccessRouter(env, privates, partials, plan.redux_refs)

    scalar_init = {
        name: env.scalars[name]
        for name in plan.scalar_reductions
        if name in env.scalars
    }

    tested = plan.tested_arrays if ctx.marker is not None else frozenset()
    proc_envs: list[Environment] = []
    for _proc in range(num_procs):
        proc_env = env.fork_scalars()
        for name, op in plan.scalar_reductions.items():
            proc_env.scalars[name] = REDUCTION_IDENTITY[op]
        proc_envs.append(proc_env)

    # Dynamic self-scheduling cannot be pre-assigned (iteration costs are
    # only known after execution): emulate with a cyclic deal — a fair
    # stand-in for a self-scheduling queue's interleaving — and let the
    # machine model re-price the makespan with the measured costs.
    exec_schedule = (
        ScheduleKind.CYCLIC if ctx.schedule is ScheduleKind.DYNAMIC
        else ctx.schedule
    )
    assignment = assign_iterations(len(ctx.values), num_procs, exec_schedule)

    return EmulationState(
        privates=privates,
        partials=partials,
        router=router,
        scalar_init=scalar_init,
        tested=tested,
        proc_envs=proc_envs,
        assignment=assignment,
    )


class EmulatedEngine(ExecutionEngine):
    """Template for the per-iteration in-process engines.

    Subclasses implement :meth:`_executors`, returning the pair of
    callbacks the round-robin emulation drives: ``proc_cost(proc)`` (the
    processor's live cost counter) and ``execute(proc, position)`` (run
    one iteration).
    """

    def _executors(
        self, ctx: DoallContext, state: EmulationState
    ) -> tuple[Callable[[int], CostCounter], Callable[[int, int], None]]:
        raise NotImplementedError

    def execute_doall(self, ctx: DoallContext) -> DoallRun:
        state = prepare_state(ctx)
        proc_cost, execute = self._executors(ctx, state)

        values, marker, router = ctx.values, ctx.marker, state.router
        assignment = state.assignment
        iteration_costs: list[IterationCost | None] = [None] * len(values)

        pointers = [0] * ctx.num_procs
        remaining = len(values)
        executed = 0
        aborted = False
        while remaining and not aborted:
            for proc in range(ctx.num_procs):
                if pointers[proc] >= len(assignment[proc]):
                    continue
                position = assignment[proc][pointers[proc]]
                pointers[proc] += 1
                remaining -= 1
                cost = proc_cost(proc)
                router.set_context(proc, position)
                if marker is not None:
                    granule = (
                        position
                        if marker.granularity is Granularity.ITERATION
                        else proc
                    )
                    marker.set_granule(granule)
                    marker.cost = cost
                try:
                    execute(proc, position)
                except SpeculationFailed:
                    # On-the-fly detection: the attempt is over; the
                    # partial iteration's cost bracketing is discarded
                    # with it.
                    aborted = True
                    break
                iteration_costs[position] = cost.iteration_costs[-1]
                executed += 1

        done_costs = [
            c if c is not None else IterationCost() for c in iteration_costs
        ]
        return DoallRun(
            values=values,
            assignment=assignment,
            iteration_costs=done_costs,
            privates=state.privates,
            partials=state.partials,
            proc_envs=state.proc_envs,
            marker=marker,
            scalar_init=state.scalar_init,
            aborted=aborted,
            executed_iterations=executed,
            engine_used=self.name,
        )
