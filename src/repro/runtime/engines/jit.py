"""The native-kernel whole-block engine (``engine="jit"``).

Same lane decomposition as ``vectorized`` — the classifier gates
eligibility, ``_BlockExecutor`` builds the lanes — but the hot inner
loops run as Numba-compiled machine code: the fused shadow-marking
replay and the commit-side private scatter / reduction folds
(:mod:`repro.core.jit_kernels`).  Numba is strictly optional: when the
import or compilation fails the engine raises
:class:`EngineFallback` with the reason and the dispatcher degrades
down the declared chain (``jit -> vectorized -> compiled``), recorded
on ``ExecutionReport.fallbacks``.

The first doall against a cold ``(loop signature, dtype)`` key pays
the njit compile (disk-cached via ``cache=True``); the warm-up ledger
(:data:`repro.runtime.profile.kernel_cache`) remembers warmed keys
and surfaces the seconds paid as ``jit_compile_s`` on the run.
"""

from __future__ import annotations

from repro.analysis.vectorize import classify_loop
from repro.core.jit_kernels import load_kernels, unavailable_reason
from repro.runtime.profile import kernel_cache
from repro.interp.costs import IterationCost
from repro.interp.vectorized_spec import VectorizeBail, execute_vectorized_block
from repro.runtime.doall import DoallRun
from repro.runtime.engines.base import (
    DoallContext,
    EngineCaps,
    EngineFallback,
    ExecutionEngine,
)
from repro.runtime.engines.emulated import prepare_state
from repro.runtime.engines.registry import registry


def jit_ready() -> bool:
    """True when the planner should prefer ``jit`` over ``vectorized``.

    Requires both a loadable kernel set *and* at least one warm
    dispatch key — a cold first run would charge its compile time to
    the loop the planner is trying to speed up.
    """
    return load_kernels() is not None and kernel_cache.any_warm()


def _dispatch_key(ctx: DoallContext) -> str:
    """Cache key covering the loop signature and the tested dtypes."""
    dtypes = ",".join(
        f"{name}:{ctx.env.arrays[name].dtype}"
        for name in sorted(ctx.plan.tested_arrays)
        if name in ctx.env.arrays
    )
    return f"{ctx.loop.var}/{len(ctx.loop.body)}|{dtypes}"


class JitEngine(ExecutionEngine):
    name = "jit"
    caps = EngineCaps(
        supports_workers=True,
        needs_classifier=True,
        whole_block=True,
        fallback="vectorized",
    )
    summary = (
        "the vectorized lanes with the hot inner loops — fused shadow "
        "marking, private scatters, reduction folds — compiled to native "
        "code via Numba `@njit` (optional dependency; absent or failing "
        "compiles fall back to `vectorized` with the reason recorded)"
    )
    guarantee = "bit-identical to `vectorized`; native-speed marking when Numba is present"

    def execute_doall(self, ctx: DoallContext) -> DoallRun:
        kernels = load_kernels()
        if kernels is None:
            raise EngineFallback(
                unavailable_reason() or "native kernels unavailable"
            )

        if ctx.workers is not None or ctx.pool is not None:
            # Shard the lanes onto the worker backend; each worker loads
            # the kernel set in-process and in-shard bails degrade to
            # compiled inside the worker, as for `vectorized`.
            from repro.runtime.parallel_backend import run_parallel_doall

            return run_parallel_doall(
                ctx.program, ctx.loop, ctx.env, ctx.plan, ctx.num_procs,
                marker=ctx.marker, value_based=ctx.value_based,
                schedule=ctx.schedule, values=ctx.values,
                workers=ctx.workers, pool=ctx.pool,
                whole_block=True, use_jit=True, engine_label=self.name,
                backend=ctx.backend,
            )

        decision = classify_loop(ctx.program, ctx.loop, ctx.plan)
        if not decision:
            raise EngineFallback(decision.reason)

        compile_s = kernel_cache.ensure(_dispatch_key(ctx), kernels)

        state = prepare_state(ctx)
        try:
            pairs = execute_vectorized_block(
                ctx.program, ctx.loop,
                values=ctx.values, positions=range(len(ctx.values)),
                assignment=state.assignment, num_procs=ctx.num_procs,
                tested=state.tested, redux_refs=ctx.plan.redux_refs,
                scalar_reductions=ctx.plan.scalar_reductions,
                live_out_scalars=ctx.plan.live_out_scalars,
                value_based=ctx.value_based, marker=ctx.marker,
                privates=state.privates, partials=state.partials,
                proc_envs=state.proc_envs, shared_env=ctx.env,
                kernels=kernels, need_costs=ctx.need_costs,
            )
        except VectorizeBail as bail:
            raise EngineFallback(bail.reason) from None

        vec_costs = [IterationCost()] * len(ctx.values)
        for position, cost in pairs:
            vec_costs[position] = cost
        return DoallRun(
            values=ctx.values,
            assignment=state.assignment,
            iteration_costs=vec_costs,
            privates=state.privates,
            partials=state.partials,
            proc_envs=state.proc_envs,
            marker=ctx.marker,
            scalar_init=state.scalar_init,
            aborted=False,
            executed_iterations=len(ctx.values),
            engine_used=self.name,
            jit_compile_s=compile_s,
        )


registry.register(JitEngine())
