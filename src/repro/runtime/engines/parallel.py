"""The multiprocess engine (``engine="parallel"``).

The marked doall runs on real forked worker processes — each owning a
contiguous block of virtual processors and a shared-memory shadow set —
with the paper's cross-processor merge folding the marks back
(:mod:`repro.runtime.parallel_backend`).  The per-iteration body
executor inside each worker is the compiled engine.
"""

from __future__ import annotations

from repro.runtime.doall import DoallRun
from repro.runtime.engines.base import DoallContext, EngineCaps, ExecutionEngine
from repro.runtime.engines.registry import registry


class ParallelEngine(ExecutionEngine):
    name = "parallel"
    caps = EngineCaps(
        supports_workers=True,
        requires_workers=True,
        fallback="compiled",
    )
    summary = (
        "`multiprocessing` workers (`--workers N`), each marking its own "
        "shadow set in shared memory, OR/sum-merged before analysis"
    )
    guarantee = (
        "bit-identical to `compiled`; real wall-clock speedup on "
        "multi-core hosts"
    )

    def execute_doall(self, ctx: DoallContext) -> DoallRun:
        # Imported lazily: the backend imports DoallRun from the doall
        # module this package plugs into.
        from repro.runtime.parallel_backend import run_parallel_doall

        run = run_parallel_doall(
            ctx.program, ctx.loop, ctx.env, ctx.plan, ctx.num_procs,
            marker=ctx.marker, value_based=ctx.value_based,
            schedule=ctx.schedule, values=ctx.values,
            workers=ctx.workers, pool=ctx.pool,
            whole_block=False, backend=ctx.backend,
        )
        run.engine_used = self.name
        return run


registry.register(ParallelEngine())
