"""Adaptive per-loop engine selection (``engine="auto"``).

The planner turns static signals into an execution-engine pick, made
fresh for every doall (so each strip of a strip-mined run is planned
over its own trip count):

* the vectorize classifier's verdict — an accepted loop runs on the
  whole-block engine, a rejected one records the reject reason;
* the trip count — below :data:`MIN_VECTOR_TRIP` iterations the
  whole-block setup outweighs the lowering, so small (strips of) loops
  stay on the compiled per-iteration engine;
* worker availability — an explicit worker request routes
  classifier-rejected loops to the multiprocess backend instead of the
  single-process compiled engine.

Engine parity makes the pick *safe* by construction: every engine is
bit-identical on all simulated observables, so the planner can only
ever cost wall clock, never correctness — the decision and its reason
are still recorded on the report for scrutiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.instrument import InstrumentationPlan
from repro.analysis.vectorize import classify_loop
from repro.dsl.ast_nodes import Do, Program

#: below this many iterations the whole-block lowering's fixed setup
#: (lane assembly, stream sorting) dominates — stay per-iteration.
MIN_VECTOR_TRIP = 16


@dataclass(frozen=True)
class EnginePlan:
    """One per-loop engine decision and its recorded rationale."""

    engine: str
    reason: str


class EnginePlanner:
    """Pick the execution engine for one (strip of a) loop."""

    def __init__(self, min_vector_trip: int = MIN_VECTOR_TRIP):
        self.min_vector_trip = min_vector_trip

    def plan(
        self,
        program: Program,
        loop: Do,
        plan: InstrumentationPlan,
        *,
        trip_count: int,
        workers: Optional[int] = None,
    ) -> EnginePlan:
        decision = classify_loop(program, loop, plan)
        body_size = len(loop.body)
        if decision:
            if trip_count >= self.min_vector_trip:
                sharding = (
                    f", sharded across {workers} workers"
                    if workers is not None
                    else ""
                )
                # Imported lazily: the engines package imports this
                # module before the engine modules exist.
                from repro.runtime.engines.jit import jit_ready

                if jit_ready():
                    return EnginePlan(
                        "jit",
                        f"classifier accepted whole-block lowering and "
                        f"native kernels are warm (trip count "
                        f"{trip_count}, body {body_size} "
                        f"statements{sharding})",
                    )
                return EnginePlan(
                    "vectorized",
                    f"classifier accepted whole-block lowering "
                    f"(trip count {trip_count}, body {body_size} "
                    f"statements{sharding})",
                )
            return EnginePlan(
                "compiled",
                f"classifier accepted but trip count {trip_count} is below "
                f"the whole-block threshold ({self.min_vector_trip})",
            )
        if workers is not None:
            return EnginePlan(
                "parallel",
                f"classifier rejected whole-block lowering "
                f"({decision.reason}); {workers} workers requested",
            )
        return EnginePlan(
            "compiled",
            f"classifier rejected whole-block lowering ({decision.reason})",
        )
