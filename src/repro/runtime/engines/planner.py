"""Adaptive per-loop engine selection (``engine="auto"``).

The planner turns signals into an execution-engine pick, made fresh for
every doall (so each strip of a strip-mined run is planned over its own
trip count).  Two regimes:

**Cold start** (no usable history): static signals, unchanged from the
original planner —

* the vectorize classifier's verdict — an accepted loop runs on the
  whole-block engine, a rejected one records the reject reason;
* the trip count — below :data:`MIN_VECTOR_TRIP` iterations the
  whole-block setup outweighs the lowering, so small (strips of) loops
  stay on the compiled per-iteration engine;
* worker availability — an explicit worker request routes
  classifier-rejected loops to the multiprocess backend instead of the
  single-process compiled engine.

**Warm** (the caller supplied a
:class:`~repro.runtime.profile.LoopProfileStore` holding at least
:data:`MIN_OBSERVATIONS` timed doall observations for this loop):
deterministic epsilon-greedy over the *capability-eligible* engines —
exploit the engine with the best mean measured doall seconds, and every
:data:`EPSILON_PERIOD`-th decision explore the least-observed eligible
engine instead.  The schedule is deterministic (a per-loop decision
counter, no randomness) so runs are reproducible and the parity tests
can pin down exactly which engine a given decision picks.

Engine parity makes every pick *safe* by construction: engines are
bit-identical on all simulated observables, so the planner can only
ever cost wall clock, never correctness — the decision and its
evidence (observation counts, means, decision number) are still
recorded on the report for scrutiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.instrument import InstrumentationPlan
from repro.analysis.vectorize import classify_loop
from repro.dsl.ast_nodes import Do, Program

#: below this many iterations the whole-block lowering's fixed setup
#: (lane assembly, stream sorting) dominates — stay per-iteration.
MIN_VECTOR_TRIP = 16

#: timed doall observations (across all engines) a loop needs before the
#: planner trusts history over the static signals.
MIN_OBSERVATIONS = 2

#: every Nth planner decision for a loop explores the least-observed
#: eligible engine instead of exploiting the best mean (deterministic
#: epsilon-greedy: epsilon = 1/EPSILON_PERIOD, no randomness).
EPSILON_PERIOD = 8


@dataclass(frozen=True)
class EnginePlan:
    """One per-loop engine decision and its recorded rationale."""

    engine: str
    reason: str


class EnginePlanner:
    """Pick the execution engine for one (strip of a) loop."""

    def __init__(
        self,
        min_vector_trip: int = MIN_VECTOR_TRIP,
        *,
        min_observations: int = MIN_OBSERVATIONS,
        epsilon_period: int = EPSILON_PERIOD,
    ):
        self.min_vector_trip = min_vector_trip
        self.min_observations = min_observations
        self.epsilon_period = epsilon_period

    def plan(
        self,
        program: Program,
        loop: Do,
        plan: InstrumentationPlan,
        *,
        trip_count: int,
        workers: Optional[int] = None,
        profiles=None,
        loop_key: Optional[str] = None,
    ) -> EnginePlan:
        decision = classify_loop(program, loop, plan)
        if profiles is not None and loop_key is not None:
            warm = self._feedback_plan(
                bool(decision), workers=workers,
                profiles=profiles, loop_key=loop_key,
            )
            if warm is not None:
                return warm
        return self._static_plan(
            decision, loop, trip_count=trip_count, workers=workers
        )

    # -- warm regime: history-driven ---------------------------------------

    def _eligible_engines(self, classifier_ok: bool, workers: Optional[int]) -> list[str]:
        """Engines this loop could run on, by declared capability.

        Planners are excluded (no recursion); worker-requiring engines
        need a worker request and a worker request needs a sharding
        engine; classifier-gated engines need an accepting classifier;
        the jit engine additionally needs loadable, warm kernels (a cold
        pick would charge compile time to the loop being planned).
        """
        from repro.runtime.engines.jit import jit_ready
        from repro.runtime.engines.registry import registry

        names = []
        for engine in registry.all():
            caps = engine.caps
            if caps.planner or caps.recovery:
                continue
            if caps.requires_workers and workers is None:
                continue
            if workers is not None and not caps.supports_workers:
                continue
            if caps.needs_classifier and not classifier_ok:
                continue
            if engine.name == "jit" and not jit_ready():
                continue
            names.append(engine.name)
        return sorted(names)

    def _feedback_plan(
        self,
        classifier_ok: bool,
        *,
        workers: Optional[int],
        profiles,
        loop_key: str,
    ) -> Optional[EnginePlan]:
        """The epsilon-greedy pick, or None while history is too thin."""
        eligible = self._eligible_engines(classifier_ok, workers)
        if not eligible:
            return None
        stats = {
            engine: observed
            for engine, observed in profiles.engine_stats(loop_key).items()
            if engine in eligible
        }
        total = sum(count for count, _ in stats.values())
        if total < self.min_observations or not stats:
            return None
        decision_no = profiles.next_decision(loop_key)
        if decision_no % self.epsilon_period == 0:
            target = min(
                eligible, key=lambda e: (stats.get(e, (0, 0.0))[0], e)
            )
            count = stats.get(target, (0, 0.0))[0]
            return EnginePlan(
                target,
                f"feedback: exploring {target!r} (seen {count} of "
                f"{total} timed runs; decision #{decision_no}, exploring "
                f"every {self.epsilon_period}th)",
            )
        best = min(stats, key=lambda e: (stats[e][1], e))
        count, mean = stats[best]
        return EnginePlan(
            best,
            f"feedback: {best!r} has the best mean doall wall clock "
            f"({mean * 1e3:.3f} ms over {count} runs, {total} timed runs "
            f"total; decision #{decision_no})",
        )

    # -- cold regime: static signals ---------------------------------------

    def _static_plan(
        self,
        decision,
        loop: Do,
        *,
        trip_count: int,
        workers: Optional[int],
    ) -> EnginePlan:
        body_size = len(loop.body)
        if decision:
            if trip_count >= self.min_vector_trip:
                sharding = (
                    f", sharded across {workers} workers"
                    if workers is not None
                    else ""
                )
                # Imported lazily: the engines package imports this
                # module before the engine modules exist.
                from repro.runtime.engines.jit import jit_ready

                if jit_ready():
                    return EnginePlan(
                        "jit",
                        f"classifier accepted whole-block lowering and "
                        f"native kernels are warm (trip count "
                        f"{trip_count}, body {body_size} "
                        f"statements{sharding})",
                    )
                return EnginePlan(
                    "vectorized",
                    f"classifier accepted whole-block lowering "
                    f"(trip count {trip_count}, body {body_size} "
                    f"statements{sharding})",
                )
            return EnginePlan(
                "compiled",
                f"classifier accepted but trip count {trip_count} is below "
                f"the whole-block threshold ({self.min_vector_trip})",
            )
        if workers is not None:
            return EnginePlan(
                "parallel",
                f"classifier rejected whole-block lowering "
                f"({decision.reason}); {workers} workers requested",
            )
        return EnginePlan(
            "compiled",
            f"classifier rejected whole-block lowering ({decision.reason})",
        )
