"""The process-wide execution-engine registry.

Engines register themselves at import time (see the sibling modules);
every consumer — ``run_doall`` dispatch, ``run_serial``, ``RunConfig``
validation, the CLI's ``--engine`` choices, the worker-pool decision in
the strip pipeline and the parameterized equivalence suites — resolves
names and capabilities through this one object instead of comparing
strings.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SpeculationError
from repro.runtime.engines.base import ExecutionEngine, UnknownEngineError


class EngineRegistry:
    """Name -> :class:`ExecutionEngine` mapping with capability queries."""

    def __init__(self) -> None:
        self._engines: dict[str, ExecutionEngine] = {}

    # -- registration --------------------------------------------------------

    def register(self, engine: ExecutionEngine) -> ExecutionEngine:
        """Add ``engine`` under its declared name (names are unique)."""
        if not engine.name:
            raise SpeculationError("an execution engine must declare a name")
        if engine.name in self._engines:
            raise SpeculationError(
                f"execution engine {engine.name!r} is already registered"
            )
        self._engines[engine.name] = engine
        return engine

    # -- lookup --------------------------------------------------------------

    def get(self, name: str) -> ExecutionEngine:
        """The engine registered under ``name``.

        Raises :class:`UnknownEngineError` with the registered names in
        the message — the single validation point for user-supplied
        engine strings (``RunConfig``/CLI call this at construction).
        """
        try:
            return self._engines[name]
        except KeyError:
            raise UnknownEngineError(
                f"unknown engine {name!r}; registered engines: "
                f"{', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        """All registered engine names, sorted (CLI choices)."""
        return sorted(self._engines)

    def all(self) -> list[ExecutionEngine]:
        """All registered engines in name order (test parameterization)."""
        return [self._engines[name] for name in self.names()]

    # -- capability walks ----------------------------------------------------

    def fallback_chain(self, name: str) -> list[str]:
        """The declared fallback chain starting at ``name`` (inclusive).

        E.g. ``["vectorized", "compiled"]``: a vectorized decline re-runs
        on compiled.  Cycles are an engine-definition bug and rejected.
        """
        chain: list[str] = []
        current: Optional[str] = name
        while current is not None:
            if current in chain:
                raise SpeculationError(
                    f"engine fallback cycle: {' -> '.join(chain + [current])}"
                )
            engine = self.get(current)
            chain.append(current)
            current = engine.caps.fallback
        return chain

    def serial_engine_for(self, name: str) -> tuple[str, Optional[str]]:
        """The engine to run a *serial* execution requested as ``name``.

        Returns ``(engine name, substitution reason)``; the reason is
        ``None`` when the engine runs serially itself.  Engines without
        a serial executor (parallel has no doall to shard, vectorized no
        block to lower, auto nothing to plan) substitute the first
        serial-capable engine on their declared fallback chain — and the
        substitution is *reported*, not silently dropped.
        """
        for candidate in self.fallback_chain(name):
            if self.get(candidate).caps.supports_serial:
                if candidate == name:
                    return name, None
                return candidate, (
                    f"engine {name!r} has no serial executor; "
                    f"substituted {candidate!r}"
                )
        raise UnknownEngineError(
            f"engine {name!r} has no serial-capable engine on its "
            f"fallback chain"
        )

    def needs_worker_pool(self, name: str, workers: Optional[int]) -> bool:
        """Whether a run of ``name`` with ``workers`` shards onto real
        worker processes (the strip pipeline pre-forks one pool if so)."""
        engine = self.get(name)
        if engine.caps.planner:
            # The planner only picks a sharding engine when workers were
            # explicitly requested (see EnginePlanner).
            return workers is not None
        return engine.caps.requires_workers or (
            engine.caps.supports_workers and workers is not None
        )


#: the process-wide registry; populated by the engine modules' imports
#: in :mod:`repro.runtime.engines`.
registry = EngineRegistry()
