"""The vectorized whole-block engine (``engine="vectorized"``).

Classifier-eligible loops are lowered to NumPy index-vector kernels —
one lane per iteration — with bulk shadow marking
(:mod:`repro.interp.vectorized_spec`).  Rejected loops and runtime
bails raise :class:`EngineFallback` strictly pre-commit; the dispatcher
walks the declared fallback chain (``vectorized -> compiled``) and the
loop reruns per-iteration over fresh, untouched structures.  With an
explicit worker count or pool the block is sharded lane-wise onto the
multiprocess backend instead.
"""

from __future__ import annotations

from repro.analysis.vectorize import classify_loop
from repro.interp.costs import IterationCost
from repro.interp.vectorized_spec import VectorizeBail, execute_vectorized_block
from repro.runtime.doall import DoallRun
from repro.runtime.engines.base import (
    DoallContext,
    EngineCaps,
    EngineFallback,
    ExecutionEngine,
)
from repro.runtime.engines.emulated import prepare_state
from repro.runtime.engines.registry import registry


class VectorizedEngine(ExecutionEngine):
    name = "vectorized"
    caps = EngineCaps(
        supports_workers=True,
        needs_classifier=True,
        whole_block=True,
        fallback="compiled",
    )
    summary = (
        "whole loop body lowered to NumPy index-vector kernels (one lane "
        "per iteration) with bulk shadow marking; a static classifier "
        "gates eligibility, rejects fall back to `compiled` with the "
        "reason reported (`--verbose`)"
    )
    guarantee = "bit-identical to `compiled`, ≥3x faster on eligible loops"

    def execute_doall(self, ctx: DoallContext) -> DoallRun:
        if ctx.workers is not None or ctx.pool is not None:
            # Shard the lanes across real worker processes; in-shard
            # bails degrade to compiled inside the workers and come back
            # on the merged run's fallback fields.
            from repro.runtime.parallel_backend import run_parallel_doall

            return run_parallel_doall(
                ctx.program, ctx.loop, ctx.env, ctx.plan, ctx.num_procs,
                marker=ctx.marker, value_based=ctx.value_based,
                schedule=ctx.schedule, values=ctx.values,
                workers=ctx.workers, pool=ctx.pool,
                whole_block=True, backend=ctx.backend,
            )

        decision = classify_loop(ctx.program, ctx.loop, ctx.plan)
        if not decision:
            raise EngineFallback(decision.reason)

        state = prepare_state(ctx)
        try:
            pairs = execute_vectorized_block(
                ctx.program, ctx.loop,
                values=ctx.values, positions=range(len(ctx.values)),
                assignment=state.assignment, num_procs=ctx.num_procs,
                tested=state.tested, redux_refs=ctx.plan.redux_refs,
                scalar_reductions=ctx.plan.scalar_reductions,
                live_out_scalars=ctx.plan.live_out_scalars,
                value_based=ctx.value_based, marker=ctx.marker,
                privates=state.privates, partials=state.partials,
                proc_envs=state.proc_envs, shared_env=ctx.env,
                need_costs=ctx.need_costs,
            )
        except VectorizeBail as bail:
            # The whole-block attempt touched nothing: the dispatcher
            # reruns per-iteration on the fallback engine over fresh
            # structures built from the very same (unmodified) state.
            raise EngineFallback(bail.reason) from None

        vec_costs = [IterationCost()] * len(ctx.values)
        for position, cost in pairs:
            vec_costs[position] = cost
        return DoallRun(
            values=ctx.values,
            assignment=state.assignment,
            iteration_costs=vec_costs,
            privates=state.privates,
            partials=state.partials,
            proc_envs=state.proc_envs,
            marker=ctx.marker,
            scalar_init=state.scalar_init,
            aborted=False,
            executed_iterations=len(ctx.values),
            engine_used=self.name,
        )


registry.register(VectorizedEngine())
