"""The reference tree-walking engine (``engine="walk"``).

Per-access instrumented interpretation: every load/store/reduction ref
reports itself to the shadow marker as it happens.  This is the
reference semantics every faster engine is property-tested against; it
is kept registered for ablation and equivalence fuzzing.
"""

from __future__ import annotations

from repro.interp.costs import CostCounter
from repro.interp.events import NullObserver
from repro.interp.interpreter import Interpreter
from repro.machine.costmodel import CostModel
from repro.runtime.engines.base import DoallContext, EngineCaps
from repro.runtime.engines.emulated import EmulatedEngine, EmulationState
from repro.runtime.engines.registry import registry
from repro.runtime.results import SerialRun
from repro.runtime.serial import loop_iteration_values


class WalkEngine(EmulatedEngine):
    name = "walk"
    caps = EngineCaps(supports_serial=True)
    summary = "recursive tree walker; per-access shadow marking"
    guarantee = "the reference semantics"

    def _executors(self, ctx: DoallContext, state: EmulationState):
        observer = ctx.marker if ctx.marker is not None else NullObserver()
        interps = [
            Interpreter(
                ctx.program,
                proc_env,
                memory=state.router,
                observer=observer,
                tested=state.tested,
                value_based=ctx.value_based,
                cost=CostCounter(),
                redux_refs=ctx.plan.redux_refs,
            )
            for proc_env in state.proc_envs
        ]

        def proc_cost(proc: int) -> CostCounter:
            return interps[proc].cost

        def execute(proc: int, position: int) -> None:
            interps[proc].exec_iteration(
                ctx.loop, ctx.values[position],
                flush_live_out=ctx.plan.live_out_scalars,
            )

        return proc_cost, execute

    def execute_serial(
        self, program, env, model: CostModel, loop, before, after
    ) -> SerialRun:
        setup_cost = CostCounter()
        interp = Interpreter(program, env, cost=setup_cost, value_based=False)
        interp.exec_block(before)
        setup_time = model.iteration_cycles(setup_cost.total())

        loop_cost = CostCounter()
        interp.cost = loop_cost
        start, stop, step = interp.eval_loop_bounds(loop)
        values = loop_iteration_values(start, stop, step)
        for value in values:
            interp.exec_iteration(loop, value)
        env.set_scalar(loop.var, (values[-1] + step) if values else start)

        teardown_cost = CostCounter()
        interp.cost = teardown_cost
        interp.exec_block(after)
        teardown_time = model.iteration_cycles(teardown_cost.total())

        iteration_costs = list(loop_cost.iteration_costs)
        loop_time = sum(model.iteration_cycles(c) for c in iteration_costs)
        return SerialRun(
            env=env,
            loop_iteration_costs=iteration_costs,
            loop_time=loop_time,
            setup_time=setup_time,
            teardown_time=teardown_time,
            num_iterations=len(values),
            engine=self.name,
        )


registry.register(WalkEngine())
