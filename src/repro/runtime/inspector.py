"""Inspector/executor strategy.

The inspector re-derives the loop's memory-access pattern *without* the
loop's side effects: it executes only the address/control slice (the
statements the subscripts and branch decisions depend on) plus the
marking operations.  That is only possible when the slice contains no
array the loop writes — the paper's TRACK loop is the counterexample, and
:func:`repro.analysis.instrument.build_plan` records the obstacle.

If the test passes, the *executor* runs the loop as an unmarked doall
(still with the privatization/reduction transforms — they are semantic,
not just diagnostic); no checkpoint is ever needed because the inspector
had no side effects and the executor only runs once the pattern is known
safe.  If the test fails, the loop simply runs serially.

Marking in the inspector is reference-based: value-based (LPD) marking
requires the actual data flow, which the inspector does not compute.
This is the documented approximation of the paper's inspector variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.instrument import InstrumentationPlan, require_inspector
from repro.core.lrpd import analyze_shadows
from repro.core.outcomes import LrpdResult, TestMode
from repro.core.shadow import Granularity, ShadowMarker
from repro.dsl.ast_nodes import ArrayRef, Assign, Do, Program, walk_expressions
from repro.errors import InterpError
from repro.interp.costs import CostCounter, IterationCost
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.machine.schedule import ScheduleKind, assign_iterations
from repro.machine.simulator import DoallSimulator
from repro.machine.stats import TimeBreakdown
from repro.runtime.doall import finalize_doall, run_doall
from repro.runtime.serial import loop_iteration_values, rerun_loop_serially


class InspectorScratchMemory:
    """Memory for the inspector: recomputed work arrays go to scratch.

    Arrays the inspector recomputes (per-iteration work arrays feeding
    addresses, e.g. BDNA's ``ind``) are read and written in a private
    scratch copy initialized from the shared state — mirroring the
    copy-in privatized behaviour of the speculative executor.  All other
    arrays are read directly from the (unmodified) environment; the
    inspector never writes them.
    """

    def __init__(self, env: Environment, recompute: frozenset[str]):
        self._env = env
        self._scratch = {name: env.arrays[name].copy() for name in recompute}

    def load(self, array: str, index: int, ref_id: int = -1) -> float | int:
        scratch = self._scratch.get(array)
        if scratch is not None:
            offset = self._env.check_index(array, index)
            return scratch[offset].item()
        return self._env.load(array, index)

    def store(self, array: str, index: int, value: float | int, ref_id: int = -1) -> None:
        scratch = self._scratch.get(array)
        if scratch is None:
            raise InterpError(
                f"inspector attempted to write non-recomputed array {array!r}"
            )
        offset = self._env.check_index(array, index)
        scratch[offset] = value


class InspectorInterpreter(Interpreter):
    """Executes the address/control slice and the marking, nothing else.

    Assignments in the slice run normally (scalar definitions and stores
    to recomputed work arrays, which the scratch memory confines).  Any
    other assignment is reduced to its marking effect: tested-array
    subscripts are evaluated and the references reported, values are
    neither computed nor stored.
    """

    def __init__(self, *args, slice_stmt_ids: frozenset[int], **kwargs):
        kwargs.setdefault("value_based", False)
        super().__init__(*args, **kwargs)
        self._slice_stmt_ids = slice_stmt_ids

    def _exec_assign(self, stmt: Assign) -> None:
        if id(stmt) in self._slice_stmt_ids:
            super()._exec_assign(stmt)
            return
        self._mark_statement(stmt)

    def _mark_statement(self, stmt: Assign) -> None:
        # Reads in the right-hand side come first (read-before-write
        # covering within the iteration must be observed in order).
        for ref in _tested_refs(stmt.expr, self.tested):
            self._mark_ref(ref, is_store=False)
        if isinstance(stmt.target, ArrayRef):
            for ref in _tested_refs(stmt.target.index, self.tested):
                self._mark_ref(ref, is_store=False)
            if stmt.target.name in self.tested:
                self._mark_ref(stmt.target, is_store=True)

    def _mark_ref(self, ref: ArrayRef, is_store: bool) -> None:
        index = self._eval_index(ref.index)
        self.env.check_index(ref.name, index)
        op = self.redux_refs.get(ref.ref_id)
        if op is not None:
            self.observer.on_redux(ref.name, index, op)
        elif is_store:
            self.observer.on_write(ref.name, index)
        else:
            self.observer.on_read(ref.name, index)


def _tested_refs(expr, tested):
    for node in walk_expressions(expr):
        if isinstance(node, ArrayRef) and node.name in tested:
            yield node


@dataclass
class InspectorOutcome:
    """What one inspector/executor run produced."""

    result: LrpdResult
    times: TimeBreakdown
    stats: dict[str, float]
    #: why a requested vectorized executor run degraded to compiled.
    fallback_reason: str | None = None
    #: the engine that executed the executor-phase doall (None when the
    #: test failed and the loop ran serially instead).
    engine_used: str | None = None
    #: the ``auto`` planner's rationale for the executor phase.
    engine_decision: str | None = None


def run_inspector_phase(
    program: Program,
    loop: Do,
    env: Environment,
    plan: InstrumentationPlan,
    num_procs: int,
    *,
    granularity: Granularity = Granularity.ITERATION,
    schedule: ScheduleKind = ScheduleKind.BLOCK,
) -> tuple[ShadowMarker, list[IterationCost], list[list[int]]]:
    """Run the (parallelizable) marking-only inspector traversal."""
    require_inspector(plan)

    shadow_sizes = {name: env.array_size(name) for name in plan.tested_arrays}
    marker = ShadowMarker(shadow_sizes, granularity=granularity)

    bounds_interp = Interpreter(program, env, value_based=False)
    start, stop, step = bounds_interp.eval_loop_bounds(loop)
    values = loop_iteration_values(start, stop, step)
    assignment = assign_iterations(len(values), num_procs, schedule)

    iteration_costs: list[IterationCost] = [IterationCost()] * len(values)
    for proc, positions in enumerate(assignment):
        scratch_env = env.fork_scalars()
        interp = InspectorInterpreter(
            program,
            scratch_env,
            memory=InspectorScratchMemory(env, plan.inspector_recompute_arrays),
            observer=marker,
            tested=plan.tested_arrays,
            cost=CostCounter(),
            redux_refs=plan.redux_refs,
            slice_stmt_ids=plan.slice_stmt_ids,
        )
        for position in positions:
            granule = position if granularity is Granularity.ITERATION else proc
            marker.set_granule(granule)
            marker.cost = interp.cost
            interp.exec_iteration(loop, values[position])
            iteration_costs[position] = interp.cost.iteration_costs[-1]
    return marker, iteration_costs, assignment


def run_inspector_executor(
    program: Program,
    loop: Do,
    env: Environment,
    plan: InstrumentationPlan,
    sim: DoallSimulator,
    *,
    granularity: Granularity = Granularity.ITERATION,
    schedule: ScheduleKind = ScheduleKind.BLOCK,
    dynamic_last_value: bool = True,
    directional: bool = True,
    engine: str = "compiled",
    workers: int | None = None,
    pool=None,
    backend: str = "fork",
    profiles=None,
    loop_key: str | None = None,
) -> InspectorOutcome:
    """Inspector → test → (parallel executor | serial loop).

    ``engine`` selects the executor-phase doall engine (``workers`` is
    its process count when ``"parallel"``, ``pool`` an optional
    caller-owned persistent worker pool); the marking inspector itself
    always runs the sliced tree walker (it executes only the
    address/control slice, which the compiler does not handle).
    """
    times = TimeBreakdown()
    stats: dict[str, float] = {}

    marker, inspector_costs, assignment = run_inspector_phase(
        program, loop, env, plan, sim.num_procs,
        granularity=granularity, schedule=schedule,
    )
    shadow_elements = sum(s.size for s in marker.shadows.values())
    times.shadow_init = sim.shadow_init_time(shadow_elements)
    inspector_body, dispatch, barrier = sim.doall_time(
        inspector_costs, assignment=assignment
    )
    times.inspector = inspector_body + dispatch + barrier
    times.analysis = sim.analysis_time(shadow_elements)
    stats["inspector_marks"] = float(sum(c.marks for c in inspector_costs))

    result = analyze_shadows(
        marker,
        TestMode.LRPD,
        dynamic_last_value=dynamic_last_value,
        directional=directional,
    )

    fallback_reason = None
    engine_used = None
    engine_decision = None
    if result.passed:
        run = run_doall(
            program, loop, env, plan, sim.num_procs,
            marker=None, value_based=False, schedule=schedule, engine=engine,
            workers=workers, pool=pool, backend=backend,
            profiles=profiles, loop_key=loop_key,
        )
        fallback_reason = run.fallback_reason
        engine_used = run.engine_used
        engine_decision = run.engine_decision
        times.private_init = sim.private_init_time(
            sum(p.size for p in run.privates.values())
        )
        body, dispatch, barrier = sim.doall_time(
            run.iteration_costs,
            assignment=None if schedule is ScheduleKind.DYNAMIC else run.assignment,
        )
        times.body, times.dispatch, times.barrier = body, dispatch, barrier
        finalize = finalize_doall(run, env, plan, loop)
        times.reduction_merge = sim.reduction_merge_time(finalize.reduction_merged)
        times.copy_out = sim.copy_out_time(finalize.copied_out)
        stats["copied_out"] = float(finalize.copied_out)
        stats["reduction_merged"] = float(finalize.reduction_merged)
    else:
        serial_interp = Interpreter(program, env, value_based=False)
        serial_time, _ = rerun_loop_serially(serial_interp, loop, sim.model)
        times.serial_rerun = serial_time

    return InspectorOutcome(result=result, times=times, stats=stats,
                            fallback_reason=fallback_reason,
                            engine_used=engine_used,
                            engine_decision=engine_decision)
