"""The strategy orchestrator: the user-facing entry point of the runtime.

:class:`LoopRunner` compiles a program once (instrumentation plan +
serial reference run) and then executes the target loop under any
strategy and machine configuration, producing comparable
:class:`ExecutionReport` records.

Everything the runner remembers across invocations lives in one
:class:`~repro.runtime.profile.LoopProfileStore`: cached LRPD verdicts
(schedule reuse, OCEAN-style loops), per-run observations (the
feedback the ``auto`` planner consumes), and the jit warm-up ledger.
Every ``run()`` leaves one observation behind; loops whose recorded
history says speculation keeps failing are refused up front when a
planner engine is in charge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from repro.analysis.instrument import InstrumentationPlan, build_plan
from repro.core.outcomes import TestMode
from repro.core.shadow import Granularity
from repro.dsl.ast_nodes import Program
from repro.errors import SpeculationError
from repro.interp.costs import CostCounter
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter, split_at_loop
from repro.machine.costmodel import CostModel, fx80
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.machine.stats import TimeBreakdown, WallClock
from repro.runtime.doall import finalize_doall, run_doall
from repro.runtime.engines import get_engine, serial_engine_for
from repro.runtime.inspector import run_inspector_executor
from repro.runtime.profile import (
    LoopProfileStore,
    RunObservation,
    pattern_signature,
)
from repro.runtime.results import ExecutionReport, SerialRun
from repro.runtime.serial import rerun_loop_serially, run_serial
from repro.runtime.speculative import (
    FixedStripSizer,
    SpeculationPipeline,
    run_speculative,
)


class Strategy(Enum):
    SERIAL = "serial"
    SPECULATIVE = "speculative"
    INSPECTOR = "inspector"
    #: strip-mined speculation: windowed LRPD with incremental commit
    #: and bounded rollback (see :class:`SpeculationPipeline`).
    STRIPPED = "stripped"
    #: speculation (whole-loop, or strip-mined when a strip
    #: configuration is set) with the post-failure DOACROSS recovery
    #: tier explicitly armed: failed regions re-execute priced as
    #: chunked pipelined DOACROSSes at the minimum dependence distance
    #: measured from the shadow stamps, instead of as serial re-runs.
    DOACROSS_RECOVERY = "doacross_recovery"


@dataclass
class RunConfig:
    """Machine and test configuration for one execution."""

    model: CostModel = field(default_factory=fx80)
    schedule: ScheduleKind = ScheduleKind.BLOCK
    granularity: Granularity = Granularity.ITERATION
    test_mode: TestMode = TestMode.LRPD
    dynamic_last_value: bool = True
    directional: bool = True
    use_schedule_cache: bool = False
    #: abort the speculative doall at the first definite conflict (the
    #: on-the-fly hardware model [47]); only effective for the default
    #: iteration-wise directional LRPD configuration.
    eager_failure_detection: bool = False
    #: doall iteration executor — any engine registered in
    #: :mod:`repro.runtime.engines`: "compiled" (closure-compiled,
    #: batched marking), "walk" (the reference tree walker), "parallel"
    #: (real worker processes with shared-memory shadows,
    #: :mod:`repro.runtime.parallel_backend`), "vectorized" (whole-block
    #: NumPy lowering with bulk shadow marking,
    #: :mod:`repro.interp.vectorized_spec`; classifier-rejected loops
    #: walk the declared fallback chain to compiled with the reason
    #: recorded on the report), or "auto" (per-loop adaptive selection,
    #: decision recorded on the report).  Bit-identical results; "walk"
    #: is kept for ablation and equivalence testing.  Validated at
    #: construction against the registry.
    engine: str = "compiled"
    #: real worker processes for ``engine="parallel"`` (None: one per
    #: usable core).  Independent of the *simulated* processor count in
    #: :attr:`model` — workers are an execution resource, processors are
    #: what the cost model prices.
    workers: int | None = None
    #: worker-pool flavour for sharded execution: "fork" (processes over
    #: shared-memory shadows) or "threads" (in-process workers, no fork
    #: or shared-memory setup — the small-trip-loop backend).  Validated
    #: at construction.
    backend: str = "fork"
    #: iterations per strip for :attr:`Strategy.STRIPPED`.  ``None``
    #: degenerates to one whole-loop strip — the report is bit-identical
    #: to :attr:`Strategy.SPECULATIVE` (the path is delegated wholesale).
    strip_size: int | None = None
    #: let the strip sizer grow on consecutive passes and shrink on
    #: failures (:class:`repro.runtime.adaptive.AdaptiveStripSizer`);
    #: ``strip_size`` then seeds the initial size.
    adaptive_strip_sizing: bool = False

    def __post_init__(self) -> None:
        # Fail at construction, not deep inside a strategy run; the
        # errors list the registered engines / known backends.
        get_engine(self.engine)
        from repro.runtime.parallel_backend import validate_backend

        validate_backend(self.backend)

    def with_procs(self, p: int) -> "RunConfig":
        import dataclasses

        return dataclasses.replace(self, model=self.model.with_procs(p))


class LoopRunner:
    """Compiles a program and runs its target loop under chosen strategies."""

    def __init__(
        self,
        program: Program,
        inputs: dict,
        *,
        trip_count: int | None = None,
        profiles: LoopProfileStore | None = None,
        pools=None,
    ):
        self.program = program
        self.inputs = dict(inputs)
        self.plan: InstrumentationPlan = build_plan(program, trip_count=trip_count)
        self.loop = self.plan.loop
        self._before, self._after = split_at_loop(program, self.loop)
        #: the runner's cross-invocation memory; pass a shared (possibly
        #: persistent) store to carry verdicts and planner feedback
        #: across runners and processes.
        self.profiles = profiles if profiles is not None else LoopProfileStore()
        #: optional caller-owned
        #: :class:`~repro.runtime.parallel_backend.WorkerPoolCache`:
        #: when set, worker-sharding runs draw a persistent pool from it
        #: (keyed by loop identity, procs, workers, backend) instead of
        #: forking an ephemeral one per run — the serve daemon passes a
        #: fleet-wide cache so repeat requests skip process startup.
        #: The caller owns the cache's lifetime (``pools.close()``).
        self.pools = pools
        self._serial_runs: dict[str, SerialRun] = {}
        #: shadow marker recycled across speculative attempts (reset in
        #: place instead of reallocating the shadow buffers every run).
        self._spec_marker = None
        #: memoized simulated times of passed schedule-reuse runs, keyed
        #: by (signature, machine, procs, schedule, engine, workers,
        #: backend).  A reuse run's times are a pure function of that key
        #: — the signature pins the access pattern, everything else pins
        #: the machine and schedule — so repeat reuse runs skip the
        #: per-iteration cost accounting and makespan simulation.
        self._reuse_times: dict[tuple, dict] = {}

    # -- reference -----------------------------------------------------------

    def serial_run(self, model: CostModel, engine: str = "compiled") -> SerialRun:
        """The serial reference execution (cached per machine and engine).

        ``engine`` honors :attr:`RunConfig.engine`; the serial-capable
        engines are property-tested to be state- and count-identical, so
        the choice only affects wall clock, not any simulated quantity.
        Engines without a serial executor (the serial reference has no
        doall for the parallel backend to shard, nor a block for the
        vectorized engine to lower) substitute the first serial-capable
        engine on their registry fallback chain, with the substitution
        recorded on the returned run instead of silently dropped.
        """
        serial_name, substitution = serial_engine_for(engine)
        key = f"{model.name}:{serial_name}"
        if key not in self._serial_runs:
            self._serial_runs[key] = run_serial(
                self.program, self.inputs, model, loop=self.loop,
                engine=serial_name,
            )
        cached = self._serial_runs[key]
        if substitution is None:
            return cached
        import dataclasses

        return dataclasses.replace(cached, engine_substitution=substitution)

    # -- strategies ------------------------------------------------------------

    def run(self, strategy: Strategy, config: RunConfig | None = None) -> ExecutionReport:
        """Execute the target loop under ``strategy``; returns the report.

        Every run feeds the profile store: one
        :class:`~repro.runtime.profile.RunObservation` (engine, backend,
        measured wall clock, verdict, strip size) is appended to the
        loop's ring, and the verdict-cache counters are snapshotted onto
        ``report.cache_stats``.
        """
        config = config or RunConfig()
        tick = time.perf_counter()
        # Dispatch through a table, not strategy comparisons — the same
        # no-enum-dispatch discipline the engine lint enforces for
        # engine names (``benchmarks/check_engine_dispatch.py``).
        strategies = {
            Strategy.SERIAL: self._run_serial,
            Strategy.SPECULATIVE: self._run_speculative,
            Strategy.STRIPPED: self._run_stripped,
            Strategy.INSPECTOR: self._run_inspector,
            Strategy.DOACROSS_RECOVERY: self._run_doacross_recovery,
        }
        runner = strategies.get(strategy)
        if runner is None:
            raise SpeculationError(f"unknown strategy {strategy!r}")
        report = runner(config)
        wall_s = time.perf_counter() - tick
        self.profiles.observe(self._loop_key(), RunObservation(
            strategy=report.strategy,
            engine=report.engine_used,
            backend=config.backend,
            wall_s=wall_s,
            doall_s=report.wall.doall if report.wall is not None else 0.0,
            passed=report.passed,
            fallback_reason=report.fallbacks[0][1] if report.fallbacks else None,
            strip_size=report.strips[-1].strip_size if report.strips else None,
            reused=report.reused_schedule,
            recovered_fraction=report.stats.get("recovered_fraction"),
            sync_wait_cycles=report.stats.get("recovery_sync_wait_cycles", 0.0),
        ))
        report.cache_stats = self.profiles.counters()
        return report

    def _env_at_loop_entry(self, model: CostModel) -> tuple[Environment, float]:
        env = Environment(self.program, self.inputs)
        cost = CostCounter()
        interp = Interpreter(self.program, env, cost=cost, value_based=False)
        interp.exec_block(self._before)
        return env, model.iteration_cycles(cost.total())

    def _finish(self, env: Environment) -> None:
        interp = Interpreter(self.program, env, value_based=False)
        interp.exec_block(self._after)

    def _run_serial(self, config: RunConfig) -> ExecutionReport:
        reference = self.serial_run(config.model, config.engine)
        times = TimeBreakdown(serial_rerun=reference.loop_time)
        return ExecutionReport(
            strategy=Strategy.SERIAL.value,
            machine=config.model.name,
            procs=1,
            passed=None,
            test_result=None,
            times=times,
            serial_loop_time=reference.loop_time,
            env=reference.env,
        )

    def _refuse_serially(
        self, env: Environment, sim: DoallSimulator, config: RunConfig,
        reference: SerialRun, *, reason: str | None = None,
    ) -> ExecutionReport:
        """Run serially without attempting any doall: either a
        loop-carried scalar statically blocks speculation, or (with a
        planner engine and ``reason`` set) the loop's recorded failure
        history vetoes another attempt."""
        serial_interp = Interpreter(self.program, env, value_based=False)
        serial_time, _ = rerun_loop_serially(serial_interp, self.loop, config.model)
        self._finish(env)
        return ExecutionReport(
            strategy=Strategy.SERIAL.value,
            machine=config.model.name,
            procs=sim.num_procs,
            passed=None,
            test_result=None,
            times=TimeBreakdown(serial_rerun=serial_time),
            serial_loop_time=reference.loop_time,
            env=env,
            stats={"refused": 1.0},
            engine_decisions=self._decisions(reason),
        )

    def _shared_pool(self, config: RunConfig, sim: DoallSimulator, env: Environment):
        """A persistent worker pool from :attr:`pools` (None without a
        cache, or when the run does not shard onto real workers).

        The pool is keyed by everything its :class:`ShardSpec` and
        layout depend on, so a cache shared across runners and requests
        can never hand back a mismatched pool.
        """
        from repro.runtime.engines import needs_worker_pool

        if self.pools is None or not needs_worker_pool(config.engine, config.workers):
            return None
        from repro.runtime.parallel_backend import (
            ShardSpec,
            default_workers,
            make_worker_pool,
        )

        workers = (
            config.workers if config.workers is not None
            else default_workers(sim.num_procs)
        )
        key = (self._loop_key(), sim.num_procs, workers, config.backend)
        return self.pools.get(key, lambda: make_worker_pool(
            ShardSpec.from_plan(
                self.program, self.loop, self.plan, env, sim.num_procs
            ),
            workers,
            config.backend,
        ))

    def _speculation_veto(self, config: RunConfig) -> str | None:
        """The profile store's eager-serial verdict, for planner engines.

        Only a planner (``engine="auto"``) may act on history — an
        explicitly requested engine keeps the paper's optimistic
        protocol, whatever the loop's record says.
        """
        if not get_engine(config.engine).caps.planner:
            return None
        return self.profiles.speculation_veto(self._loop_key())

    def _arm_recovery(self, config: RunConfig) -> tuple[bool, str | None]:
        """Whether a planner engine arms the DOACROSS recovery tier.

        Explicit :attr:`Strategy.DOACROSS_RECOVERY` requests always arm;
        this decides the *learned* arming for planner engines: only once
        the loop's ring records at least one failed attempt (so a loop's
        very first runs behave exactly as before this tier existed), and
        only while the recovery history itself is not vetoed — a loop
        whose measured distances keep coming back serial stops paying
        the distance measurement and rolls back serially again.
        """
        if not get_engine(config.engine).caps.planner:
            return False, None
        loop_key = self._loop_key()
        failures, _attempts = self.profiles.failure_stats(loop_key)
        if failures < 1:
            return False, None
        veto = self.profiles.recovery_veto(loop_key)
        if veto is not None:
            return False, veto
        return True, (
            f"feedback: arming DOACROSS recovery ({failures} recorded "
            f"failure(s), no recovery veto on record)"
        )

    def _recovery_rescue(self, config: RunConfig) -> str | None:
        """The profile store's rescue verdict, for planner engines only."""
        if not get_engine(config.engine).caps.planner:
            return None
        return self.profiles.recovery_rescue(self._loop_key())

    def _run_speculative(
        self, config: RunConfig, *, recovery: bool = False
    ) -> ExecutionReport:
        sim = DoallSimulator(config.model, config.schedule)
        env, _setup = self._env_at_loop_entry(config.model)
        reference = self.serial_run(config.model, config.engine)

        if not self.plan.parallelizable_scalars:
            return self._refuse_serially(env, sim, config, reference)

        extra_decisions: list[str | None] = []
        if not recovery:
            recovery, armed_reason = self._arm_recovery(config)
            extra_decisions.append(armed_reason)

        veto = self._speculation_veto(config)
        if veto is not None:
            rescue = self._recovery_rescue(config)
            if rescue is None:
                return self._refuse_serially(
                    env, sim, config, reference, reason=veto
                )
            # The failure history says stop, but the recovery history
            # says the failures themselves pipeline well: speculate
            # anyway with recovery armed, recording both verdicts.
            recovery = True
            extra_decisions.extend([veto, rescue])

        pool = self._shared_pool(config, sim, env)
        reused = False
        signature = None
        signature_s = 0.0
        if config.use_schedule_cache:
            # The signature must be taken at loop entry, before the doall
            # mutates any state it covers.
            tick = time.perf_counter()
            signature = pattern_signature(self.plan, env)
            signature_s = time.perf_counter() - tick
            cached = self.profiles.lookup_verdict(self._loop_key(), signature)
            if cached is not None:
                report = self._run_from_cached(
                    env, cached, sim, config, reference,
                    signature=signature, signature_s=signature_s, pool=pool,
                )
                self._finish(env)
                return report

        outcome = run_speculative(
            self.program,
            self.loop,
            env,
            self.plan,
            sim,
            test_mode=config.test_mode,
            granularity=config.granularity,
            schedule=config.schedule,
            dynamic_last_value=config.dynamic_last_value,
            directional=config.directional,
            eager=config.eager_failure_detection,
            engine=config.engine,
            marker=self._spec_marker,
            workers=config.workers,
            pool=pool,
            backend=config.backend,
            profiles=self.profiles,
            loop_key=self._loop_key(),
            recovery=recovery,
        )
        self._spec_marker = outcome.run.marker
        outcome.wall.signature = signature_s
        if config.use_schedule_cache:
            self.profiles.record_verdict(self._loop_key(), signature, outcome.result)
        self._finish(env)
        return ExecutionReport(
            strategy=Strategy.SPECULATIVE.value,
            machine=config.model.name,
            procs=sim.num_procs,
            passed=outcome.result.passed,
            test_result=outcome.result,
            times=outcome.times,
            serial_loop_time=reference.loop_time,
            env=env,
            reused_schedule=reused,
            stats=outcome.stats,
            wall=outcome.wall,
            fallbacks=self._fallbacks(outcome.run.fallback_reason),
            engine_used=outcome.run.engine_used,
            engine_decisions=(
                self._decisions(outcome.run.engine_decision)
                + [
                    entry
                    for reason in extra_decisions
                    for entry in self._decisions(reason)
                ]
                + self._decisions(outcome.recovery_decision)
            ),
        )

    def _run_doacross_recovery(self, config: RunConfig) -> ExecutionReport:
        """Speculation with the DOACROSS recovery tier explicitly armed.

        Routes to the strip-mined pipeline when a strip configuration is
        set (each failed strip recovers independently), else to the
        whole-loop protocol.  Refusals (unparallelizable scalars) still
        report as serial runs; everything that actually speculated is
        relabelled so the report and the profile ring record which
        strategy was asked for.
        """
        if config.strip_size is not None or config.adaptive_strip_sizing:
            report = self._run_stripped(config, recovery=True)
        else:
            report = self._run_speculative(config, recovery=True)
        if report.strategy != Strategy.SERIAL.value:
            report.strategy = Strategy.DOACROSS_RECOVERY.value
        return report

    def _run_stripped(
        self, config: RunConfig, *, recovery: bool = False
    ) -> ExecutionReport:
        """Strip-mined speculation (windowed LRPD, incremental commit)."""
        if config.strip_size is None and not config.adaptive_strip_sizing:
            # Degenerate configuration: one strip covering the whole loop
            # *is* the unstripped protocol — delegate wholesale so every
            # simulated quantity stays bit-identical to SPECULATIVE.
            return self._run_speculative(config, recovery=recovery)
        sim = DoallSimulator(config.model, config.schedule)
        env, _setup = self._env_at_loop_entry(config.model)
        reference = self.serial_run(config.model, config.engine)

        if not self.plan.parallelizable_scalars:
            return self._refuse_serially(env, sim, config, reference)

        extra_decisions: list[str | None] = []
        if not recovery:
            recovery, armed_reason = self._arm_recovery(config)
            extra_decisions.append(armed_reason)

        veto = self._speculation_veto(config)
        if veto is not None:
            rescue = self._recovery_rescue(config)
            if rescue is None:
                return self._refuse_serially(
                    env, sim, config, reference, reason=veto
                )
            recovery = True
            extra_decisions.extend([veto, rescue])

        strip_decision = None
        if config.adaptive_strip_sizing:
            # Imported lazily: adaptive.py imports this module at top level.
            from repro.runtime.adaptive import AdaptiveStripSizer

            initial = config.strip_size or AdaptiveStripSizer.DEFAULT_INITIAL
            warm = None
            if config.strip_size is None and get_engine(config.engine).caps.planner:
                warm = self.profiles.warm_strip_size(self._loop_key())
                if warm is not None:
                    initial = warm
                    strip_decision = (
                        f"feedback: warm-starting the adaptive strip size "
                        f"at {warm} (the last passing strip-mined run's "
                        f"converged size)"
                    )
            sizer = AdaptiveStripSizer(initial_size=initial)
            if warm is not None:
                # A converged size from history should survive one
                # unlucky strip: failures shrink no further than it...
                sizer.raise_floor(warm)
            if get_engine(config.engine).caps.planner and self.profiles.veto_cleared(
                self._loop_key()
            ):
                # ...unless that history just went stale — a lifted
                # speculation veto means the ring turned over, so let
                # failures shrink strips all the way down again.
                sizer.reset_floor()
                extra_decisions.append(
                    "feedback: speculation veto lifted — resetting the "
                    "adaptive strip-size floor (failures may shrink "
                    "strips below the warm-started size again)"
                )
        else:
            sizer = FixedStripSizer(config.strip_size)
        pipeline = SpeculationPipeline(
            self.program,
            self.loop,
            env,
            self.plan,
            sim,
            sizer=sizer,
            test_mode=config.test_mode,
            granularity=config.granularity,
            schedule=config.schedule,
            dynamic_last_value=config.dynamic_last_value,
            directional=config.directional,
            eager=config.eager_failure_detection,
            engine=config.engine,
            marker=self._spec_marker,
            workers=config.workers,
            pool=self._shared_pool(config, sim, env),
            backend=config.backend,
            profiles=self.profiles,
            loop_key=self._loop_key(),
            recovery=recovery,
        )
        outcome = pipeline.run()
        self._spec_marker = outcome.marker
        self._finish(env)
        return ExecutionReport(
            strategy=Strategy.STRIPPED.value,
            machine=config.model.name,
            procs=sim.num_procs,
            passed=outcome.result.passed,
            test_result=outcome.result,
            times=outcome.times,
            serial_loop_time=reference.loop_time,
            env=env,
            stats=outcome.stats,
            strips=outcome.strips,
            wall=outcome.wall,
            fallbacks=self._fallbacks(outcome.fallback_reason),
            engine_used=outcome.engine_used,
            engine_decisions=(
                self._decisions(outcome.engine_decision)
                + self._decisions(strip_decision)
                + [
                    entry
                    for reason in extra_decisions
                    for entry in self._decisions(reason)
                ]
                + self._decisions(outcome.recovery_decision)
            ),
        )

    def _run_from_cached(
        self,
        env: Environment,
        cached,
        sim: DoallSimulator,
        config: RunConfig,
        reference: SerialRun,
        *,
        signature=None,
        signature_s: float = 0.0,
        pool=None,
    ) -> ExecutionReport:
        """Schedule reuse: skip marking and analysis entirely.

        The plain (uninstrumented) re-execution goes through the
        whole-block vectorized chain rather than the requested engine —
        every engine is state- and cost-identical, so the request only
        governs the *speculative* attempt, and the reuse path is free to
        take the fastest executor (classifier rejects fall back down the
        registry chain as usual).  Worker-sharding requests with a live
        pool keep their engine: the persistent pool IS their fast path.
        Simulated times of repeat reuse runs come from
        :attr:`_reuse_times` instead of being re-derived per run.
        """
        times = TimeBreakdown()
        wall = WallClock(signature=signature_s)
        fallback_reason = None
        engine_used = None
        engine_decision = None
        if cached.passed:
            reuse_engine, reuse_workers = config.engine, config.workers
            if pool is None and not get_engine(config.engine).caps.whole_block:
                reuse_engine, reuse_workers = "vectorized", None
            memo_key = (
                signature, config.model.name, sim.num_procs,
                config.schedule, config.engine, config.workers,
                config.backend,
            )
            memo = (
                self._reuse_times.get(memo_key)
                if signature is not None else None
            )
            tick = time.perf_counter()
            run = run_doall(
                self.program, self.loop, env, self.plan, sim.num_procs,
                marker=None, value_based=False, schedule=config.schedule,
                engine=reuse_engine, workers=reuse_workers,
                pool=pool, backend=config.backend,
                profiles=self.profiles, loop_key=self._loop_key(),
                need_costs=memo is None,
            )
            wall.doall = time.perf_counter() - tick
            finalize = finalize_doall(run, env, self.plan, self.loop)
            if memo is None:
                times.private_init = sim.private_init_time(
                    sum(p.size for p in run.privates.values())
                )
                body, dispatch, barrier = sim.doall_time(
                    run.iteration_costs,
                    assignment=(
                        None
                        if config.schedule is ScheduleKind.DYNAMIC
                        else run.assignment
                    ),
                )
                times.body, times.dispatch, times.barrier = body, dispatch, barrier
                times.reduction_merge = sim.reduction_merge_time(
                    finalize.reduction_merged
                )
                times.copy_out = sim.copy_out_time(finalize.copied_out)
                if signature is not None:
                    self._reuse_times[memo_key] = times.as_dict()
            else:
                times = TimeBreakdown(**memo)
            fallback_reason = run.fallback_reason
            engine_used = run.engine_used
            engine_decision = run.engine_decision
            if reuse_engine != config.engine and engine_decision is None:
                engine_decision = (
                    f"schedule reuse: plain re-execution via "
                    f"{run.engine_used} (engines are state- and "
                    f"cost-identical; {config.engine!r} governs the "
                    f"speculative attempt only)"
                )
        else:
            serial_interp = Interpreter(self.program, env, value_based=False)
            serial_time, _ = rerun_loop_serially(serial_interp, self.loop, config.model)
            times.serial_rerun = serial_time
        return ExecutionReport(
            strategy=Strategy.SPECULATIVE.value,
            machine=config.model.name,
            procs=sim.num_procs,
            passed=cached.passed,
            test_result=cached,
            times=times,
            serial_loop_time=reference.loop_time,
            env=env,
            reused_schedule=True,
            wall=wall,
            fallbacks=self._fallbacks(fallback_reason),
            engine_used=engine_used,
            engine_decisions=self._decisions(engine_decision),
        )

    def _run_inspector(self, config: RunConfig) -> ExecutionReport:
        sim = DoallSimulator(config.model, config.schedule)
        env, _setup = self._env_at_loop_entry(config.model)
        reference = self.serial_run(config.model, config.engine)
        outcome = run_inspector_executor(
            self.program,
            self.loop,
            env,
            self.plan,
            sim,
            granularity=config.granularity,
            schedule=config.schedule,
            dynamic_last_value=config.dynamic_last_value,
            directional=config.directional,
            engine=config.engine,
            workers=config.workers,
            pool=self._shared_pool(config, sim, env),
            backend=config.backend,
            profiles=self.profiles,
            loop_key=self._loop_key(),
        )
        self._finish(env)
        return ExecutionReport(
            strategy=Strategy.INSPECTOR.value,
            machine=config.model.name,
            procs=sim.num_procs,
            passed=outcome.result.passed,
            test_result=outcome.result,
            times=outcome.times,
            serial_loop_time=reference.loop_time,
            env=env,
            stats=outcome.stats,
            fallbacks=self._fallbacks(outcome.fallback_reason),
            engine_used=outcome.engine_used,
            engine_decisions=self._decisions(outcome.engine_decision),
        )

    def _fallbacks(self, reason: str | None) -> list[tuple[str, str]]:
        """Engine-degradation records for the report (empty when none)."""
        if reason is None:
            return []
        return [(self._loop_key(), reason)]

    def _decisions(self, reason: str | None) -> list[tuple[str, str]]:
        """Auto-planner decision records for the report (empty when the
        engine was requested explicitly)."""
        if reason is None:
            return []
        return [(self._loop_key(), reason)]

    def _loop_key(self) -> str:
        return f"{self.program.name}:{self.loop.var}@{self.loop.line}"
