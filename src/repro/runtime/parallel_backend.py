"""The true multiprocess speculative backend.

Where :func:`repro.runtime.doall.run_doall` *emulates* ``p`` processors
inside one OS process, this backend actually runs the marked doall on
real worker processes:

* the ``p`` virtual processors of the machine model are partitioned into
  contiguous blocks, one block per worker (``workers`` is an execution
  resource, independent of the simulated processor count);
* each worker owns a full shadow set for the tested arrays, laid out in
  a :class:`multiprocessing.shared_memory.SharedMemory` segment so the
  parent reads the marks back without any serialization;
* each worker executes its processors' iterations via
  :func:`repro.interp.parallel_spec.execute_shard` — private copies,
  reduction partials and per-processor scalars included;
* after the join, the parent performs the paper's cross-processor merge
  (:meth:`repro.core.shadow.ShadowArray.merge_from`: OR/union of the
  mark bits, summed ``tw``, merged ``tm`` stamps) into the caller's
  marker and reconstructs a :class:`~repro.runtime.doall.DoallRun` that
  the existing LRPD analysis and commit machinery consume unchanged.

The reconstruction is bit-identical to the emulated engines for every
analysis-visible quantity (shadow contents, ``tw``/``tm``, private rows
and write stamps, reduction partials, per-processor scalars, iteration
costs and the derived simulated times) on runs that complete.  Runs cut
short by eager (on-the-fly) detection abort at a worker-local point
rather than the emulation's global round-robin point, so only the
verdict (always "fail", guaranteed by mark monotonicity under the
merge) and the post-protocol environment are comparable there.

Workers are forked (``fork`` start method) so the shared-memory views
and the compiled loop spec are inherited, not pickled; a persistent
:class:`WorkerPool` amortizes the fork across the strips of a
strip-mined run.  Segment teardown is robust: :meth:`WorkerPool.close`
unlinks every segment even when a strip aborted or a worker raised, so
no ``/dev/shm`` segments outlive the pool.

A ``threads`` sibling (:class:`ThreadWorkerPool`, ``--backend
threads``) runs the very same shards on ``threading`` workers over
per-worker in-process :class:`~repro.core.shadow.ShadowArray` sets — no
fork, no shared memory, no environment pickling — through the identical
``merge_from`` path, so small-trip loops stop losing their speedup to
process setup.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue
import secrets
import threading
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.analysis.instrument import InstrumentationPlan
from repro.core.privatize import PrivateCopies
from repro.core.reduction_exec import REDUCTION_IDENTITY, ReductionPartials
from repro.core.shadow import SHADOW_FIELDS, Granularity, ShadowArray, ShadowMarker
from repro.dsl.ast_nodes import Do, Program
from repro.errors import InterpError
from repro.interp.costs import IterationCost
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.interp.parallel_spec import (
    ShardResult,
    ShardSpec,
    ShardTask,
    execute_shard,
)
from repro.machine.schedule import ScheduleKind, assign_iterations
from repro.runtime.doall import DoallRun
from repro.runtime.serial import loop_iteration_values

#: /dev/shm name prefix of the arena's segments (the teardown test
#: globs for leftovers under this prefix).
SEGMENT_PREFIX = "lrpd-shadow"

_ALIGN = 8

#: the selectable worker-pool flavours (``--backend``): forked processes
#: over shared-memory shadows, or in-process threads over plain shadows.
BACKENDS = ("fork", "threads")
DEFAULT_BACKEND = "fork"


def validate_backend(backend: str) -> str:
    """The single backend-name validation point (RunConfig, CLI)."""
    if backend not in BACKENDS:
        raise InterpError(
            f"unknown parallel backend {backend!r}; choose from "
            f"{', '.join(BACKENDS)}"
        )
    return backend


def default_workers(num_procs: int) -> int:
    """Worker count when the caller does not pin one: one per usable
    core, never more than the virtual processors being sharded."""
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(num_procs, cores))


def partition_procs(num_procs: int, workers: int) -> list[list[int]]:
    """Deal the virtual processors into contiguous per-worker blocks.

    Empty blocks (``workers > num_procs``) are dropped, so the result's
    length is the *effective* worker count.
    """
    if num_procs < 1:
        raise InterpError("cannot shard a doall across zero processors")
    if workers < 1:
        raise InterpError("parallel backend needs at least one worker")
    return [
        chunk.tolist()
        for chunk in np.array_split(np.arange(num_procs), min(workers, num_procs))
        if chunk.size
    ]


class SharedShadowArena:
    """Per-worker shadow sets backed by shared-memory segments.

    One segment per worker packs all ten shadow buffers
    (:data:`~repro.core.shadow.SHADOW_FIELDS`) of every tested array at
    8-byte-aligned offsets.  The segments are created — and the numpy
    views plus :class:`ShadowMarker` wrappers built — in the parent
    *before* the workers fork, so both sides address the same physical
    pages and marks made in a worker are immediately visible to the
    parent's merge without serialization.
    """

    def __init__(self, shadow_sizes: dict[str, int], workers: int):
        self.shadow_sizes = dict(shadow_sizes)
        layout: list[tuple[str, str, int, np.dtype, int]] = []
        offset = 0
        for name in sorted(self.shadow_sizes):
            size = self.shadow_sizes[name]
            for fieldname, dtype in SHADOW_FIELDS:
                dtype = np.dtype(dtype)
                offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
                layout.append((name, fieldname, size, dtype, offset))
                offset += size * dtype.itemsize
        self._layout = layout
        self._segment_bytes = max(offset, 1)

        self.segments: list[SharedMemory] = []
        self.markers: list[ShadowMarker] = []
        try:
            for _ in range(workers):
                segment = SharedMemory(
                    create=True,
                    size=self._segment_bytes,
                    name=f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}",
                )
                self.segments.append(segment)
                self.markers.append(self._build_marker(segment))
        except BaseException:
            self.close()
            raise

    def _build_marker(self, segment: SharedMemory) -> ShadowMarker:
        buffers: dict[str, dict[str, np.ndarray]] = {
            name: {} for name in self.shadow_sizes
        }
        for name, fieldname, size, dtype, offset in self._layout:
            buffers[name][fieldname] = np.ndarray(
                (size,), dtype=dtype, buffer=segment.buf, offset=offset
            )
        shadows = {
            name: ShadowArray.from_buffers(name, self.shadow_sizes[name], views)
            for name, views in buffers.items()
        }
        return ShadowMarker.from_shadows(shadows)

    def close(self) -> None:
        """Release the views and unlink every segment (idempotent)."""
        self.markers.clear()
        segments, self.segments = self.segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _worker_main(spec: ShardSpec, marker: ShadowMarker, conn) -> None:
    """One worker's serve loop: recv a :class:`ShardTask`, run it, reply.

    Replies are ``("ok", ShardResult)`` or ``("error", exception)``; the
    loop exits on a ``None`` sentinel or a closed pipe.  The worker's
    marker (shared-memory backed, inherited through fork) is reset here,
    per task, so the parent never races a worker on the buffers.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            if task.marking:
                marker.reset(task.granularity, eager=task.eager)
                result = execute_shard(spec, task, marker)
            else:
                result = execute_shard(spec, task, None)
            reply = ("ok", result)
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            reply = ("error", exc)
        try:
            conn.send(reply)
        except Exception:  # pragma: no cover - unpicklable payload
            conn.send(("error", InterpError(f"worker reply failed: {reply[1]!r}")))


class WorkerPool:
    """A persistent set of forked shard workers over one shadow arena.

    Forked once and reused across doalls of the same loop (the strip
    pipeline sends every strip through the same pool), which amortizes
    process startup and shadow allocation.  Always :meth:`close` the
    pool — it is also a context manager — to join the workers and unlink
    the shared-memory segments; teardown runs even after aborts and
    forwarded worker exceptions.
    """

    def __init__(self, spec: ShardSpec, workers: int):
        self.spec = spec
        self.chunks = partition_procs(spec.num_procs, workers)
        self.num_workers = len(self.chunks)
        self.arena = SharedShadowArena(spec.shadow_sizes, self.num_workers)
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        try:
            for marker in self.arena.markers:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(spec, marker, child_conn),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """Dispatch one task per worker; gather results in worker order.

        All replies are drained before any forwarded worker exception is
        re-raised, so the pool stays reusable after a failed doall.
        """
        if len(tasks) != self.num_workers:
            raise InterpError(
                f"pool of {self.num_workers} workers got {len(tasks)} shard tasks"
            )
        for conn, task in zip(self._conns, tasks):
            conn.send(task)
        results: list[ShardResult] = []
        errors: list[BaseException] = []
        for index, conn in enumerate(self._conns):
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                errors.append(InterpError(f"parallel worker {index} died"))
                continue
            if status == "ok":
                results.append(payload)
            else:
                errors.append(payload)
        if errors:
            raise errors[0]
        return results

    def close(self) -> None:
        """Join the workers and unlink the arena (idempotent)."""
        conns, self._conns = self._conns, []
        procs, self._procs = self._procs, []
        for conn in conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        self.arena.close()


class ThreadShadowArena:
    """Per-worker shadow sets as plain in-process :class:`ShadowArray`\\ s.

    The thread backend's sibling of :class:`SharedShadowArena`: same
    ``markers`` contract (one :class:`ShadowMarker` per worker that the
    parent's :func:`_merge_results` reads directly), but the buffers are
    ordinary numpy arrays — no ``/dev/shm`` segments to allocate or
    unlink, which is exactly the setup cost the backend exists to avoid.
    """

    def __init__(self, shadow_sizes: dict[str, int], workers: int):
        self.shadow_sizes = dict(shadow_sizes)
        self.markers: list[ShadowMarker] = [
            ShadowMarker.from_shadows({
                name: ShadowArray(name, size)
                for name, size in sorted(self.shadow_sizes.items())
            })
            for _ in range(workers)
        ]

    def close(self) -> None:
        """Drop the markers (idempotent; nothing external to release)."""
        self.markers.clear()


def _thread_worker_main(spec: ShardSpec, marker: ShadowMarker, inbox, outbox):
    """One thread worker's serve loop — :func:`_worker_main` minus pipes.

    Unlike a forked worker, a thread shares the parent's address space:
    the task's environment must be cloned here (fork workers get theirs
    through the pickle/fork copy) or the shard's in-place writes would
    mutate the parent environment directly *and* come back again through
    ``shared_writes`` in the merge.
    """
    while True:
        task = inbox.get()
        if task is None:
            return
        try:
            task = dataclasses.replace(task, env=task.env.copy())
            if task.marking:
                marker.reset(task.granularity, eager=task.eager)
                result = execute_shard(spec, task, marker)
            else:
                result = execute_shard(spec, task, None)
            reply = ("ok", result)
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            reply = ("error", exc)
        outbox.put(reply)


class ThreadWorkerPool:
    """A persistent set of ``threading`` shard workers — no fork at all.

    Same contract as :class:`WorkerPool` (``spec``, ``chunks``,
    ``num_workers``, ``arena``, :meth:`run`, :meth:`close`, context
    manager) over per-worker in-process :class:`ShadowArray` sets, so
    :func:`_merge_results` runs the identical ``merge_from`` path and
    the results are bit-identical to the fork backend.  Small-trip
    loops keep their speedup because there is no process start, no
    shared-memory allocation and no environment pickling — each worker
    clones the environment in-process instead.
    """

    def __init__(self, spec: ShardSpec, workers: int):
        self.spec = spec
        self.chunks = partition_procs(spec.num_procs, workers)
        self.num_workers = len(self.chunks)
        self.arena = ThreadShadowArena(spec.shadow_sizes, self.num_workers)
        self._inboxes: list[queue.SimpleQueue] = []
        self._outboxes: list[queue.SimpleQueue] = []
        self._threads: list[threading.Thread] = []
        for marker in self.arena.markers:
            inbox: queue.SimpleQueue = queue.SimpleQueue()
            outbox: queue.SimpleQueue = queue.SimpleQueue()
            thread = threading.Thread(
                target=_thread_worker_main,
                args=(spec, marker, inbox, outbox),
                daemon=True,
            )
            thread.start()
            self._inboxes.append(inbox)
            self._outboxes.append(outbox)
            self._threads.append(thread)

    def __enter__(self) -> "ThreadWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """Dispatch one task per worker; gather results in worker order.

        Same drain-then-raise discipline as :meth:`WorkerPool.run`, so
        the pool stays reusable after a failed doall.
        """
        if len(tasks) != self.num_workers:
            raise InterpError(
                f"pool of {self.num_workers} workers got {len(tasks)} shard tasks"
            )
        for inbox, task in zip(self._inboxes, tasks):
            inbox.put(task)
        results: list[ShardResult] = []
        errors: list[BaseException] = []
        for outbox in self._outboxes:
            status, payload = outbox.get()
            if status == "ok":
                results.append(payload)
            else:
                errors.append(payload)
        if errors:
            raise errors[0]
        return results

    def close(self) -> None:
        """Join the worker threads and drop the arena (idempotent)."""
        inboxes, self._inboxes = self._inboxes, []
        threads, self._threads = self._threads, []
        self._outboxes = []
        for inbox in inboxes:
            inbox.put(None)
        for thread in threads:
            thread.join(timeout=5.0)
        self.arena.close()


def make_worker_pool(spec: ShardSpec, workers: int, backend: str = DEFAULT_BACKEND):
    """Build the requested pool flavour over ``spec`` (the one place
    backend names are compared)."""
    validate_backend(backend)
    if backend == "threads":
        return ThreadWorkerPool(spec, workers)
    return WorkerPool(spec, workers)


class WorkerPoolCache:
    """Persistent worker pools kept alive across doalls *and* requests.

    The strip pipeline already reuses one pool across the strips of a
    single run; this cache promotes that reuse to the next level — a
    long-lived owner (a :class:`~repro.runtime.orchestrator.LoopRunner`
    held by the serve daemon) keys pools by
    ``(loop identity, num_procs, workers, backend)`` and hands the same
    forked workers to every subsequent request of the same loop, so
    repeat jobs pay neither process startup nor shared-memory setup.

    A :class:`~repro.interp.parallel_spec.ShardSpec` is fixed for a
    loop's lifetime (program, transform plan, shadow sizes), so a cached
    pool stays valid as long as its key does.  Pools are OS resources:
    always :meth:`close` the cache (it is also a context manager) —
    every pool's teardown is attempted even if one raises.
    """

    def __init__(self) -> None:
        self._pools: dict[tuple, object] = {}
        #: reuse telemetry (surfaced in the serve daemon's stats).
        self.hits = 0
        self.builds = 0

    def get(self, key: tuple, build):
        """The cached pool under ``key``, building it on first use."""
        pool = self._pools.get(key)
        if pool is not None:
            self.hits += 1
            return pool
        pool = build()
        self._pools[key] = pool
        self.builds += 1
        return pool

    def __len__(self) -> int:
        return len(self._pools)

    def __enter__(self) -> "WorkerPoolCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close every cached pool (idempotent; closes all even on error)."""
        pools, self._pools = self._pools, {}
        errors: list[BaseException] = []
        for pool in pools.values():
            try:
                pool.close()
            except BaseException as exc:  # noqa: BLE001 - close them all
                errors.append(exc)
        if errors:
            raise errors[0]


def run_parallel_doall(
    program: Program,
    loop: Do,
    env: Environment,
    plan: InstrumentationPlan,
    num_procs: int,
    *,
    marker: ShadowMarker | None,
    value_based: bool = True,
    schedule: ScheduleKind = ScheduleKind.BLOCK,
    values: list[int] | None = None,
    workers: int | None = None,
    pool: WorkerPool | ThreadWorkerPool | None = None,
    whole_block: bool = False,
    use_jit: bool = False,
    engine_label: str | None = None,
    backend: str = DEFAULT_BACKEND,
) -> DoallRun:
    """Execute the marked doall on real worker processes.

    Drop-in replacement for the emulated executors behind
    :func:`repro.runtime.doall.run_doall` (reached via the ``parallel``
    and worker-sharded ``vectorized`` engines): same contract, same
    returned :class:`DoallRun`, with the shadow marks merged into
    ``marker`` per the paper's cross-processor union.  ``marker`` must
    be freshly reset (the speculative protocols guarantee this) — the
    merge folds the workers' marks into it rather than marking
    incrementally.

    ``whole_block`` selects the in-worker body executor: the vectorized
    whole-block lowering (in-shard bails degrade to compiled inside the
    worker and surface on the merged run's fallback fields) instead of
    the per-iteration compiled engine.

    ``use_jit`` additionally hands the in-worker whole-block executor
    the native kernel set (silently absent-safe), and ``engine_label``
    names the engine the merged run reports on full whole-block success
    (default ``"vectorized"``).

    ``pool`` reuses a persistent :class:`WorkerPool` /
    :class:`ThreadWorkerPool` (the strip pipeline passes one); otherwise
    an ephemeral pool of ``workers`` workers (default: one per usable
    core) of the requested ``backend`` flavour is built and torn down
    around this single doall.
    """
    if values is None:
        bounds_interp = Interpreter(program, env, value_based=False)
        start, stop, step = bounds_interp.eval_loop_bounds(loop)
        values = loop_iteration_values(start, stop, step)

    exec_schedule = (
        ScheduleKind.CYCLIC if schedule is ScheduleKind.DYNAMIC else schedule
    )
    assignment = assign_iterations(len(values), num_procs, exec_schedule)

    owned_pool = None
    if pool is None:
        spec = ShardSpec.from_plan(program, loop, plan, env, num_procs)
        owned_pool = pool = make_worker_pool(
            spec,
            workers if workers is not None else default_workers(num_procs),
            backend,
        )
    elif pool.spec.num_procs != num_procs:
        raise InterpError(
            f"worker pool sharded for p={pool.spec.num_procs}, doall wants "
            f"p={num_procs}"
        )
    try:
        eager = marker is not None and any(
            shadow.eager for shadow in marker.shadows.values()
        )
        tasks = [
            ShardTask(
                values=values,
                assignment=assignment,
                procs=chunk,
                env=env,
                marking=marker is not None,
                value_based=value_based,
                granularity=(
                    marker.granularity if marker is not None
                    else Granularity.ITERATION
                ),
                eager=eager,
                whole_block=whole_block,
                use_jit=use_jit,
            )
            for chunk in pool.chunks
        ]
        results = pool.run(tasks)
        return _merge_results(
            pool, results, env, plan, num_procs, marker, values, assignment,
            whole_block=whole_block, engine_label=engine_label,
        )
    finally:
        if owned_pool is not None:
            owned_pool.close()


def _merge_results(
    pool: WorkerPool | ThreadWorkerPool,
    results: list[ShardResult],
    env: Environment,
    plan: InstrumentationPlan,
    num_procs: int,
    marker: ShadowMarker | None,
    values: list[int],
    assignment: list[list[int]],
    whole_block: bool = False,
    engine_label: str | None = None,
) -> DoallRun:
    """Fold the per-worker shard results into one :class:`DoallRun`.

    This is the paper's cross-processor merge phase plus the bookkeeping
    that re-creates exactly the state the emulated executor would have
    left behind: merged shadows in ``marker``, full private-copy and
    partial structures with the owned rows/maps written back, per-
    processor scalar environments, the dense iteration-cost list, and
    the in-place writes to untransformed shared arrays applied in
    worker (= serial block) order.
    """
    if marker is not None:
        for name, shadow in marker.shadows.items():
            parts = []
            for worker_marker, result in zip(pool.arena.markers, results):
                part = worker_marker.shadows[name]
                part.tw = result.tw.get(name, 0)
                parts.append(part)
            shadow.merge_from(parts)

    scalar_init = {
        name: env.scalars[name]
        for name in plan.scalar_reductions
        if name in env.scalars
    }

    privates = {
        name: PrivateCopies(name, env.arrays[name], num_procs)
        for name in sorted(plan.tested_arrays)
    }
    partials = {
        name: ReductionPartials(name, num_procs)
        for name in sorted(plan.reduction_arrays)
    }
    proc_envs: list[Environment] = []
    for _proc in range(num_procs):
        proc_env = env.fork_scalars()
        for name, op in plan.scalar_reductions.items():
            proc_env.scalars[name] = REDUCTION_IDENTITY[op]
        proc_envs.append(proc_env)

    iteration_costs: list[IterationCost] = [IterationCost()] * len(values)
    for result in results:
        for name, rows in result.private_rows.items():
            copies = privates[name]
            for proc, (data, wstamp) in rows.items():
                copies.data[proc] = data
                copies.wstamp[proc] = wstamp
        for name, maps in result.partial_maps.items():
            proc_maps = partials[name].proc_maps()
            for proc, partial in maps.items():
                proc_maps[proc].update(partial)
        for proc, scalars in result.proc_scalars.items():
            proc_envs[proc].scalars = dict(scalars)
        for position, cost in result.iteration_costs:
            iteration_costs[position] = IterationCost(*cost)
        for name, (indices, written) in result.shared_writes.items():
            env.arrays[name][indices] = written

    return DoallRun(
        values=values,
        assignment=assignment,
        iteration_costs=iteration_costs,
        privates=privates,
        partials=partials,
        proc_envs=proc_envs,
        marker=marker,
        scalar_init=scalar_init,
        aborted=any(result.aborted for result in results),
        executed_iterations=sum(result.executed for result in results),
        engine_used=(
            (engine_label or "vectorized")
            if whole_block
            and not any(result.fallback for result in results)
            else "compiled"
        ),
        fallback_reason=next(
            (result.fallback for result in results if result.fallback), None
        ),
    )
