"""Loop profiles: the runtime's unified memory of past loop executions.

This package replaces the old ``repro.core.schedule_cache`` module and
the scattered per-run telemetry with one store (paper §IV.D motivates
the verdict-reuse half):

* :class:`LoopProfileStore` — verdict cache (LRU, entry+byte bounded),
  per-loop observation rings, jit warm-up ledger, optional JSON
  persistence.
* :class:`RunObservation` — one run as the profile remembers it.
* :func:`pattern_signature` — the access-pattern digest keying reuse.

Construction of the internal :class:`ScheduleCache` / :class:`KernelCache`
components outside this package is rejected by
``benchmarks/check_engine_dispatch.py``.
"""

from repro.runtime.profile.observation import RunObservation
from repro.runtime.profile.signature import pattern_signature
from repro.runtime.profile.store import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    DEFAULT_RING,
    FAILURE_RATE_THRESHOLD,
    KernelCache,
    LoopProfileStore,
    MIN_VETO_ATTEMPTS,
    RECOVERY_MIN_FRACTION,
    ScheduleCache,
    VerdictEntry,
    kernel_cache,
)

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_RING",
    "FAILURE_RATE_THRESHOLD",
    "KernelCache",
    "LoopProfileStore",
    "MIN_VETO_ATTEMPTS",
    "RECOVERY_MIN_FRACTION",
    "RunObservation",
    "ScheduleCache",
    "VerdictEntry",
    "kernel_cache",
    "pattern_signature",
]
