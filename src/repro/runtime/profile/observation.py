"""Per-run observation records — what the runtime learned from one run.

Every strategy execution of a loop leaves one :class:`RunObservation`
in the loop's profile: which engine actually ran, on which worker
backend, the measured wall clock (total and the doall phase alone), the
test verdict, any engine-fallback reason, and the strip size a
strip-mined run converged on.  The feedback-driven planner consumes
these (per-engine means, failure rates, warm strip sizes); persistence
round-trips them so history survives across processes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class RunObservation:
    """One strategy execution of one loop, as the profile remembers it."""

    #: strategy that produced the report (serial/speculative/stripped/…).
    strategy: str
    #: the engine that actually executed the doall (None when no doall
    #: ran — refused or eager-serial runs).
    engine: str | None
    #: worker-pool flavour the run was configured with.
    backend: str
    #: measured wall-clock seconds, whole strategy execution.
    wall_s: float
    #: measured wall-clock seconds of the doall phase alone — the
    #: engine-dependent part the bandit compares across engines.
    doall_s: float
    #: the run-time test's verdict (None when no test ran).
    passed: bool | None
    #: first engine-degradation reason, if any (e.g. classifier reject).
    fallback_reason: str | None = None
    #: final strip size of a strip-mined run (None otherwise) — the
    #: adaptive sizer's converged decision, used for warm-starting.
    strip_size: int | None = None
    #: the verdict was reused from the schedule cache (no test paid).
    reused: bool = False
    #: fraction of the serial re-run cost the DOACROSS recovery tier won
    #: back on a failed run (0.0 when the deterministic veto forced a
    #: serial rollback; None when the run passed or recovery was off).
    recovered_fraction: float | None = None
    #: simulated cycles recovery iterations spent blocked in post/wait
    #: synchronization (0.0 when no recovery ran).
    sync_wait_cycles: float = 0.0

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "RunObservation":
        fields = {
            "strategy": str(payload["strategy"]),
            "engine": payload.get("engine"),
            "backend": str(payload.get("backend", "fork")),
            "wall_s": float(payload.get("wall_s", 0.0)),
            "doall_s": float(payload.get("doall_s", 0.0)),
            "passed": payload.get("passed"),
            "fallback_reason": payload.get("fallback_reason"),
            "strip_size": payload.get("strip_size"),
            "reused": bool(payload.get("reused", False)),
            "recovered_fraction": payload.get("recovered_fraction"),
            "sync_wait_cycles": float(payload.get("sync_wait_cycles", 0.0)),
        }
        if fields["engine"] is not None:
            fields["engine"] = str(fields["engine"])
        if fields["passed"] is not None:
            fields["passed"] = bool(fields["passed"])
        if fields["strip_size"] is not None:
            fields["strip_size"] = int(fields["strip_size"])
        if fields["recovered_fraction"] is not None:
            fields["recovered_fraction"] = float(fields["recovered_fraction"])
        return cls(**fields)
