"""JSON persistence for :class:`~repro.runtime.profile.store.LoopProfileStore`.

Versioned schema, atomic writes (temp file + ``os.replace``), and
defensive loading: a missing, truncated, corrupt or foreign file never
raises — the store simply starts empty and records why on
``store.load_error``.  The jit warm-up ledger is intentionally excluded
(compiled-code warmth does not survive the process).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path

from repro.core.outcomes import ArrayTestDetail, LrpdResult, TestMode
from repro.runtime.profile.observation import RunObservation

FORMAT = "repro-loop-profiles"
VERSION = 1

_DETAIL_FIELDS = (
    "name",
    "tw",
    "tm",
    "fully_parallel",
    "privatized_elements",
    "reduction_elements",
    "failed_elements",
)


def result_to_json(result: LrpdResult) -> dict:
    return {
        "mode": result.mode.value,
        "granularity": result.granularity,
        "details": {name: asdict(d) for name, d in result.details.items()},
    }


def result_from_json(payload: dict) -> LrpdResult:
    details = {}
    for name, raw in dict(payload.get("details", {})).items():
        details[str(name)] = ArrayTestDetail(
            **{key: raw[key] for key in _DETAIL_FIELDS}
        )
    return LrpdResult(
        mode=TestMode(payload["mode"]),
        granularity=str(payload["granularity"]),
        details=details,
    )


def store_to_json(store) -> dict:
    """Serializable snapshot of a store (verdicts in LRU→MRU order)."""
    verdicts = [
        {
            "loop": loop_key,
            "signature": signature,
            "hits": entry.hits,
            "result": result_to_json(entry.result),
        }
        for loop_key, signature, entry in store.verdicts.items()
    ]
    loops = {
        loop_key: {
            "decisions": store._profiles[loop_key].decisions,
            "observations": [
                obs.to_json() for obs in store.observations(loop_key)
            ],
        }
        for loop_key in store.loop_keys()
    }
    return {
        "format": FORMAT,
        "version": VERSION,
        "verdicts": verdicts,
        "loops": loops,
    }


def save_store(store, path) -> None:
    """Atomically write ``store`` to ``path`` (parent dirs created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(store_to_json(store), indent=2) + "\n")
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink()


def load_into(store, path) -> str | None:
    """Replace ``store``'s contents from ``path``.

    Returns None on success (including "no file yet"), otherwise a short
    reason string; the store is left empty in every failure case.
    """
    store.clear()
    if path is None:
        return None
    target = Path(path)
    try:
        text = target.read_text()
    except FileNotFoundError:
        return None
    except OSError as exc:
        return f"unreadable profile file: {exc}"
    try:
        payload = json.loads(text)
        if not isinstance(payload, dict) or payload.get("format") != FORMAT:
            return "not a loop-profile file"
        if payload.get("version") != VERSION:
            return f"unsupported profile version {payload.get('version')!r}"
        _restore(store, payload)
    except (KeyError, TypeError, ValueError) as exc:
        store.clear()
        return f"corrupt profile file: {exc}"
    return None


def _restore(store, payload: dict) -> None:
    for record in list(payload.get("verdicts", [])):
        loop_key = str(record["loop"])
        signature = str(record["signature"])
        store.verdicts.record(loop_key, signature, result_from_json(record["result"]))
        entry = store.verdicts._entries.get((loop_key, signature))
        if entry is not None:
            entry.hits = int(record.get("hits", 0))
    for loop_key, raw in dict(payload.get("loops", {})).items():
        profile = store._profile(str(loop_key))
        profile.decisions = int(raw.get("decisions", 0))
        for obs in list(raw.get("observations", [])):
            profile.observations.append(RunObservation.from_json(obs))
