"""Access-pattern signatures (paper §IV.D / Saltz et al. [37]).

A loop like OCEAN's FTRVMT_do109 executes thousands of times with the
same access pattern; once the run-time test has decided the loop is (or
is not) parallel for a given pattern, the decision can be reused for
subsequent invocations whose *pattern signature* is unchanged, skipping
the marking and analysis overhead entirely.

The signature covers exactly the inputs that determine the access
pattern: the arrays and scalars in the inspector slice (the backward
slice of subscripts and control decisions).  If the slice is not
computable (inspector not extractable), reuse is disabled — the pattern
may depend on data the loop itself computes.

Array contents enter the digest through
:meth:`repro.interp.env.Environment.content_digest`, which memoizes the
per-array hash on a (data pointer, shape, dtype, mutation version)
pre-key and hashes the buffer in place — repeated signatures over
unchanged arrays skip the content read, and no ``tobytes()`` copy is
ever paid.  Callers that care about the cost time the call and record
it as ``WallClock.signature``.
"""

from __future__ import annotations

import hashlib

from repro.analysis.instrument import InstrumentationPlan
from repro.analysis.symtab import scalar_reads_in
from repro.dsl.ast_nodes import ArrayRef, walk_expressions
from repro.interp.env import Environment


def pattern_signature(plan: InstrumentationPlan, env: Environment) -> str | None:
    """Digest of all state that determines the loop's access pattern.

    Returns None when the pattern depends on loop-written data (no safe
    reuse possible).
    """
    if not plan.inspector_extractable:
        return None

    arrays: set[str] = set()
    scalars: set[str] = set()
    _collect_slice_inputs(plan, arrays, scalars)

    digest = hashlib.sha256()
    for name in sorted(arrays):
        digest.update(name.encode())
        digest.update(env.content_digest(name))
    for name in sorted(scalars):
        if name in env.scalars:
            digest.update(name.encode())
            digest.update(repr(env.scalars[name]).encode())
    # Loop bounds are part of the pattern.
    digest.update(repr(_bounds_key(plan, env)).encode())
    return digest.hexdigest()


def _collect_slice_inputs(
    plan: InstrumentationPlan, arrays: set[str], scalars: set[str]
) -> None:
    from repro.analysis.symtab import iter_array_refs

    loop = plan.loop
    for site in iter_array_refs(loop.body):
        if site.ref.name in plan.tested_arrays:
            scalars |= scalar_reads_in(site.ref.index)
            for node in walk_expressions(site.ref.index):
                if isinstance(node, ArrayRef):
                    arrays.add(node.name)
    from repro.dsl.ast_nodes import Do, If, While

    def visit(body):
        for stmt in body:
            if isinstance(stmt, If):
                scalars.update(scalar_reads_in(stmt.cond))
                for node in walk_expressions(stmt.cond):
                    if isinstance(node, ArrayRef):
                        arrays.add(node.name)
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, (Do, While)):
                roots = (
                    [stmt.cond]
                    if isinstance(stmt, While)
                    else [stmt.start, stmt.stop] + ([stmt.step] if stmt.step else [])
                )
                for root in roots:
                    scalars.update(scalar_reads_in(root))
                    for node in walk_expressions(root):
                        if isinstance(node, ArrayRef):
                            arrays.add(node.name)
                visit(stmt.body)

    visit(loop.body)


def _bounds_key(plan: InstrumentationPlan, env: Environment) -> tuple:
    loop = plan.loop
    names = scalar_reads_in(loop.start) | scalar_reads_in(loop.stop)
    if loop.step is not None:
        names |= scalar_reads_in(loop.step)
    return tuple(sorted((n, env.scalars.get(n)) for n in names if n in env.scalars))
