"""The unified per-loop profile store.

One :class:`LoopProfileStore` replaces three previously disjoint memory
layers:

* the **schedule cache** (paper §IV.D): LRPD verdicts keyed by
  (loop identity, access-pattern signature), now LRU-bounded by entry
  count *and* estimated bytes, with hit/miss/eviction counters;
* the **run ledger**: a bounded ring of :class:`RunObservation` records
  per loop — engine, backend, measured wall clock, verdict, fallback
  reason, strip size — the substrate of the feedback-driven planner;
* the **jit warm-up ledger** (:class:`KernelCache`): which native-kernel
  dispatch keys have been compiled this process.

Everything the runtime learns about a loop flows through this one
object; ``benchmarks/check_engine_dispatch.py`` lints that
:class:`ScheduleCache` / :class:`KernelCache` are never constructed
outside this package, so no second copy of the state can quietly
reappear at a call site.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.core.outcomes import LrpdResult
from repro.runtime.profile.observation import RunObservation

#: default bound on cached verdict entries across all loops.
DEFAULT_MAX_ENTRIES = 256
#: default bound on the verdict cache's estimated footprint.
DEFAULT_MAX_BYTES = 1 << 20
#: default length of each loop's observation ring.
DEFAULT_RING = 32

#: historical failure rate at/above which the planner skips speculation.
FAILURE_RATE_THRESHOLD = 0.5
#: minimum tested attempts before the failure-rate veto can fire.
MIN_VETO_ATTEMPTS = 2
#: mean recovered fraction at/above which the DOACROSS recovery tier's
#: history counts as worthwhile — below it recovery is vetoed, at/above
#: it recovery can even rescue a failure-rate-vetoed loop.
RECOVERY_MIN_FRACTION = 0.25


@dataclass
class VerdictEntry:
    """One cached LRPD verdict and how often it has been reused."""

    result: LrpdResult
    hits: int = 0


def _entry_bytes(loop_key: str, signature: str, entry: VerdictEntry) -> int:
    """Estimated footprint of one verdict entry (keys + result record)."""
    return len(loop_key) + len(signature) + 48 + 88 * len(entry.result.details)


class ScheduleCache:
    """LRU verdict cache: (loop identity, pattern signature) → result.

    Bounded by entry count and estimated bytes; lookups refresh recency,
    and every lookup/record outcome is counted (the counters surface on
    :class:`~repro.runtime.results.ExecutionReport` and under the CLI's
    ``--verbose``).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple[str, str], VerdictEntry] = OrderedDict()
        self._bytes = 0
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, loop_key: str, signature: str | None) -> LrpdResult | None:
        self.lookups += 1
        if signature is None:
            self.misses += 1
            return None
        key = (loop_key, signature)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.hits += 1
        return entry.result

    def record(self, loop_key: str, signature: str | None, result: LrpdResult) -> None:
        if signature is None:
            return
        key = (loop_key, signature)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= _entry_bytes(loop_key, signature, old)
        entry = VerdictEntry(result=result, hits=old.hits if old else 0)
        self._entries[key] = entry
        self._bytes += _entry_bytes(loop_key, signature, entry)
        self._evict()

    def _evict(self) -> None:
        """Drop least-recently-used entries past either bound (the newest
        entry always survives, even if it alone exceeds the byte bound)."""
        while len(self._entries) > 1 and (
            len(self._entries) > self.max_entries or self._bytes > self.max_bytes
        ):
            (loop_key, signature), entry = self._entries.popitem(last=False)
            self._bytes -= _entry_bytes(loop_key, signature, entry)
            self.evictions += 1

    def entry_hits(self, loop_key: str, signature: str) -> int | None:
        entry = self._entries.get((loop_key, signature))
        return None if entry is None else entry.hits

    def items(self):
        """(loop_key, signature, entry) triples in LRU→MRU order."""
        for (loop_key, signature), entry in self._entries.items():
            yield loop_key, signature, entry

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)


class KernelCache:
    """Warm-up ledger for the jit engine's compiled-kernel dispatch keys.

    The first run against a given ``(loop signature, dtype)`` key drives
    every kernel once (:func:`repro.core.jit_kernels.warm_up`) so njit
    compiles — or disk-cache-loads — the machine code before the doall
    is timed; the measured seconds surface as ``jit_compile_s`` on the
    run.  Repeat runs with a warm key pay nothing, and the planner
    prefers the jit engine only once some key is warm.

    Warmth is per-process state (compiled code dies with the process),
    so the ledger is deliberately *not* persisted with the rest of the
    profile store.
    """

    def __init__(self) -> None:
        self._warm: dict[str, float] = {}

    def ensure(self, key: str, kernels) -> float:
        """Warm ``kernels`` for ``key`` if cold; the compile seconds paid."""
        if key in self._warm:
            return 0.0
        from repro.core.jit_kernels import warm_up

        seconds = warm_up(kernels)
        self._warm[key] = seconds
        return seconds

    def any_warm(self) -> bool:
        return bool(self._warm)

    def clear(self) -> None:
        self._warm.clear()

    def __len__(self) -> int:
        return len(self._warm)


#: process-wide warm-up ledger (cleared by tests needing cold planners).
#: Every :class:`LoopProfileStore` shares it by default — warmth is a
#: property of the process, not of one store instance.
kernel_cache = KernelCache()


@dataclass
class LoopProfile:
    """Everything remembered about one loop identity."""

    observations: deque = field(
        default_factory=lambda: deque(maxlen=DEFAULT_RING)
    )
    #: planner decisions taken for this loop (drives the deterministic
    #: epsilon-greedy exploration schedule).
    decisions: int = 0
    #: the failure-rate veto fired on the last :meth:`speculation_veto`
    #: query for this loop.
    vetoed: bool = False
    #: a previously firing veto has since lifted and nobody consumed the
    #: transition yet (see :meth:`LoopProfileStore.veto_cleared`).
    veto_lifted: bool = False


class LoopProfileStore:
    """The one store behind schedule reuse, run telemetry and planning.

    ``path`` enables JSON persistence: the constructor loads an existing
    profile file (tolerating missing/corrupt/foreign files — see
    :mod:`repro.runtime.profile.persist`) and :meth:`save` writes it
    back atomically.
    """

    def __init__(
        self,
        *,
        path=None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        ring: int = DEFAULT_RING,
        kernels: KernelCache | None = None,
    ):
        self.verdicts = ScheduleCache(max_entries=max_entries, max_bytes=max_bytes)
        self.ring = ring
        self._profiles: dict[str, LoopProfile] = {}
        self.kernels = kernels if kernels is not None else kernel_cache
        self.path = path
        #: why the last :meth:`load` started empty (None on clean loads).
        self.load_error: str | None = None
        if path is not None:
            self.load()

    # -- verdicts (schedule reuse) ----------------------------------------

    def lookup_verdict(self, loop_key: str, signature: str | None) -> LrpdResult | None:
        return self.verdicts.lookup(loop_key, signature)

    def record_verdict(
        self, loop_key: str, signature: str | None, result: LrpdResult
    ) -> None:
        self.verdicts.record(loop_key, signature, result)

    @property
    def lookups(self) -> int:
        return self.verdicts.lookups

    @property
    def hits(self) -> int:
        return self.verdicts.hits

    @property
    def misses(self) -> int:
        return self.verdicts.misses

    @property
    def evictions(self) -> int:
        return self.verdicts.evictions

    def counters(self) -> dict[str, int]:
        """Snapshot of the verdict-cache counters (report/CLI surface)."""
        return {
            "lookups": self.verdicts.lookups,
            "hits": self.verdicts.hits,
            "misses": self.verdicts.misses,
            "evictions": self.verdicts.evictions,
            "entries": len(self.verdicts),
        }

    # -- observations (run telemetry) -------------------------------------

    def _profile(self, loop_key: str) -> LoopProfile:
        profile = self._profiles.get(loop_key)
        if profile is None:
            profile = LoopProfile(
                observations=deque(maxlen=self.ring)
            )
            self._profiles[loop_key] = profile
        return profile

    def observe(self, loop_key: str, observation: RunObservation) -> None:
        self._profile(loop_key).observations.append(observation)

    def observations(self, loop_key: str) -> list[RunObservation]:
        profile = self._profiles.get(loop_key)
        return list(profile.observations) if profile else []

    def loop_keys(self) -> list[str]:
        return sorted(self._profiles)

    def next_decision(self, loop_key: str) -> int:
        """Increment and return the loop's planner-decision counter."""
        profile = self._profile(loop_key)
        profile.decisions += 1
        return profile.decisions

    # -- derived queries the planner consumes ------------------------------

    def engine_stats(self, loop_key: str) -> dict[str, tuple[int, float]]:
        """Per-engine (count, mean doall seconds) over the ring.

        Only observations that actually timed a doall count; reused-
        schedule runs skip marking/analysis and would skew the mean.
        """
        sums: dict[str, tuple[int, float]] = {}
        for obs in self.observations(loop_key):
            if obs.engine is None or obs.reused or obs.doall_s <= 0.0:
                continue
            count, total = sums.get(obs.engine, (0, 0.0))
            sums[obs.engine] = (count + 1, total + obs.doall_s)
        return {
            engine: (count, total / count)
            for engine, (count, total) in sums.items()
        }

    def warm_strip_size(self, loop_key: str) -> int | None:
        """The most recent passing strip-mined run's converged strip size."""
        for obs in reversed(self.observations(loop_key)):
            if obs.strip_size is not None and obs.passed:
                return obs.strip_size
        return None

    def failure_stats(self, loop_key: str) -> tuple[int, int]:
        """(failed attempts, tested attempts) over the observation ring."""
        failures = attempts = 0
        for obs in self.observations(loop_key):
            if obs.passed is None:
                continue
            attempts += 1
            if not obs.passed:
                failures += 1
        return failures, attempts

    def speculation_veto(
        self,
        loop_key: str,
        *,
        threshold: float = FAILURE_RATE_THRESHOLD,
        min_attempts: int = MIN_VETO_ATTEMPTS,
    ) -> str | None:
        """Evidence string when history says speculation is doomed.

        Returns None while the loop's recorded failure rate is below
        ``threshold`` (or too few tested attempts exist).  The returned
        string is the planner's recorded decision reason — it carries
        the evidence (counts and rate), not just the verdict.
        """
        failures, attempts = self.failure_stats(loop_key)
        verdict: str | None = None
        if attempts >= min_attempts:
            rate = failures / attempts
            if rate >= threshold:
                verdict = (
                    f"feedback: historical failure rate {failures}/{attempts} "
                    f"({rate:.0%}) >= {threshold:.0%} — skipping speculation "
                    f"and running serially"
                )
        profile = self._profile(loop_key)
        if verdict is not None:
            profile.vetoed = True
        elif profile.vetoed:
            # The veto just lifted (the ring's failures aged out or new
            # passes diluted them): remember the transition for one
            # consumer — the adaptive strip sizer resets its floor on it.
            profile.vetoed = False
            profile.veto_lifted = True
        return verdict

    def veto_cleared(self, loop_key: str) -> bool:
        """True exactly once per veto→lifted transition (consumed on read).

        A lifted veto means the failure history that shaped this loop's
        warm-started strip-size floor is stale; the caller resets the
        floor so failures can shrink strips all the way down again.
        """
        profile = self._profiles.get(loop_key)
        if profile is None or not profile.veto_lifted:
            return False
        profile.veto_lifted = False
        return True

    # -- recovery history (DOACROSS tier) ----------------------------------

    def recovery_stats(self, loop_key: str) -> tuple[int, float, float]:
        """(count, mean recovered fraction, mean sync-wait cycles) over
        the ring's observations that exercised the recovery tier —
        including deterministic vetoes, which record a 0.0 fraction and
        rightly drag the mean down."""
        count = 0
        frac_total = sync_total = 0.0
        for obs in self.observations(loop_key):
            if obs.recovered_fraction is None:
                continue
            count += 1
            frac_total += obs.recovered_fraction
            sync_total += obs.sync_wait_cycles
        if count == 0:
            return 0, 0.0, 0.0
        return count, frac_total / count, sync_total / count

    def recovery_rescue(
        self,
        loop_key: str,
        *,
        min_fraction: float = RECOVERY_MIN_FRACTION,
    ) -> str | None:
        """Evidence string when recovery history justifies speculating
        past a failure-rate veto (None otherwise).

        A loop that keeps failing its LRPD test but keeps winning back a
        useful fraction of the serial re-run through the DOACROSS tier
        is worth speculating on anyway — the failure is the entry ticket
        to the pipelined re-execution.
        """
        count, mean, _sync = self.recovery_stats(loop_key)
        if count < 1 or mean < min_fraction:
            return None
        return (
            f"feedback: DOACROSS recovery won back {mean:.0%} of the serial "
            f"re-run on average over {count} recovered run(s) (>= "
            f"{min_fraction:.0%}) — speculating past the failure veto with "
            f"recovery armed"
        )

    def recovery_veto(
        self,
        loop_key: str,
        *,
        min_fraction: float = RECOVERY_MIN_FRACTION,
        min_attempts: int = 1,
    ) -> str | None:
        """Evidence string when recovery history says the tier is not
        paying for itself on this loop (None while history is thin or
        good).  Measured distances ≤ 1 record a 0.0 recovered fraction,
        so a loop whose profiled distances are serial chains
        deterministically lands here."""
        count, mean, _sync = self.recovery_stats(loop_key)
        if count < min_attempts:
            return None
        if mean >= min_fraction:
            return None
        return (
            f"feedback: DOACROSS recovery won back only {mean:.0%} on "
            f"average over {count} recovered run(s) (< {min_fraction:.0%}) "
            f"— failed runs roll back serially"
        )

    # -- persistence -------------------------------------------------------

    def load(self, path=None) -> None:
        """Replace contents from ``path`` (or the constructor's path).

        Missing, truncated, corrupt or foreign files leave the store
        empty and record the reason on :attr:`load_error` — persistence
        must never take the runtime down.
        """
        from repro.runtime.profile.persist import load_into

        self.load_error = load_into(self, path if path is not None else self.path)

    def save(self, path=None) -> None:
        """Atomically write the store to ``path`` (no-op when pathless)."""
        from repro.runtime.profile.persist import save_store

        target = path if path is not None else self.path
        if target is not None:
            save_store(self, target)

    def clear(self) -> None:
        self.verdicts.clear()
        self._profiles.clear()

    def __len__(self) -> int:
        return len(self.verdicts)
