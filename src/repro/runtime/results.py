"""Result records of strategy executions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.outcomes import LrpdResult
from repro.interp.costs import IterationCost
from repro.interp.env import Environment
from repro.machine.stats import StripRecord, TimeBreakdown, WallClock


@dataclass
class SerialRun:
    """A serial reference execution of a whole program."""

    env: Environment
    loop_iteration_costs: list[IterationCost]
    loop_time: float      # simulated cycles of the target loop alone
    setup_time: float
    teardown_time: float
    num_iterations: int
    #: the serial-capable engine that executed the program.
    engine: str = "walk"
    #: set when the requested engine cannot run serially and the registry
    #: substituted one from its fallback chain (e.g. parallel → compiled).
    engine_substitution: str | None = None


@dataclass
class ExecutionReport:
    """Outcome of running the target loop under one strategy."""

    strategy: str                 # serial | speculative | stripped | inspector
    machine: str
    procs: int
    passed: bool | None           # None when no test ran
    test_result: LrpdResult | None
    times: TimeBreakdown
    serial_loop_time: float
    env: Environment
    reused_schedule: bool = False
    stats: dict[str, float] = field(default_factory=dict)
    #: per-strip records of a strip-mined execution (empty otherwise).
    strips: list[StripRecord] = field(default_factory=list)
    #: measured wall-clock phase durations (None when not recorded);
    #: real seconds, reported alongside — never mixed into — the
    #: simulated cycle accounting above.
    wall: WallClock | None = None
    #: per-loop engine fallback decisions: (loop key, reject reason)
    #: recorded when a requested engine (e.g. "vectorized") silently
    #: degraded to compiled.  Printed under the CLI's ``--verbose``.
    fallbacks: list[tuple[str, str]] = field(default_factory=list)
    #: the engine that actually executed the (first strip of the) loop.
    engine_used: str | None = None
    #: per-loop ``auto`` planner decisions: (loop key, reason).  Empty
    #: for explicit engine requests.  Printed under ``--verbose``.
    engine_decisions: list[tuple[str, str]] = field(default_factory=list)
    #: profile-store verdict-cache counters (lookups/hits/misses/
    #: evictions/entries) snapshotted after the run.  Kept out of
    #: :attr:`stats` on purpose — engine parity asserts ``stats``
    #: equality across engines, and cache state is cross-run memory,
    #: not a property of this execution.  Printed under ``--verbose``.
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def loop_time(self) -> float:
        return self.times.total()

    @property
    def speedup(self) -> float:
        """Simulated speedup of the loop vs its serial execution."""
        total = self.loop_time
        if total <= 0.0:
            return float("inf")
        return self.serial_loop_time / total

    def describe(self) -> str:
        test = self.test_result.describe() if self.test_result else "no test"
        strips = ""
        if self.strips:
            failed = sum(1 for s in self.strips if not s.passed)
            strips = f", {len(self.strips)} strips ({failed} rolled back)"
        return (
            f"{self.strategy} on {self.machine} (p={self.procs}): "
            f"speedup {self.speedup:.2f} ({test}{strips})"
        )
