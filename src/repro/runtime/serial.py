"""Serial reference execution.

Provides the sequential oracle (for correctness checks), the serial loop
time used as the speedup denominator, and the serial re-execution after a
failed speculation.
"""

from __future__ import annotations

from repro.dsl.ast_nodes import Do, Program
from repro.interp.costs import CostCounter, IterationCost
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter, find_target_loop, split_at_loop
from repro.machine.costmodel import CostModel
from repro.runtime.results import SerialRun


def loop_iteration_values(start: int, stop: int, step: int) -> list[int]:
    """The iteration values a Fortran do loop executes."""
    values = []
    value = start
    while (step > 0 and value <= stop) or (step < 0 and value >= stop):
        values.append(value)
        value += step
    return values


def run_serial(
    program: Program,
    inputs: dict,
    model: CostModel,
    *,
    loop: Do | None = None,
    engine: str = "walk",
) -> SerialRun:
    """Execute the program serially, timing the target loop per iteration.

    ``engine`` selects the execution engine: ``"walk"`` (the
    tree-walking interpreter) or ``"compiled"`` (the closure-compiling
    fast path of :mod:`repro.interp.compiled`); both produce identical
    state and identical operation counts.
    """
    env = Environment(program, inputs)
    if loop is None:
        loop = find_target_loop(program)
    before, after = split_at_loop(program, loop)

    if engine == "compiled":
        return _run_serial_compiled(program, env, model, loop, before, after)
    if engine != "walk":
        raise ValueError(f"unknown serial engine {engine!r}")

    setup_cost = CostCounter()
    interp = Interpreter(program, env, cost=setup_cost, value_based=False)
    interp.exec_block(before)
    setup_time = model.iteration_cycles(setup_cost.total())

    loop_cost = CostCounter()
    interp.cost = loop_cost
    start, stop, step = interp.eval_loop_bounds(loop)
    values = loop_iteration_values(start, stop, step)
    for value in values:
        interp.exec_iteration(loop, value)
    env.set_scalar(loop.var, (values[-1] + step) if values else start)

    teardown_cost = CostCounter()
    interp.cost = teardown_cost
    interp.exec_block(after)
    teardown_time = model.iteration_cycles(teardown_cost.total())

    iteration_costs = list(loop_cost.iteration_costs)
    loop_time = sum(model.iteration_cycles(c) for c in iteration_costs)
    return SerialRun(
        env=env,
        loop_iteration_costs=iteration_costs,
        loop_time=loop_time,
        setup_time=setup_time,
        teardown_time=teardown_time,
        num_iterations=len(values),
    )


def _run_serial_compiled(program, env, model, loop, before, after) -> SerialRun:
    from repro.interp.compiled import compile_program

    compiled = compile_program(program)

    setup_cost = CostCounter()
    compiled.run_statements(before, env, setup_cost)
    setup_time = model.iteration_cycles(setup_cost.total())

    bounds_interp = Interpreter(program, env, value_based=False)
    start, stop, step = bounds_interp.eval_loop_bounds(loop)
    # Bound evaluation is re-done by the walker for simplicity; undo its
    # count contribution by using a throwaway counter (already the case:
    # the walker gets a fresh default counter here).
    values = loop_iteration_values(start, stop, step)
    loop_cost = CostCounter()
    compiled.run_loop(loop, env, loop_cost, values)
    env.set_scalar(loop.var, (values[-1] + step) if values else start)

    teardown_cost = CostCounter()
    compiled.run_statements(after, env, teardown_cost)
    teardown_time = model.iteration_cycles(teardown_cost.total())

    iteration_costs = list(loop_cost.iteration_costs)
    return SerialRun(
        env=env,
        loop_iteration_costs=iteration_costs,
        loop_time=sum(model.iteration_cycles(c) for c in iteration_costs),
        setup_time=setup_time,
        teardown_time=teardown_time,
        num_iterations=len(values),
    )


def rerun_values_serially(
    interp: Interpreter,
    loop: Do,
    values: list[int],
    step: int,
    model: CostModel,
) -> tuple[float, list[IterationCost]]:
    """Serially re-execute one *strip* of the target loop after a
    strip-local rollback.

    Unlike :func:`rerun_loop_serially` the loop bounds are not
    re-evaluated — the strip pipeline already knows the iteration values
    it speculated over — so only the executed iterations are charged.
    ``step`` positions the loop variable past the strip, exactly where
    a serial execution of those iterations would leave it.
    """
    cost = CostCounter()
    previous = interp.cost
    interp.cost = cost
    for value in values:
        interp.exec_iteration(loop, value)
    if values:
        interp.env.set_scalar(loop.var, values[-1] + step)
    interp.cost = previous
    iteration_costs = list(cost.iteration_costs)
    return sum(model.iteration_cycles(c) for c in iteration_costs), iteration_costs


def rerun_loop_serially(
    interp: Interpreter,
    loop: Do,
    model: CostModel,
) -> tuple[float, list[IterationCost]]:
    """Re-execute the target loop serially (after a rollback).

    Uses the given interpreter (plain memory, no marking) and returns the
    simulated serial time.
    """
    cost = CostCounter()
    previous = interp.cost
    interp.cost = cost
    start, stop, step = interp.eval_loop_bounds(loop)
    values = loop_iteration_values(start, stop, step)
    for value in values:
        interp.exec_iteration(loop, value)
    interp.env.set_scalar(loop.var, (values[-1] + step) if values else start)
    interp.cost = previous
    iteration_costs = list(cost.iteration_costs)
    return sum(model.iteration_cycles(c) for c in iteration_costs), iteration_costs
