"""Serial reference execution.

Provides the sequential oracle (for correctness checks), the serial loop
time used as the speedup denominator, and the serial re-execution after a
failed speculation.
"""

from __future__ import annotations

from repro.dsl.ast_nodes import Do, Program
from repro.interp.costs import CostCounter, IterationCost
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter, find_target_loop, split_at_loop
from repro.machine.costmodel import CostModel
from repro.runtime.results import SerialRun


def loop_iteration_values(start: int, stop: int, step: int) -> list[int]:
    """The iteration values a Fortran do loop executes."""
    values = []
    value = start
    while (step > 0 and value <= stop) or (step < 0 and value >= stop):
        values.append(value)
        value += step
    return values


def run_serial(
    program: Program,
    inputs: dict,
    model: CostModel,
    *,
    loop: Do | None = None,
    engine: str = "walk",
) -> SerialRun:
    """Execute the program serially, timing the target loop per iteration.

    ``engine`` names any registered execution engine; the registry
    substitutes the first serial-capable engine on its fallback chain
    for doall-only engines (e.g. ``parallel`` → ``compiled``), recording
    the substitution on the returned run.  All serial-capable engines
    produce identical state and identical operation counts.
    """
    # Imported lazily: the engine modules import SerialRun helpers from
    # this module.
    from repro.runtime.engines import get_engine, serial_engine_for

    serial_name, substitution = serial_engine_for(engine)
    executor = get_engine(serial_name)

    env = Environment(program, inputs)
    if loop is None:
        loop = find_target_loop(program)
    before, after = split_at_loop(program, loop)

    run = executor.execute_serial(program, env, model, loop, before, after)
    run.engine_substitution = substitution
    return run


def rerun_values_serially(
    interp: Interpreter,
    loop: Do,
    values: list[int],
    step: int,
    model: CostModel,
) -> tuple[float, list[IterationCost]]:
    """Serially re-execute one *strip* of the target loop after a
    strip-local rollback.

    Unlike :func:`rerun_loop_serially` the loop bounds are not
    re-evaluated — the strip pipeline already knows the iteration values
    it speculated over — so only the executed iterations are charged.
    ``step`` positions the loop variable past the strip, exactly where
    a serial execution of those iterations would leave it.
    """
    cost = CostCounter()
    previous = interp.cost
    interp.cost = cost
    for value in values:
        interp.exec_iteration(loop, value)
    if values:
        interp.env.set_scalar(loop.var, values[-1] + step)
    interp.cost = previous
    iteration_costs = list(cost.iteration_costs)
    return sum(model.iteration_cycles(c) for c in iteration_costs), iteration_costs


def rerun_loop_serially(
    interp: Interpreter,
    loop: Do,
    model: CostModel,
) -> tuple[float, list[IterationCost]]:
    """Re-execute the target loop serially (after a rollback).

    Uses the given interpreter (plain memory, no marking) and returns the
    simulated serial time.
    """
    cost = CostCounter()
    previous = interp.cost
    interp.cost = cost
    start, stop, step = interp.eval_loop_bounds(loop)
    values = loop_iteration_values(start, stop, step)
    for value in values:
        interp.exec_iteration(loop, value)
    interp.env.set_scalar(loop.var, (values[-1] + step) if values else start)
    interp.cost = previous
    iteration_costs = list(cost.iteration_costs)
    return sum(model.iteration_cycles(c) for c in iteration_costs), iteration_costs
