"""Speculative execution strategy (the paper's §III protocol).

Checkpoint → marked doall (with privatization and reduction transforms
applied speculatively) → LRPD analysis → on pass, merge private state; on
fail, restore the checkpoint and re-execute serially.  The paper's key
property holds by construction: a failed speculation costs roughly the
serial execution plus the (parallelizable) attempt and rollback overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.instrument import InstrumentationPlan
from repro.core.checkpoint import Checkpoint
from repro.core.lrpd import analyze_shadows
from repro.core.outcomes import LrpdResult, TestMode
from repro.core.shadow import Granularity, ShadowMarker
from repro.dsl.ast_nodes import Do, Program
from repro.errors import SpeculationError
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.machine.stats import TimeBreakdown
from repro.runtime.doall import DoallRun, finalize_doall, run_doall
from repro.runtime.serial import rerun_loop_serially


@dataclass
class SpeculativeOutcome:
    """What one speculative attempt produced."""

    result: LrpdResult
    times: TimeBreakdown
    run: DoallRun
    stats: dict[str, float]


def run_speculative(
    program: Program,
    loop: Do,
    env: Environment,
    plan: InstrumentationPlan,
    sim: DoallSimulator,
    *,
    test_mode: TestMode = TestMode.LRPD,
    granularity: Granularity = Granularity.ITERATION,
    schedule: ScheduleKind = ScheduleKind.BLOCK,
    dynamic_last_value: bool = True,
    directional: bool = True,
    eager: bool = False,
    engine: str = "compiled",
    marker: ShadowMarker | None = None,
) -> SpeculativeOutcome:
    """Run the full speculative protocol; ``env`` must be at loop entry.

    On return ``env`` holds the post-loop state regardless of the test's
    outcome (merged on pass, restored + serially recomputed on fail).

    ``engine`` selects the doall iteration executor (see
    :func:`repro.runtime.doall.run_doall`).  ``marker`` optionally recycles
    a previous attempt's shadow buffers (reset in place instead of
    reallocating seven numpy arrays per tested array); it must have been
    built for the same tested arrays and sizes, else a fresh one is made.
    """
    if granularity is Granularity.PROCESSOR and schedule is not ScheduleKind.BLOCK:
        raise SpeculationError(
            "the processor-wise test requires block scheduling (granule "
            "numbering must follow serial order)"
        )
    times = TimeBreakdown()
    stats: dict[str, float] = {}

    protected = set(plan.checkpoint_arrays) | set(plan.tested_arrays) | set(
        plan.reduction_arrays
    )
    checkpoint = Checkpoint(env, protected)
    times.checkpoint = sim.checkpoint_time(checkpoint.elements_saved)

    shadow_sizes = {name: env.array_size(name) for name in plan.tested_arrays}
    eager_enabled = (
        eager
        and test_mode is TestMode.LRPD
        and granularity is Granularity.ITERATION
        and directional
        and dynamic_last_value
    )
    if marker is not None and {
        name: shadow.size for name, shadow in marker.shadows.items()
    } == shadow_sizes:
        marker.reset(granularity, eager=eager_enabled)
    else:
        marker = ShadowMarker(
            shadow_sizes, granularity=granularity, eager=eager_enabled
        )
    times.shadow_init = sim.shadow_init_time(sum(shadow_sizes.values()))

    run = run_doall(
        program,
        loop,
        env,
        plan,
        sim.num_procs,
        marker=marker,
        value_based=(test_mode is TestMode.LRPD),
        schedule=schedule,
        engine=engine,
    )
    times.private_init = sim.private_init_time(
        sum(p.size for p in run.privates.values())
    )
    body, dispatch, barrier = sim.doall_time(
        run.iteration_costs,
        assignment=None if schedule is ScheduleKind.DYNAMIC else run.assignment,
    )
    times.body, times.dispatch, times.barrier = body, dispatch, barrier

    result = analyze_shadows(
        marker,
        test_mode,
        dynamic_last_value=dynamic_last_value,
        directional=directional,
    )
    if run.aborted:
        # On-the-fly detection already decided: no analysis phase runs.
        assert not result.passed, "eager abort must imply a failing analysis"
        times.analysis = 0.0
        stats["aborted_after"] = float(run.executed_iterations)
    else:
        times.analysis = sim.analysis_time(sum(shadow_sizes.values()))

    stats["marks"] = float(sum(c.marks for c in run.iteration_costs))
    stats["iterations"] = float(run.num_iterations)

    if result.passed:
        finalize = finalize_doall(run, env, plan, loop)
        times.reduction_merge = sim.reduction_merge_time(finalize.reduction_merged)
        times.copy_out = sim.copy_out_time(finalize.copied_out)
        stats["reduction_merged"] = float(finalize.reduction_merged)
        stats["copied_out"] = float(finalize.copied_out)
    else:
        checkpoint.restore()
        times.restore = sim.restore_time(checkpoint.elements_saved)
        serial_interp = Interpreter(program, env, value_based=False)
        serial_time, _costs = rerun_loop_serially(serial_interp, loop, sim.model)
        times.serial_rerun = serial_time

    return SpeculativeOutcome(result=result, times=times, run=run, stats=stats)
