"""Speculative execution strategies (the paper's §III protocol and the
strip-mined R-LRPD-style pipeline).

:func:`run_speculative` is the paper's all-or-nothing protocol:
checkpoint → marked doall (with privatization and reduction transforms
applied speculatively) → LRPD analysis → on pass, merge private state; on
fail, restore the checkpoint and re-execute serially.  The paper's key
property holds by construction: a failed speculation costs roughly the
serial execution plus the (parallelizable) attempt and rollback overhead.

:class:`SpeculationPipeline` strip-mines that protocol: the iteration
space is partitioned into strips that are speculated, tested and
*committed* one at a time, in serial order.  A failed strip rolls back
and re-executes only itself serially before speculation resumes, so
misspeculation loss is bounded by one strip and loops that are only
*partially* parallel (a dependence cluster somewhere in the iteration
space) still extract speedup from their parallel regions — the
R-LRPD-style sliding commit later work built on the paper's protocol.
Cross-strip dependences need no test at all: strips commit in serial
order, so a later strip always reads earlier strips' committed values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.instrument import InstrumentationPlan
from repro.core.checkpoint import Checkpoint
from repro.core.lrpd import StripAggregator, analyze_shadows
from repro.core.outcomes import LrpdResult, TestMode
from repro.core.shadow import Granularity, ShadowMarker
from repro.dsl.ast_nodes import Do, Program
from repro.errors import SpeculationError
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.machine.stats import StripRecord, TimeBreakdown, WallClock
from repro.runtime.doall import DoallRun, finalize_doall, run_doall
from repro.runtime.serial import (
    loop_iteration_values,
    rerun_loop_serially,
    rerun_values_serially,
)


@dataclass
class SpeculativeOutcome:
    """What one speculative attempt produced."""

    result: LrpdResult
    times: TimeBreakdown
    run: DoallRun
    stats: dict[str, float]
    #: measured wall-clock seconds per phase (real host time, recorded
    #: for every engine; the interesting one is ``engine="parallel"``).
    wall: WallClock = field(default_factory=WallClock)
    #: the DOACROSS recovery tier's go/veto rationale (None when the run
    #: passed or recovery was not requested).
    recovery_decision: str | None = None


def _plan_recovery(marker: ShadowMarker, run: DoallRun, granularity: Granularity):
    """Resolve the recovery engine and its go/veto for one failed region.

    Must be called while the failed attempt's shadow stamps are still
    intact (before the marker is reset for a next strip).  Returns
    ``(engine, distance, reason)`` with ``distance`` None on a veto.
    """
    from repro.analysis.dependence import measure_shadow_distances
    from repro.runtime.engines import recovery_engine

    engine = recovery_engine()
    report = measure_shadow_distances(marker, run.num_iterations)
    distance, reason = engine.recovery_decision(
        report, aborted=run.aborted, granularity=granularity
    )
    return engine, distance, reason


def run_speculative(
    program: Program,
    loop: Do,
    env: Environment,
    plan: InstrumentationPlan,
    sim: DoallSimulator,
    *,
    test_mode: TestMode = TestMode.LRPD,
    granularity: Granularity = Granularity.ITERATION,
    schedule: ScheduleKind = ScheduleKind.BLOCK,
    dynamic_last_value: bool = True,
    directional: bool = True,
    eager: bool = False,
    engine: str = "compiled",
    marker: ShadowMarker | None = None,
    workers: int | None = None,
    pool=None,
    backend: str = "fork",
    profiles=None,
    loop_key: str | None = None,
    recovery: bool = False,
) -> SpeculativeOutcome:
    """Run the full speculative protocol; ``env`` must be at loop entry.

    On return ``env`` holds the post-loop state regardless of the test's
    outcome (merged on pass, restored + serially recomputed on fail).
    With ``recovery`` a failed test measures the shadow dependence
    distances first and — unless the deterministic veto fires — prices
    the re-execution as a pipelined DOACROSS instead of a serial re-run;
    the re-executed state is bit-identical either way.

    ``engine`` selects the doall iteration executor (see
    :func:`repro.runtime.doall.run_doall`); ``workers``/``pool`` are the
    parallel engine's real process count / persistent worker pool.
    ``marker`` optionally recycles a previous attempt's shadow buffers
    (reset in place instead of reallocating seven numpy arrays per
    tested array); it must have been built for the same tested arrays
    and sizes, else a fresh one is made.
    """
    if granularity is Granularity.PROCESSOR and schedule is not ScheduleKind.BLOCK:
        raise SpeculationError(
            "the processor-wise test requires block scheduling (granule "
            "numbering must follow serial order)"
        )
    times = TimeBreakdown()
    wall = WallClock()
    stats: dict[str, float] = {}

    # Scope the checkpoint to the arrays the instrumentation plan marks
    # as written (tested and reduction arrays are written arrays too, so
    # they stay covered) — arrays the loop only reads are never saved.
    tick = time.perf_counter()
    protected = set(plan.checkpoint_arrays)
    checkpoint = Checkpoint(env, protected)
    wall.checkpoint = time.perf_counter() - tick
    times.checkpoint = sim.checkpoint_time(checkpoint.elements_saved)
    stats["checkpoint_elements"] = float(checkpoint.elements_saved)

    shadow_sizes = {name: env.array_size(name) for name in plan.tested_arrays}
    eager_enabled = (
        eager
        and test_mode is TestMode.LRPD
        and granularity is Granularity.ITERATION
        and directional
        and dynamic_last_value
    )
    if marker is not None and {
        name: shadow.size for name, shadow in marker.shadows.items()
    } == shadow_sizes:
        marker.reset(granularity, eager=eager_enabled)
    else:
        marker = ShadowMarker(
            shadow_sizes, granularity=granularity, eager=eager_enabled
        )
    times.shadow_init = sim.shadow_init_time(sum(shadow_sizes.values()))

    tick = time.perf_counter()
    run = run_doall(
        program,
        loop,
        env,
        plan,
        sim.num_procs,
        marker=marker,
        value_based=(test_mode is TestMode.LRPD),
        schedule=schedule,
        engine=engine,
        workers=workers,
        pool=pool,
        backend=backend,
        profiles=profiles,
        loop_key=loop_key,
    )
    wall.doall = time.perf_counter() - tick
    wall.jit_compile = run.jit_compile_s
    times.private_init = sim.private_init_time(
        sum(p.size for p in run.privates.values())
    )
    body, dispatch, barrier = sim.doall_time(
        run.iteration_costs,
        assignment=None if schedule is ScheduleKind.DYNAMIC else run.assignment,
    )
    times.body, times.dispatch, times.barrier = body, dispatch, barrier

    tick = time.perf_counter()
    result = analyze_shadows(
        marker,
        test_mode,
        dynamic_last_value=dynamic_last_value,
        directional=directional,
    )
    wall.analysis = time.perf_counter() - tick
    if run.aborted:
        # On-the-fly detection already decided: no analysis phase runs.
        assert not result.passed, "eager abort must imply a failing analysis"
        times.analysis = 0.0
        stats["aborted_after"] = float(run.executed_iterations)
    else:
        times.analysis = sim.analysis_time(sum(shadow_sizes.values()))

    stats["marks"] = float(sum(c.marks for c in run.iteration_costs))
    stats["iterations"] = float(run.num_iterations)

    if result.passed:
        tick = time.perf_counter()
        finalize = finalize_doall(run, env, plan, loop)
        wall.commit = time.perf_counter() - tick
        times.reduction_merge = sim.reduction_merge_time(finalize.reduction_merged)
        times.copy_out = sim.copy_out_time(finalize.copied_out)
        stats["reduction_merged"] = float(finalize.reduction_merged)
        stats["copied_out"] = float(finalize.copied_out)
    else:
        recovery_decision = None
        rec_engine = None
        distance = None
        if recovery:
            rec_engine, distance, recovery_decision = _plan_recovery(
                marker, run, granularity
            )
        tick = time.perf_counter()
        checkpoint.restore()
        times.restore = sim.restore_time(checkpoint.elements_saved)
        if distance is not None:
            _start, _stop, step = Interpreter(
                program, env, value_based=False
            ).eval_loop_bounds(loop)
            rec = rec_engine.recover(
                program, loop, env, run.values, step, sim, distance=distance
            )
            times.doacross = rec.time.total
            stats["recovered_iterations"] = float(rec.iterations)
            stats["recovery_distance"] = float(distance)
            stats["recovery_sync_waits"] = float(rec.time.sync_waits)
            stats["recovery_sync_wait_cycles"] = rec.time.sync_wait_cycles
            stats["recovered_fraction"] = rec.recovered_fraction
        else:
            serial_interp = Interpreter(program, env, value_based=False)
            serial_time, _costs = rerun_loop_serially(
                serial_interp, loop, sim.model
            )
            times.serial_rerun = serial_time
            if recovery:
                stats["recovered_fraction"] = 0.0
        wall.rollback = time.perf_counter() - tick
        return SpeculativeOutcome(
            result=result, times=times, run=run, stats=stats, wall=wall,
            recovery_decision=recovery_decision,
        )

    return SpeculativeOutcome(
        result=result, times=times, run=run, stats=stats, wall=wall
    )


# ---------------------------------------------------------------------------
# Strip-mined speculation
# ---------------------------------------------------------------------------


class FixedStripSizer:
    """The trivial strip-sizing policy: every strip has the same size."""

    def __init__(self, size: int):
        if size < 1:
            raise SpeculationError("strip size must be >= 1")
        self.size = size

    def next_size(self) -> int:
        return self.size

    def record(self, passed: bool) -> None:  # noqa: ARG002 - policy hook
        return None


@dataclass
class PipelineOutcome:
    """What one strip-mined execution produced."""

    #: aggregate whole-loop verdict (see :class:`StripAggregator`):
    #: ``passed`` means no strip needed its rollback.
    result: LrpdResult
    #: field-wise sum of the per-strip breakdowns.
    times: TimeBreakdown
    #: per-strip accounting, in commit order.
    strips: list[StripRecord] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)
    #: the (recyclable) shadow marker of the last strip.
    marker: ShadowMarker | None = None
    #: measured wall-clock phase durations, summed over the strips.
    wall: WallClock = field(default_factory=WallClock)
    #: first recorded engine-fallback reason across the strips (set when
    #: ``engine="vectorized"`` degraded to compiled; kept out of
    #: ``stats`` so engine parity over stats still holds).
    fallback_reason: str | None = None
    #: the engine that executed the first strip's doall.
    engine_used: str | None = None
    #: the ``auto`` planner's rationale for the first strip (None for
    #: explicit engine requests).
    engine_decision: str | None = None
    #: first recorded DOACROSS recovery go/veto rationale across the
    #: failed strips (None when no strip failed or recovery was off).
    recovery_decision: str | None = None


class SpeculationPipeline:
    """Windowed LRPD: speculate, test and commit one strip at a time.

    Each strip runs the full protocol of :func:`run_speculative` over its
    slice of the iteration space, with three strip-scoped twists:

    * the checkpoint saves only the state the strip's doall can write *in
      place*: written arrays that are neither privatized (tested) nor
      reduction-transformed — those two classes buffer their speculative
      writes in private copies / partial accumulators and touch shared
      storage only during the post-test commit, so a failed strip leaves
      them untouched;
    * the per-strip analysis and the between-strip shadow reset are
      priced over the strip's *touched* elements (a touched-element list
      maintained while marking), not the full shadow size;
    * on a pass the strip commits immediately (reduction merge, dynamic
      last-value copy-out, live-out scalars), on a fail it restores the
      strip checkpoint and re-executes *only its own iterations*
      serially — then speculation resumes with the next strip.

    Strips commit in serial order, so a dependence whose source and sink
    fall into different strips is honored without ever being tested:
    the sink's strip reads the committed value.  Only intra-strip
    dependences can fail a strip, which is what bounds misspeculation
    loss to one strip and makes partially parallel loops profitable.

    The shadow marker is recycled across strips (reset in place), and the
    per-strip privatization copy-in re-reads the committed shared state,
    which is exactly the copy-in semantics the paper's privatization
    defines.
    """

    def __init__(
        self,
        program: Program,
        loop: Do,
        env: Environment,
        plan: InstrumentationPlan,
        sim: DoallSimulator,
        *,
        sizer: FixedStripSizer,
        test_mode: TestMode = TestMode.LRPD,
        granularity: Granularity = Granularity.ITERATION,
        schedule: ScheduleKind = ScheduleKind.BLOCK,
        dynamic_last_value: bool = True,
        directional: bool = True,
        eager: bool = False,
        engine: str = "compiled",
        marker: ShadowMarker | None = None,
        workers: int | None = None,
        pool=None,
        backend: str = "fork",
        profiles=None,
        loop_key: str | None = None,
        recovery: bool = False,
    ):
        if granularity is Granularity.PROCESSOR and schedule is not ScheduleKind.BLOCK:
            raise SpeculationError(
                "the processor-wise test requires block scheduling (granule "
                "numbering must follow serial order)"
            )
        self.program = program
        self.loop = loop
        self.env = env
        self.plan = plan
        self.sim = sim
        self.sizer = sizer
        self.test_mode = test_mode
        self.granularity = granularity
        self.schedule = schedule
        self.dynamic_last_value = dynamic_last_value
        self.directional = directional
        self.eager = eager
        self.engine = engine
        self.workers = workers
        #: a caller-owned persistent worker pool (e.g. from a
        #: :class:`~repro.runtime.parallel_backend.WorkerPoolCache` kept
        #: across requests); when None and the engine shards, an
        #: ephemeral pool is forked for this run and closed after it.
        self.pool = pool
        self.backend = backend
        self.profiles = profiles
        self.loop_key = loop_key
        #: re-execute failed strips as pipelined DOACROSSes when their
        #: measured dependence distances allow it (see run_speculative).
        self.recovery = recovery
        self._marker = marker

    # -- pieces --------------------------------------------------------------

    def _strip_checkpoint_arrays(self) -> set[str]:
        """Arrays the strip's doall mutates in place (see class docs)."""
        plan = self.plan
        return (
            set(plan.checkpoint_arrays)
            - set(plan.tested_arrays)
            - set(plan.reduction_arrays)
        )

    def _prepare_marker(self, shadow_sizes: dict[str, int], eager_enabled: bool) -> ShadowMarker:
        marker = self._marker
        if marker is not None and {
            name: shadow.size for name, shadow in marker.shadows.items()
        } == shadow_sizes:
            marker.reset(self.granularity, eager=eager_enabled)
        else:
            marker = ShadowMarker(
                shadow_sizes, granularity=self.granularity, eager=eager_enabled
            )
        return marker

    @staticmethod
    def _touched_elements(marker: ShadowMarker) -> int:
        """Distinct elements the strip marked (the touched list's length)."""
        return sum(
            int(np.count_nonzero(shadow.w | shadow.r))
            for shadow in marker.shadows.values()
        )

    # -- execution -----------------------------------------------------------

    def run(self) -> PipelineOutcome:
        """Run the whole loop; ``env`` must be at loop entry.

        On return ``env`` holds the exact serial post-loop state: passed
        strips committed their speculative state in order, failed strips
        were rolled back and re-executed serially in place.

        When the engine shards onto real worker processes (a registry
        capability query — see
        :meth:`~repro.runtime.engines.registry.EngineRegistry.needs_worker_pool`)
        one persistent worker pool is reused for every strip (per-strip
        fork would dwarf the strips' work): a caller-provided ``pool``
        if one was passed (kept alive for the caller's next run), else a
        pool forked here whose shared-memory segments are unlinked on
        the way out even when a strip aborts or a worker raises.
        """
        from repro.runtime.engines import needs_worker_pool

        if self.pool is not None:
            return self._run(self.pool)
        owned = None
        if needs_worker_pool(self.engine, self.workers):
            from repro.runtime.parallel_backend import (
                ShardSpec,
                default_workers,
                make_worker_pool,
            )

            spec = ShardSpec.from_plan(
                self.program, self.loop, self.plan, self.env, self.sim.num_procs
            )
            owned = make_worker_pool(
                spec,
                self.workers if self.workers is not None
                else default_workers(self.sim.num_procs),
                self.backend,
            )
        try:
            return self._run(owned)
        finally:
            if owned is not None:
                owned.close()

    def _run(self, pool) -> PipelineOutcome:
        env, plan, sim = self.env, self.plan, self.sim
        bounds_interp = Interpreter(self.program, env, value_based=False)
        start, stop, step = bounds_interp.eval_loop_bounds(self.loop)
        values = loop_iteration_values(start, stop, step)

        shadow_sizes = {name: env.array_size(name) for name in plan.tested_arrays}
        eager_enabled = (
            self.eager
            and self.test_mode is TestMode.LRPD
            and self.granularity is Granularity.ITERATION
            and self.directional
            and self.dynamic_last_value
        )
        strip_protected = self._strip_checkpoint_arrays()
        aggregator = StripAggregator(self.test_mode, self.granularity)
        strips: list[StripRecord] = []
        total = TimeBreakdown()
        stats: dict[str, float] = {
            "iterations": float(len(values)),
            "marks": 0.0,
            "reduction_merged": 0.0,
            "copied_out": 0.0,
            "serial_iterations": 0.0,
            "aborted_strips": 0.0,
        }

        marker: ShadowMarker | None = None
        total_wall = WallClock()
        prev_touched = 0
        fallback_reason: str | None = None
        engine_used: str | None = None
        engine_decision: str | None = None
        recovery_decision: str | None = None
        #: failed-strip cost under the chosen policy vs its plain serial
        #: equivalent — the aggregate recovered fraction's numerator and
        #: denominator (vetoed strips contribute their serial time to
        #: both, pulling the fraction toward zero).
        recovery_cycles = 0.0
        serial_equiv = 0.0
        pos = 0
        while pos < len(values):
            size = max(1, int(self.sizer.next_size()))
            strip_values = values[pos : pos + size]
            pos += len(strip_values)
            times = TimeBreakdown()
            wall = WallClock()

            tick = time.perf_counter()
            checkpoint = Checkpoint(env, strip_protected)
            wall.checkpoint = time.perf_counter() - tick
            times.checkpoint = sim.checkpoint_time(checkpoint.elements_saved)
            stats["checkpoint_elements"] = float(checkpoint.elements_saved)

            if marker is None:
                # First strip: allocate (or recycle a donated marker) and
                # pay the full shadow initialization, as the unstripped
                # protocol would.
                marker = self._prepare_marker(shadow_sizes, eager_enabled)
                times.shadow_init = sim.shadow_init_time(sum(shadow_sizes.values()))
            else:
                marker.reset(self.granularity, eager=eager_enabled)
                times.shadow_init = sim.strip_reset_time(prev_touched)

            tick = time.perf_counter()
            run = run_doall(
                self.program,
                self.loop,
                env,
                plan,
                sim.num_procs,
                marker=marker,
                value_based=(self.test_mode is TestMode.LRPD),
                schedule=self.schedule,
                engine=self.engine,
                values=strip_values,
                workers=self.workers,
                pool=pool,
                backend=self.backend,
                profiles=self.profiles,
                loop_key=self.loop_key,
            )
            wall.doall = time.perf_counter() - tick
            wall.jit_compile = run.jit_compile_s
            times.private_init = sim.private_init_time(
                sum(p.size for p in run.privates.values())
            )
            body, dispatch, barrier = sim.doall_time(
                run.iteration_costs,
                assignment=(
                    None if self.schedule is ScheduleKind.DYNAMIC else run.assignment
                ),
            )
            times.body, times.dispatch, times.barrier = body, dispatch, barrier

            tick = time.perf_counter()
            result = analyze_shadows(
                marker,
                self.test_mode,
                dynamic_last_value=self.dynamic_last_value,
                directional=self.directional,
            )
            wall.analysis = time.perf_counter() - tick
            touched = self._touched_elements(marker)
            if run.aborted:
                assert not result.passed, "eager abort must imply a failing analysis"
                times.analysis = 0.0
                stats["aborted_strips"] += 1.0
            else:
                times.analysis = sim.strip_analysis_time(touched)
            stats["marks"] += float(sum(c.marks for c in run.iteration_costs))
            strip_recovered = False

            if result.passed:
                tick = time.perf_counter()
                finalize = finalize_doall(run, env, plan, self.loop)
                wall.commit = time.perf_counter() - tick
                times.reduction_merge = sim.reduction_merge_time(
                    finalize.reduction_merged
                )
                times.copy_out = sim.copy_out_time(finalize.copied_out)
                stats["reduction_merged"] += float(finalize.reduction_merged)
                stats["copied_out"] += float(finalize.copied_out)
            else:
                rec_engine = None
                distance = None
                if self.recovery:
                    rec_engine, distance, strip_decision = _plan_recovery(
                        marker, run, self.granularity
                    )
                    if recovery_decision is None:
                        recovery_decision = strip_decision
                tick = time.perf_counter()
                checkpoint.restore()
                times.restore = sim.restore_time(checkpoint.elements_saved)
                if distance is not None:
                    rec = rec_engine.recover(
                        self.program, self.loop, env, strip_values, step,
                        sim, distance=distance,
                    )
                    times.doacross = rec.time.total
                    strip_recovered = True
                    recovery_cycles += rec.time.total
                    serial_equiv += rec.serial_equivalent
                    stats["recovered_iterations"] = (
                        stats.get("recovered_iterations", 0.0)
                        + float(rec.iterations)
                    )
                    stats["recovery_sync_waits"] = (
                        stats.get("recovery_sync_waits", 0.0)
                        + float(rec.time.sync_waits)
                    )
                    stats["recovery_sync_wait_cycles"] = (
                        stats.get("recovery_sync_wait_cycles", 0.0)
                        + rec.time.sync_wait_cycles
                    )
                    stats["recovery_distance"] = min(
                        stats.get("recovery_distance", float(distance)),
                        float(distance),
                    )
                else:
                    serial_interp = Interpreter(
                        self.program, env, value_based=False
                    )
                    serial_time, _costs = rerun_values_serially(
                        serial_interp, self.loop, strip_values, step, sim.model
                    )
                    times.serial_rerun = serial_time
                    stats["serial_iterations"] += float(len(strip_values))
                    if self.recovery:
                        recovery_cycles += serial_time
                        serial_equiv += serial_time
                wall.rollback = time.perf_counter() - tick

            aggregator.add_strip(marker, result, recovered=strip_recovered)
            self.sizer.record(result.passed)
            strips.append(
                StripRecord(
                    index=len(strips),
                    first_value=strip_values[0],
                    iterations=len(strip_values),
                    strip_size=size,
                    passed=result.passed,
                    aborted=run.aborted,
                    times=times,
                    recovered=strip_recovered,
                )
            )
            total = total.merged_with(times)
            total_wall = total_wall.merged_with(wall)
            prev_touched = touched
            if fallback_reason is None and run.fallback_reason is not None:
                fallback_reason = run.fallback_reason
            if engine_used is None:
                engine_used = run.engine_used
                engine_decision = run.engine_decision

        if values:
            # Normalize the loop variable's exit value; per-strip commits
            # cannot know the step when a strip has a single iteration.
            env.set_scalar(self.loop.var, values[-1] + step)
        stats["strips"] = float(aggregator.strips)
        stats["strips_failed"] = float(aggregator.strips_failed)
        if self.recovery:
            stats["strips_recovered"] = float(aggregator.strips_recovered)
            if aggregator.strips_failed and serial_equiv > 0.0:
                stats["recovered_fraction"] = max(
                    0.0, 1.0 - recovery_cycles / serial_equiv
                )
        return PipelineOutcome(
            result=aggregator.result(),
            times=total,
            strips=strips,
            stats=stats,
            marker=marker,
            wall=total_wall,
            fallback_reason=fallback_reason,
            engine_used=engine_used,
            engine_decision=engine_decision,
            recovery_decision=recovery_decision,
        )
