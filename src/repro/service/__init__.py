"""Service mode: the ``repro serve`` daemon and its client.

Promotes the paper's schedule reuse (§IV.D) from per-process to
fleet-wide: one long-lived daemon accepts loop-execution jobs from many
concurrent clients over a unix socket, shares one
:class:`~repro.runtime.profile.LoopProfileStore` and one set of
persistent worker pools across every request, and coalesces identical
in-flight jobs so a burst of the same loop costs one speculation.

Layout: :mod:`~repro.service.protocol` (wire format, job spec, served
reports), :mod:`~repro.service.catalog` (workload/machine resolution),
:mod:`~repro.service.batching` (bounded queue, coalescing),
:mod:`~repro.service.server` (the daemon), :mod:`~repro.service.client`
(the blocking client).
"""

from repro.service.batching import JobQueue, QueueFull, ServiceStats
from repro.service.catalog import build_machine, build_workload, workload_names
from repro.service.client import ReproClient
from repro.service.protocol import (
    FORMAT,
    VERSION,
    JobRequest,
    ServedReport,
    comparable_payload,
    environment_digest,
    report_payload,
)
from repro.service.server import (
    DEFAULT_QUEUE_SIZE,
    DEFAULT_REQUEST_TIMEOUT,
    LoopService,
    ReproServer,
    serve_forever,
)

__all__ = [
    "FORMAT",
    "VERSION",
    "DEFAULT_QUEUE_SIZE",
    "DEFAULT_REQUEST_TIMEOUT",
    "JobQueue",
    "JobRequest",
    "LoopService",
    "QueueFull",
    "ReproClient",
    "ReproServer",
    "ServedReport",
    "ServiceStats",
    "build_machine",
    "build_workload",
    "comparable_payload",
    "environment_digest",
    "report_payload",
    "serve_forever",
    "workload_names",
]
