"""Request intake: the bounded job queue with in-flight coalescing.

The daemon's backpressure and batching policy live here, separate from
socket handling:

* **bounded intake** — jobs wait in an :class:`asyncio.Queue` of fixed
  depth; when it is full, :meth:`JobQueue.submit` raises
  :class:`QueueFull` and the server replies with a clean
  ``queue-full`` error instead of letting requests pile up without
  bound (the client can back off and retry);
* **in-flight coalescing** — two requests whose
  :meth:`~repro.service.protocol.JobRequest.key` match are the same
  (loop, configuration): the second one never enqueues, it awaits the
  first one's future and both receive the one execution's report.  A
  burst of identical requests — the fleet case the paper's schedule
  reuse is about — costs one speculation, not N.

Every waiter must wrap its wait in :func:`asyncio.shield` (see
:meth:`ReproServer._handle_run`): a per-request timeout cancels only
that waiter, never the shared execution.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.service.protocol import JobRequest


class QueueFull(Exception):
    """The bounded intake queue rejected a new job (backpressure)."""


@dataclass
class ServiceStats:
    """The daemon's lifetime counters (the ``stats`` op's payload)."""

    received: int = 0       # run requests that parsed into a valid job
    executed: int = 0       # jobs actually dispatched onto a runner
    coalesced: int = 0      # requests served by another job's execution
    rejected: int = 0       # queue-full rejections
    errors: int = 0         # error replies of any other kind
    timeouts: int = 0       # per-request waits that expired
    disconnects: int = 0    # clients that vanished mid-conversation
    extra: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = {
            "received": self.received,
            "executed": self.executed,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "disconnects": self.disconnects,
        }
        payload.update(self.extra)
        return payload


class JobQueue:
    """Bounded job intake with (loop, configuration) coalescing."""

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError("queue depth must be >= 1")
        self.maxsize = maxsize
        self._queue: asyncio.Queue[tuple[str, JobRequest]] = asyncio.Queue(maxsize)
        #: job key -> the future every waiter of that job awaits.
        self._inflight: dict[str, asyncio.Future] = {}
        self.stats = ServiceStats()

    def submit(self, job: JobRequest) -> tuple[asyncio.Future, bool]:
        """Enqueue ``job`` (or join its in-flight twin).

        Returns ``(future, coalesced)``; the future resolves to the
        report payload dict, or to an exception if the execution failed.
        Raises :class:`QueueFull` when the job is new and the queue has
        no room.
        """
        self.stats.received += 1
        key = job.key()
        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced += 1
            return future, True
        future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((key, job))
        except asyncio.QueueFull:
            self.stats.rejected += 1
            raise QueueFull(
                f"job queue is full ({self.maxsize} pending); retry later"
            ) from None
        self._inflight[key] = future
        return future, False

    async def next_job(self) -> tuple[str, JobRequest]:
        """The dispatcher's blocking take."""
        return await self._queue.get()

    def resolve(self, key: str, payload: dict) -> None:
        """Deliver one execution's report to every waiter of ``key``."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(payload)

    def fail(self, key: str, error: BaseException) -> None:
        """Deliver one execution's failure to every waiter of ``key``."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(error)

    def drain(self, error: BaseException) -> int:
        """Fail every queued and in-flight job (shutdown); returns how
        many were abandoned."""
        abandoned = 0
        while True:
            try:
                self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
        inflight, self._inflight = self._inflight, {}
        for future in inflight.values():
            if not future.done():
                future.set_exception(error)
                abandoned += 1
        return abandoned

    def pending(self) -> int:
        """Jobs accepted but not yet resolved."""
        return len(self._inflight)
