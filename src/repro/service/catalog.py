"""The serve daemon's workload catalog.

Maps the job spec's ``workload`` names to builders: the seven paper
loops under their CLI short names, plus small synthetic loops the
service suite uses for mixed pass/fail traffic (a failing loop is a
first-class job — the daemon must serve rollback reports as cleanly as
speedups).  Machine models are resolved here too, so the server has one
place that turns a validated :class:`~repro.service.protocol.JobRequest`
into runnable objects.
"""

from __future__ import annotations

from repro.errors import JobRejected
from repro.machine.costmodel import CostModel, fx80, fx2800
from repro.workloads import PAPER_LOOPS, Workload, build_corpus_workload, corpus_names
from repro.workloads.synthetic import (
    build_dependence_injected,
    build_partial_parallel,
    build_synthdoacross,
)


def _synthetic_pass() -> Workload:
    """A small fully parallel gather/scatter loop (the test passes)."""
    return build_dependence_injected(n=160, dep_fraction=0.0)


def _synthetic_fail() -> Workload:
    """The same loop with half its reads made flow-dependent (the test
    fails and the report carries the serial re-execution)."""
    return build_dependence_injected(n=160, dep_fraction=0.5)


def _synthetic_partial() -> Workload:
    """A partially parallel loop (one serial band): strip-mined jobs
    exercise per-strip pass/fail records over the wire."""
    return build_partial_parallel(n=160, band_length=16)


def _synthetic_doacross() -> Workload:
    """A uniform-distance DOACROSS loop (fails the test, pipelines at
    the measured distance): recovery-tier jobs over the wire."""
    return build_synthdoacross(n=160, distance=16)


#: workload name -> zero-argument builder.  Paper loops keep their CLI
#: short names; the ``synth*`` entries are service-suite traffic; the
#: ``corpus/<name>`` entries are real Python loops ingested through the
#: lifting frontend (``repro submit corpus/histogram`` warms the
#: daemon's profile store across real-Python traffic).
WORKLOADS: dict[str, object] = {
    **{name.split("_")[0].lower(): builder for name, builder in PAPER_LOOPS.items()},
    "synthpass": _synthetic_pass,
    "synthfail": _synthetic_fail,
    "synthpartial": _synthetic_partial,
    "synthdoacross": _synthetic_doacross,
    **{
        f"corpus/{name}": (lambda name=name: build_corpus_workload(name))
        for name in corpus_names(liftable=True)
    },
}

#: machine name -> cost-model factory (mirrors the CLI's choices).
MACHINES: dict[str, object] = {"fx80": fx80, "fx2800": fx2800}


def workload_names() -> list[str]:
    """Servable workload names, sorted (the submit CLI's choices)."""
    return sorted(WORKLOADS)


def build_workload(name: str) -> Workload:
    """Build the named workload, or reject the job cleanly."""
    builder = WORKLOADS.get(name)
    if builder is None:
        raise JobRejected(
            "unknown-workload",
            f"unknown workload {name!r}; servable: {', '.join(workload_names())}",
        )
    return builder()


def build_machine(name: str, procs: int | None) -> CostModel:
    """Build the named machine model, optionally re-sized to ``procs``."""
    factory = MACHINES.get(name)
    if factory is None:
        raise JobRejected(
            "invalid-job",
            f"unknown machine {name!r}; known: {', '.join(sorted(MACHINES))}",
        )
    model = factory()
    if procs is not None:
        model = model.with_procs(procs)
    return model
