"""The synchronous client of the ``repro serve`` daemon.

:class:`ReproClient` speaks the newline-JSON protocol over a unix
socket with plain blocking I/O — callers (the ``repro submit`` CLI, the
benchmark's worker threads, the smoke suite) stay free of asyncio.  One
client holds one connection and may issue many requests on it; it is
also a context manager.

Failure mapping: an unreachable or mid-request-dying socket raises
:class:`~repro.errors.ServiceConnectionError`; a client-side wait
expiring raises :class:`~repro.errors.ServiceTimeout`; an error *reply*
from the daemon raises :class:`~repro.errors.JobRejected` carrying the
protocol error code.
"""

from __future__ import annotations

import socket

from repro.errors import (
    JobRejected,
    ProtocolError,
    ServiceConnectionError,
    ServiceTimeout,
)
from repro.service.protocol import (
    JobRequest,
    ServedReport,
    decode_message,
    encode_message,
)


class ReproClient:
    """One blocking connection to a ``repro serve`` daemon."""

    def __init__(self, socket_path, *, timeout: float | None = None):
        self.socket_path = str(socket_path)
        #: default seconds to wait for any single reply (None = forever).
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buffer = b""
        self._next_id = 0

    # -- connection --------------------------------------------------------

    def connect(self) -> "ReproClient":
        """Connect to the daemon's socket (idempotent)."""
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServiceConnectionError(
                f"cannot reach repro daemon at {self.socket_path}: {exc}"
            ) from exc
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "ReproClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request/reply -----------------------------------------------------

    def request(self, payload: dict, *, timeout: float | None = None) -> dict:
        """Send one message and return the matching ok reply's payload.

        An ``"error"`` reply raises :class:`~repro.errors.JobRejected`
        with the daemon's code and message.
        """
        self.connect()
        assert self._sock is not None
        self._next_id += 1
        request_id = self._next_id
        message = dict(payload)
        message["id"] = request_id
        wait = self.timeout if timeout is None else timeout
        self._sock.settimeout(wait)
        try:
            self._sock.sendall(encode_message(message))
            line = self._read_line()
        except socket.timeout as exc:
            # The connection is now desynchronized (the stale reply may
            # still arrive); drop it so the next request reconnects.
            self.close()
            raise ServiceTimeout(
                f"no reply from the daemon within {wait:g}s"
            ) from exc
        except OSError as exc:
            self.close()
            raise ServiceConnectionError(
                f"connection to {self.socket_path} failed: {exc}"
            ) from exc
        reply = decode_message(line)
        if reply.get("id") not in (None, request_id):
            raise ProtocolError(
                f"reply id {reply.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        if reply.get("status") == "ok":
            return reply
        error = reply.get("error") or {}
        raise JobRejected(
            str(error.get("code", "internal")),
            str(error.get("message", "daemon replied with an error")),
        )

    def _read_line(self) -> bytes:
        """One newline-framed reply (EOF mid-line is a connection error)."""
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServiceConnectionError(
                    "the daemon closed the connection mid-reply"
                )
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    # -- operations --------------------------------------------------------

    def ping(self, *, timeout: float | None = None) -> dict:
        """Liveness check; returns the daemon's ``{"pong", "pid"}`` reply."""
        return self.request({"op": "ping"}, timeout=timeout)

    def submit(
        self,
        job: JobRequest | dict,
        *,
        timeout: float | None = None,
        server_timeout: float | None = None,
    ) -> ServedReport:
        """Run one job on the daemon and return its report.

        ``timeout`` bounds this client's wait for the reply;
        ``server_timeout`` is shipped in the request and bounds the
        *daemon's* wait before it answers with a ``timeout`` error (the
        execution itself keeps running and warms the fleet store).
        """
        payload = job.to_json() if isinstance(job, JobRequest) else dict(job)
        message: dict = {"op": "run", "job": payload}
        if server_timeout is not None:
            message["timeout"] = server_timeout
        reply = self.request(message, timeout=timeout)
        return ServedReport.from_json(reply["report"])

    def submit_raw(
        self,
        job: JobRequest | dict,
        *,
        timeout: float | None = None,
        server_timeout: float | None = None,
    ) -> dict:
        """Like :meth:`submit` but returns the raw report payload dict
        (the smoke suite compares these byte-for-byte)."""
        payload = job.to_json() if isinstance(job, JobRequest) else dict(job)
        message: dict = {"op": "run", "job": payload}
        if server_timeout is not None:
            message["timeout"] = server_timeout
        reply = self.request(message, timeout=timeout)
        return reply["report"]

    def stats(self, *, timeout: float | None = None) -> dict:
        """The daemon's lifetime counters (queue, pools, profile store)."""
        return self.request({"op": "stats"}, timeout=timeout)["stats"]

    def shutdown_server(self, *, timeout: float | None = None) -> dict:
        """Ask the daemon to shut down gracefully."""
        return self.request({"op": "shutdown"}, timeout=timeout)
