"""The serve daemon's wire protocol.

Newline-delimited JSON over a local (unix-domain) socket, versioned
like :mod:`repro.runtime.profile.persist`: every message carries
``format``/``version`` markers, and a foreign or future-version message
is answered with a clean error reply instead of a crash or a guess.

Three layers live here:

* the **envelope**: :func:`encode_message` / :func:`decode_message`
  frame one message per line and validate the markers;
* the **job spec**: :class:`JobRequest`, the validated description of
  one loop-execution job (workload, strategy, machine, engine, worker
  and strip configuration) with a canonical :meth:`~JobRequest.key`
  that the server coalesces identical in-flight jobs on;
* the **report**: :class:`ServedReport`, the JSON-round-tripped form of
  an :class:`~repro.runtime.results.ExecutionReport`.  The environment
  itself stays on the server; the report ships a content digest of the
  post-loop state instead, strong enough for the smoke suite to assert
  bit-identity between served and direct executions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.core.outcomes import LrpdResult
from repro.errors import ProtocolError
from repro.machine.stats import StripRecord, TimeBreakdown, WallClock
from repro.runtime.profile.persist import result_from_json, result_to_json

FORMAT = "repro-serve"
VERSION = 1

#: request operations the daemon understands.
OPS = ("ping", "run", "stats", "shutdown")

#: error codes an ``"error"`` reply may carry.
ERROR_CODES = (
    "malformed-request",
    "unsupported-version",
    "unknown-op",
    "invalid-job",
    "unknown-workload",
    "queue-full",
    "timeout",
    "shutting-down",
    "internal",
)


# -- envelope ---------------------------------------------------------------


def encode_message(payload: dict) -> bytes:
    """One wire message: the payload plus format/version markers, as a
    single JSON line (the framing unit of the protocol)."""
    body = {"format": FORMAT, "version": VERSION}
    body.update(payload)
    return (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: bytes | str) -> dict:
    """Parse and validate one received line.

    Raises :class:`~repro.errors.ProtocolError` on anything that is not
    a current-version repro-serve message — undecodable bytes, non-JSON,
    a foreign ``format``, or an unsupported ``version``.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"undecodable message bytes: {exc}") from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise ProtocolError("not a repro-serve message")
    if payload.get("version") != VERSION:
        raise ProtocolError(
            f"unsupported protocol version {payload.get('version')!r} "
            f"(this endpoint speaks version {VERSION})"
        )
    return payload


def error_reply(request_id, code: str, message: str) -> dict:
    """The error-reply payload for :func:`encode_message`."""
    assert code in ERROR_CODES, code
    return {
        "id": request_id,
        "status": "error",
        "error": {"code": code, "message": message},
    }


def ok_reply(request_id, **fields) -> dict:
    """The success-reply payload for :func:`encode_message`."""
    reply = {"id": request_id, "status": "ok"}
    reply.update(fields)
    return reply


# -- job spec ---------------------------------------------------------------

#: JobRequest field -> (expected types, default); the validation table
#: :meth:`JobRequest.from_json` enforces (unknown keys are rejected, so
#: a typo'd option never silently becomes a default).
_JOB_FIELDS: dict[str, tuple[tuple[type, ...], object]] = {
    "workload": ((str,), None),
    "strategy": ((str,), "speculative"),
    "machine": ((str,), "fx80"),
    "procs": ((int, type(None)), None),
    "granularity": ((str,), "iteration"),
    "test_mode": ((str,), "lrpd"),
    "engine": ((str,), "compiled"),
    "workers": ((int, type(None)), None),
    "backend": ((str,), "fork"),
    "strip_size": ((int, type(None)), None),
    "adaptive_strips": ((bool,), False),
    "schedule_cache": ((bool,), True),
}


@dataclass(frozen=True)
class JobRequest:
    """One validated loop-execution job.

    Mirrors the knobs of ``repro run``; ``schedule_cache`` defaults on
    because the daemon's whole point is the fleet-shared profile store —
    a repeated loop should skip the test.  Instances are frozen so the
    canonical :meth:`key` stays stable while a job is in flight.
    """

    workload: str
    strategy: str = "speculative"
    machine: str = "fx80"
    procs: int | None = None
    granularity: str = "iteration"
    test_mode: str = "lrpd"
    engine: str = "compiled"
    workers: int | None = None
    backend: str = "fork"
    strip_size: int | None = None
    adaptive_strips: bool = False
    schedule_cache: bool = True

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: object) -> "JobRequest":
        """Validate and build a job from a decoded ``job`` payload.

        Raises :class:`~repro.errors.ProtocolError` naming the offending
        field on unknown keys, wrong types, or a missing workload.
        Names (workload, strategy, engine, backend, machine) are only
        type-checked here — existence is the server's catalog/registry
        lookup, so this module stays import-light for thin clients.
        """
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"job must be an object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - set(_JOB_FIELDS))
        if unknown:
            raise ProtocolError(
                f"unknown job field(s) {', '.join(unknown)}; known fields: "
                f"{', '.join(sorted(_JOB_FIELDS))}"
            )
        values: dict[str, object] = {}
        for name, (types, default) in _JOB_FIELDS.items():
            value = payload.get(name, default)
            # bool is an int subclass: an int field must not accept True.
            if isinstance(value, bool) and bool not in types:
                raise ProtocolError(f"job field {name!r} must not be a bool")
            if not isinstance(value, types):
                expected = "/".join(
                    t.__name__ for t in types if t is not type(None)
                )
                raise ProtocolError(
                    f"job field {name!r} must be {expected}, "
                    f"got {type(value).__name__}"
                )
            values[name] = value
        if values["workload"] is None:
            raise ProtocolError("job field 'workload' is required")
        return cls(**values)  # type: ignore[arg-type]

    def key(self) -> str:
        """The canonical coalescing key: two jobs with equal keys are
        the same (loop, configuration) and share one execution."""
        return json.dumps(self.to_json(), sort_keys=True)


# -- reports ----------------------------------------------------------------


def environment_digest(env) -> str:
    """A content digest of an environment's post-loop state.

    Hashes every scalar (name, exact repr) and every array (name, dtype,
    raw bytes) in name order — two executions with equal digests ended
    in bit-identical user-visible state.
    """
    digest = hashlib.sha256()
    for name in sorted(env.scalars):
        digest.update(name.encode())
        digest.update(repr(env.scalars[name]).encode())
    for name in sorted(env.arrays):
        array = env.arrays[name]
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _strip_to_json(strip: StripRecord) -> dict:
    return {
        "index": strip.index,
        "first_value": strip.first_value,
        "iterations": strip.iterations,
        "strip_size": strip.strip_size,
        "passed": strip.passed,
        "aborted": strip.aborted,
        "recovered": strip.recovered,
        "times": strip.times.as_dict(),
    }


def _strip_from_json(payload: dict) -> StripRecord:
    return StripRecord(
        index=int(payload["index"]),
        first_value=int(payload["first_value"]),
        iterations=int(payload["iterations"]),
        strip_size=int(payload["strip_size"]),
        passed=bool(payload["passed"]),
        aborted=bool(payload["aborted"]),
        recovered=bool(payload.get("recovered", False)),
        times=TimeBreakdown(**payload["times"]),
    )


@dataclass
class ServedReport:
    """An :class:`~repro.runtime.results.ExecutionReport` that crossed
    the wire: every simulated and measured quantity, with the post-loop
    environment replaced by its content digest."""

    strategy: str
    machine: str
    procs: int
    passed: bool | None
    test_result: LrpdResult | None
    times: TimeBreakdown
    serial_loop_time: float
    env_digest: str
    reused_schedule: bool = False
    stats: dict[str, float] = field(default_factory=dict)
    strips: list[StripRecord] = field(default_factory=list)
    wall: WallClock | None = None
    fallbacks: list[tuple[str, str]] = field(default_factory=list)
    engine_used: str | None = None
    engine_decisions: list[tuple[str, str]] = field(default_factory=list)
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def loop_time(self) -> float:
        return self.times.total()

    @property
    def speedup(self) -> float:
        total = self.loop_time
        if total <= 0.0:
            return float("inf")
        return self.serial_loop_time / total

    def describe(self) -> str:
        test = self.test_result.describe() if self.test_result else "no test"
        strips = ""
        if self.strips:
            failed = sum(1 for s in self.strips if not s.passed)
            strips = f", {len(self.strips)} strips ({failed} rolled back)"
        return (
            f"{self.strategy} on {self.machine} (p={self.procs}): "
            f"speedup {self.speedup:.2f} ({test}{strips})"
        )

    @classmethod
    def from_report(cls, report) -> "ServedReport":
        """Snapshot an in-process execution report for the wire."""
        return cls(
            strategy=report.strategy,
            machine=report.machine,
            procs=report.procs,
            passed=report.passed,
            test_result=report.test_result,
            times=report.times,
            serial_loop_time=report.serial_loop_time,
            env_digest=environment_digest(report.env),
            reused_schedule=report.reused_schedule,
            stats=dict(report.stats),
            strips=list(report.strips),
            wall=report.wall,
            fallbacks=list(report.fallbacks),
            engine_used=report.engine_used,
            engine_decisions=list(report.engine_decisions),
            cache_stats=dict(report.cache_stats),
        )

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "machine": self.machine,
            "procs": self.procs,
            "passed": self.passed,
            "test_result": (
                None if self.test_result is None
                else result_to_json(self.test_result)
            ),
            "times": self.times.as_dict(),
            "serial_loop_time": self.serial_loop_time,
            "env_digest": self.env_digest,
            "reused_schedule": self.reused_schedule,
            "stats": dict(self.stats),
            "strips": [_strip_to_json(s) for s in self.strips],
            "wall": None if self.wall is None else self.wall.as_dict(),
            "fallbacks": [list(f) for f in self.fallbacks],
            "engine_used": self.engine_used,
            "engine_decisions": [list(d) for d in self.engine_decisions],
            "cache_stats": dict(self.cache_stats),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ServedReport":
        try:
            return cls(
                strategy=str(payload["strategy"]),
                machine=str(payload["machine"]),
                procs=int(payload["procs"]),
                passed=payload["passed"],
                test_result=(
                    None if payload["test_result"] is None
                    else result_from_json(payload["test_result"])
                ),
                times=TimeBreakdown(**payload["times"]),
                serial_loop_time=float(payload["serial_loop_time"]),
                env_digest=str(payload["env_digest"]),
                reused_schedule=bool(payload["reused_schedule"]),
                stats=dict(payload["stats"]),
                strips=[_strip_from_json(s) for s in payload["strips"]],
                wall=(
                    None if payload["wall"] is None
                    else WallClock(**payload["wall"])
                ),
                fallbacks=[tuple(f) for f in payload["fallbacks"]],
                engine_used=payload["engine_used"],
                engine_decisions=[tuple(d) for d in payload["engine_decisions"]],
                cache_stats=dict(payload["cache_stats"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"corrupt report payload: {exc}") from exc


def report_payload(report) -> dict:
    """The wire form of an in-process execution report."""
    return ServedReport.from_report(report).to_json()


#: report fields that are legitimately non-deterministic across
#: processes: measured wall-clock seconds and the fleet store's
#: cross-run cache counters.  Everything else — simulated times, test
#: verdict and per-array details, stats, strips, the environment digest
#: — must round-trip bit-identically between a served job and a direct
#: in-process run of the same spec.
NONDETERMINISTIC_FIELDS = ("wall", "cache_stats")


def comparable_payload(payload: dict) -> dict:
    """The deterministic projection of a report payload (what the smoke
    suite asserts bit-identical between served and direct runs)."""
    return {
        key: value for key, value in payload.items()
        if key not in NONDETERMINISTIC_FIELDS
    }
