"""The ``repro serve`` daemon: an asyncio front end over the orchestrator.

Architecture (one process, three layers):

* :class:`LoopService` — the synchronous execution core.  One
  fleet-shared :class:`~repro.runtime.profile.LoopProfileStore` and one
  :class:`~repro.runtime.parallel_backend.WorkerPoolCache` serve every
  request; per-workload :class:`~repro.runtime.orchestrator.LoopRunner`
  instances persist across requests, so a repeated loop reuses its
  compiled plan, serial reference, shadow marker, cached LRPD verdict
  (schedule reuse — the whole test is skipped) and forked worker pools.
* :class:`~repro.service.batching.JobQueue` — bounded intake with
  in-flight coalescing of identical (loop, configuration) jobs.
* :class:`ReproServer` — the unix-socket protocol endpoint: one
  newline-framed JSON message per request
  (:mod:`repro.service.protocol`), many concurrent clients, one
  dispatcher feeding a single-threaded executor (loop executions are
  CPU-bound and the runners are not thread-safe; concurrency buys
  coalescing, batching and admission control, not parallel Python).

Every request path replies — malformed lines, foreign protocol
versions, unknown workloads, full queues and expired timeouts all
produce a clean error message, never a hung client.  Graceful shutdown
flushes the profile store to ``--profile-path`` and closes every worker
pool, so no ``/dev/shm`` segment or worker process outlives the daemon.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import os
from pathlib import Path

from repro.core.outcomes import TestMode
from repro.core.shadow import Granularity
from repro.errors import JobRejected, ProtocolError, ReproError
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.parallel_backend import WorkerPoolCache
from repro.runtime.profile import LoopProfileStore
from repro.service.batching import JobQueue, QueueFull
from repro.service.catalog import build_machine, build_workload
from repro.service.protocol import (
    JobRequest,
    decode_message,
    encode_message,
    error_reply,
    ok_reply,
    report_payload,
)

#: default bound on jobs accepted but not yet executed.
DEFAULT_QUEUE_SIZE = 64
#: default per-request seconds a client waits before a timeout reply.
DEFAULT_REQUEST_TIMEOUT = 120.0


class LoopService:
    """The daemon's synchronous execution core (no sockets in here).

    Also usable directly — the benchmark's "direct" baseline and the
    failure-path tests drive it without a server around it.
    """

    def __init__(
        self,
        *,
        profile_path=None,
        profiles: LoopProfileStore | None = None,
    ):
        #: the fleet-shared store: verdicts, observations, planner
        #: feedback from *every* request accumulate here.
        self.profiles = (
            profiles if profiles is not None
            else LoopProfileStore(path=profile_path)
        )
        #: persistent worker pools shared across requests.
        self.pools = WorkerPoolCache()
        self._runners: dict[str, LoopRunner] = {}

    def runner(self, workload_name: str) -> LoopRunner:
        """The persistent runner for ``workload_name`` (built on first use)."""
        runner = self._runners.get(workload_name)
        if runner is None:
            workload = build_workload(workload_name)
            runner = LoopRunner(
                workload.program(),
                workload.inputs,
                profiles=self.profiles,
                pools=self.pools,
            )
            self._runners[workload_name] = runner
        return runner

    def execute(self, job: JobRequest) -> dict:
        """Run one job to completion; returns the report's wire payload.

        Raises :class:`~repro.errors.JobRejected` for anything that is
        the *job's* fault (unknown workload, invalid configuration, a
        strategy the loop does not support), so the server can reply
        with the right error code.
        """
        runner = self.runner(job.workload)
        try:
            model = build_machine(job.machine, job.procs)
            strategy = Strategy(job.strategy)
            if (
                job.strip_size is not None or job.adaptive_strips
            ) and strategy in (Strategy.SPECULATIVE, Strategy.STRIPPED):
                strategy = Strategy.STRIPPED
            config = RunConfig(
                model=model,
                granularity=Granularity(job.granularity),
                test_mode=TestMode(job.test_mode),
                engine=job.engine,
                workers=job.workers,
                backend=job.backend,
                strip_size=job.strip_size,
                adaptive_strip_sizing=job.adaptive_strips,
                use_schedule_cache=job.schedule_cache,
            )
        except JobRejected:
            raise
        except (ValueError, ReproError) as exc:
            raise JobRejected("invalid-job", str(exc)) from exc
        try:
            report = runner.run(strategy, config)
        except ReproError as exc:
            # A clean per-job refusal (e.g. inspector on a loop whose
            # addresses flow through loop-written state), not a daemon
            # failure: the client gets the reason, the daemon lives on.
            raise JobRejected("invalid-job", str(exc)) from exc
        return report_payload(report)

    def counters(self) -> dict:
        """Service-level telemetry for the ``stats`` op."""
        return {
            "runners": len(self._runners),
            "pool_builds": self.pools.builds,
            "pool_hits": self.pools.hits,
            "profile": self.profiles.counters(),
        }

    def flush(self) -> None:
        """Persist the fleet store (no-op when it has no path)."""
        self.profiles.save()

    def close(self) -> None:
        """Flush the store and release every worker pool (idempotent)."""
        try:
            self.flush()
        finally:
            self.pools.close()


class ReproServer:
    """The asyncio unix-socket endpoint over one :class:`LoopService`."""

    def __init__(
        self,
        socket_path,
        *,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        profile_path=None,
        service: LoopService | None = None,
    ):
        self.socket_path = Path(socket_path)
        self.request_timeout = request_timeout
        self.service = service if service is not None else LoopService(
            profile_path=profile_path
        )
        self.queue = JobQueue(queue_size)
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._shutdown = asyncio.Event()
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket (replacing a stale one) and start dispatching."""
        if self.socket_path.exists():
            # A previous daemon's leftover socket file; binding over it
            # needs the unlink (connect attempts already fail cleanly).
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path)
        )
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown`, then tear down cleanly."""
        await self._shutdown.wait()
        await self.aclose()

    def request_shutdown(self) -> None:
        """Flag graceful shutdown (signal handlers and the shutdown op)."""
        self._closing = True
        self._shutdown.set()

    async def aclose(self) -> None:
        """Stop accepting, fail pending jobs, flush and release resources."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        self.queue.drain(JobRejected(
            "shutting-down", "the daemon is shutting down"
        ))
        # The executor thread may still be mid-job; wait so worker pools
        # are not torn down under a running doall.
        await asyncio.get_running_loop().run_in_executor(
            None, self._executor.shutdown
        )
        self.service.close()
        with contextlib.suppress(FileNotFoundError):
            self.socket_path.unlink()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Take queued jobs one at a time and execute them off-loop."""
        loop = asyncio.get_running_loop()
        while True:
            key, job = await self.queue.next_job()
            self.queue.stats.executed += 1
            try:
                payload = await loop.run_in_executor(
                    self._executor, self.service.execute, job
                )
            except asyncio.CancelledError:
                self.queue.fail(key, JobRejected(
                    "shutting-down", "the daemon is shutting down"
                ))
                raise
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
                self.queue.fail(key, exc)
            else:
                self.queue.resolve(key, payload)

    # -- protocol handlers -------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: serve request lines until EOF."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await self._handle_line(line)
                writer.write(encode_message(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            # The client vanished (possibly mid-job: its execution, if
            # any, completes and feeds the fleet store regardless).
            self.queue.stats.disconnects += 1
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_line(self, line: bytes) -> dict:
        """Decode one request line and produce the reply payload."""
        try:
            envelope = decode_message(line)
        except ProtocolError as exc:
            self.queue.stats.errors += 1
            code = (
                "unsupported-version" if "version" in str(exc)
                else "malformed-request"
            )
            return error_reply(None, code, str(exc))
        request_id = envelope.get("id")
        op = envelope.get("op")
        if op == "ping":
            return ok_reply(request_id, pong=True, pid=os.getpid())
        if op == "stats":
            stats = self.queue.stats.to_json()
            stats.update(self.service.counters())
            stats["pending"] = self.queue.pending()
            return ok_reply(request_id, stats=stats)
        if op == "shutdown":
            self.request_shutdown()
            return ok_reply(request_id, shutting_down=True)
        if op == "run":
            return await self._handle_run(envelope, request_id)
        self.queue.stats.errors += 1
        return error_reply(
            request_id, "unknown-op",
            f"unknown op {op!r}; this endpoint speaks: ping, run, stats, "
            f"shutdown",
        )

    async def _handle_run(self, envelope: dict, request_id) -> dict:
        if self._closing:
            return error_reply(
                request_id, "shutting-down", "the daemon is shutting down"
            )
        try:
            job = JobRequest.from_json(envelope.get("job"))
        except ProtocolError as exc:
            self.queue.stats.errors += 1
            return error_reply(request_id, "invalid-job", str(exc))
        timeout = envelope.get("timeout")
        if timeout is None:
            timeout = self.request_timeout
        try:
            future, coalesced = self.queue.submit(job)
        except QueueFull as exc:
            return error_reply(request_id, "queue-full", str(exc))
        try:
            # shield: a timeout abandons only THIS waiter; the execution
            # (and any coalesced twin still waiting) carries on.
            payload = await asyncio.wait_for(
                asyncio.shield(future), timeout=timeout
            )
        except asyncio.TimeoutError:
            self.queue.stats.timeouts += 1
            return error_reply(
                request_id, "timeout",
                f"job not finished within {timeout:.3f}s (it keeps running "
                f"and will warm the profile store; retry to collect it)",
            )
        except JobRejected as exc:
            self.queue.stats.errors += 1
            return error_reply(request_id, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 - daemon must answer
            self.queue.stats.errors += 1
            return error_reply(request_id, "internal", f"{type(exc).__name__}: {exc}")
        return ok_reply(request_id, report=payload, coalesced=coalesced)


async def _serve_async(server: ReproServer, *, banner=None) -> None:
    """Start ``server`` and run until a signal or shutdown op stops it."""
    import signal

    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, server.request_shutdown)
    if banner is not None:
        print(banner, flush=True)
    await server.serve_until_shutdown()


def serve_forever(
    socket_path,
    *,
    queue_size: int = DEFAULT_QUEUE_SIZE,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    profile_path=None,
) -> int:
    """The blocking entry point behind ``repro serve``."""
    server = ReproServer(
        socket_path,
        queue_size=queue_size,
        request_timeout=request_timeout,
        profile_path=profile_path,
    )
    banner = (
        f"repro serve: listening on {socket_path} "
        f"(queue={queue_size}, timeout={request_timeout:g}s"
        + (f", profile={profile_path}" if profile_path else "")
        + ")"
    )
    asyncio.run(_serve_async(server, banner=banner))
    return 0
