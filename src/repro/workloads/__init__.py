"""PERFECT-Benchmarks-like workloads (paper §V).

The paper evaluates seven do loops from the PERFECT club benchmarks that
no compiler of the time could parallelize.  The original Fortran codes
are not reproducible here, so each module builds a synthetic loop in the
mini-Fortran DSL that preserves the *feature that defeats static
analysis* and the transform mix the paper reports:

================================  ============================================
``track``  TRACK / NLFILT_do300   privatized work arrays; addresses flow
                                  through loop-written state → inspector
                                  impossible (speculative only, as in paper)
``bdna``   BDNA / ACTFOR_do240    privatization (gather work arrays) +
                                  reduction with subscripted subscripts
``mdg``    MDG / INTERF_do1000    cutoff control flow; array + scalar
                                  reductions; privatization
``adm``    ADM / RUN_do20         privatization only, permuted output blocks
``ocean``  OCEAN / FTRVMT_do109   parallelism depends on input parameters;
                                  executed many times → schedule reuse
``spice``  SPICE / LOAD loop 40   linked-list traversal (serial Amdahl part)
                                  + reductions through private temporaries
                                  and statically unpredictable control flow
``dyfesm`` DYFESM / SOLVH_do20    segmented-sum reduction + max reduction
================================  ============================================

:mod:`repro.workloads.synthetic` adds parametric generators (dependence
injection, hot spots, wavefront chains) used by the failure-cost and
baseline experiments and by the property tests.

:mod:`repro.workloads.pycorpus` adds real Python numeric-kernel loops
ingested through the ``python`` lifting frontend (``repro lift``); its
liftable loops register in the service catalog as ``corpus/<name>``.
"""

from repro.workloads.adm import build_adm
from repro.workloads.base import Workload
from repro.workloads.bdna import build_bdna
from repro.workloads.dyfesm import build_dyfesm
from repro.workloads.mdg import build_mdg
from repro.workloads.ocean import build_ocean
from repro.workloads.pycorpus import (
    CORPUS,
    CorpusLoop,
    build_corpus_workload,
    corpus_names,
)
from repro.workloads.spice import build_spice
from repro.workloads.track import build_track

#: name -> zero-argument default builder for the seven paper loops.
PAPER_LOOPS = {
    "TRACK_NLFILT_do300": build_track,
    "BDNA_ACTFOR_do240": build_bdna,
    "MDG_INTERF_do1000": build_mdg,
    "ADM_RUN_do20": build_adm,
    "OCEAN_FTRVMT_do109": build_ocean,
    "SPICE_LOAD_do40": build_spice,
    "DYFESM_SOLVH_do20": build_dyfesm,
}

__all__ = [
    "CORPUS",
    "CorpusLoop",
    "PAPER_LOOPS",
    "Workload",
    "build_adm",
    "build_bdna",
    "build_corpus_workload",
    "build_dyfesm",
    "build_mdg",
    "build_ocean",
    "build_spice",
    "build_track",
    "corpus_names",
]
