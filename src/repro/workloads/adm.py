"""ADM / RUN_do20 — privatization only.

Each iteration fills a reusable work vector and writes a permuted output
block; the output position comes from an input array, so the compiler
cannot prove the writes disjoint.  Dynamically every block is written by
exactly one iteration — a doall once the work vector is privatized.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PaperExpectation, Workload


def _source(n: int, m: int) -> str:
    # b is a genuine 2-D array: column col(i) receives iteration i's
    # block.  The parser linearizes b(k, col(i)) column-major into
    # k + (col(i) - 1) * m.
    return f"""
program adm_run
  integer n, m, i, k
  real a({n}), coef({m}), wk({m}), b({m}, {n})
  integer col({n})
  do i = 1, n
    do k = 1, m
      wk(k) = a(i) * coef(k) + sin(coef(k)) * 0.5
    end do
    do k = 1, m
      b(k, col(i)) = wk(k) + wk(m - k + 1) * 0.25
    end do
  end do
end
"""


def build_adm(n: int = 200, m: int = 12, seed: int = 0) -> Workload:
    """Build the ADM-like workload: ``n`` permuted blocks of width ``m``."""
    rng = np.random.default_rng(seed)
    col = rng.permutation(n) + 1
    return Workload(
        name="ADM_RUN_do20",
        source=_source(n, m),
        inputs={
            "n": n,
            "m": m,
            "col": col,
            "a": rng.normal(size=n),
            "coef": rng.normal(size=m),
        },
        expectation=PaperExpectation(
            transforms=("privatization",),
            inspector_extractable=True,
            test_passes=True,
            notes="reused work vector + permuted output blocks",
        ),
        description="work-vector reuse with input-permuted output placement",
        check_arrays=("b",),
    )
