"""Common workload record."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.ast_nodes import Program
from repro.dsl.parser import parse


@dataclass(frozen=True)
class PaperExpectation:
    """What the paper reports for the corresponding loop."""

    transforms: tuple[str, ...]       # subset of ("privatization", "reduction")
    inspector_extractable: bool
    test_passes: bool
    notes: str = ""


@dataclass
class Workload:
    """A runnable loop: program + inputs + what the paper expects of it."""

    name: str
    source: str
    inputs: dict = field(default_factory=dict)
    expectation: PaperExpectation | None = None
    description: str = ""
    #: arrays whose final values the tests compare against the serial oracle.
    check_arrays: tuple[str, ...] = ()
    #: scalars compared likewise.
    check_scalars: tuple[str, ...] = ()

    def program(self) -> Program:
        """A freshly parsed program (ref_id annotations are per-instance)."""
        return parse(self.source)
