"""BDNA / ACTFOR_do240 — privatization + reduction, subscripted subscripts.

A molecular-dynamics gather/compute/scatter idiom: each iteration gathers
a neighbour list into privatizable work arrays (``ind``, ``xdt``),
computes an iteration-local norm, and scatters force contributions
through the indirection — a sum reduction with statically unknowable
collisions.  The paper reports this loop as a doall after privatization
and reduction parallelization, testable in both speculative and
inspector/executor mode (the inspector recomputes ``ind``).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PaperExpectation, Workload


def _source(n: int, sites: int, maxnbr: int, pool: int) -> str:
    return f"""
program bdna_actfor
  integer n, i, j
  real pos({sites}), force({sites}), xdt({maxnbr})
  integer nbr({pool}), cnt({n}), base({n}), ind({maxnbr})
  real s, r
  do i = 1, n
    do j = 1, cnt(i)
      ind(j) = nbr(base(i) + j)
      xdt(j) = pos(ind(j)) - pos(i)
    end do
    s = 0.0
    do j = 1, cnt(i)
      s = s + xdt(j) * xdt(j)
    end do
    s = sqrt(s + 1.0)
    do j = 1, cnt(i)
      r = xdt(j) / s + xdt(j) * xdt(j) * 0.125
      force(ind(j)) = force(ind(j)) + r
    end do
  end do
end
"""


def build_bdna(n: int = 300, sites: int | None = None, seed: int = 0) -> Workload:
    """Build the BDNA-like workload with ``n`` atoms."""
    if sites is None:
        sites = 2 * n
    rng = np.random.default_rng(seed)
    maxnbr = 12
    cnt = rng.integers(2, maxnbr + 1, n)
    base = np.concatenate(([0], np.cumsum(cnt)[:-1]))
    pool = int(cnt.sum())
    nbr = rng.integers(1, sites + 1, pool)
    pos = rng.normal(size=sites)
    force = rng.normal(scale=0.1, size=sites)
    return Workload(
        name="BDNA_ACTFOR_do240",
        source=_source(n, sites, maxnbr, pool),
        inputs={"n": n, "cnt": cnt, "base": base, "nbr": nbr, "pos": pos, "force": force},
        expectation=PaperExpectation(
            transforms=("privatization", "reduction"),
            inspector_extractable=True,
            test_passes=True,
            notes="gather/scatter with subscripted subscripts",
        ),
        description="neighbour-list force scatter: privatized gather + sum reduction",
        check_arrays=("force",),
    )
