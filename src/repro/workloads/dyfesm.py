"""DYFESM / SOLVH_do20 — segmented-sum reduction + max reduction.

A finite-element assembly idiom: element contributions accumulate into
per-segment totals through an input segment map (collisions unknowable
statically), alongside a scalar ``max`` reduction over the element
magnitudes — exercising the non-additive reduction operator support.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PaperExpectation, Workload


def _source(n: int, m: int, nseg: int) -> str:
    return f"""
program dyfesm_solvh
  integer n, m, i, k
  real xe({n * m}), we({m}), sums({nseg})
  integer seg({n})
  real bmax, e
  do i = 1, n
    do k = 1, m
      e = xe((i - 1) * m + k) * we(k)
      sums(seg(i)) = sums(seg(i)) + e
      bmax = max(bmax, abs(e))
    end do
  end do
end
"""


def build_dyfesm(n: int = 250, m: int = 8, nseg: int | None = None, seed: int = 0) -> Workload:
    """Build the DYFESM-like workload: ``n`` elements into ``nseg`` segments."""
    if nseg is None:
        nseg = max(4, n // 8)
    rng = np.random.default_rng(seed)
    return Workload(
        name="DYFESM_SOLVH_do20",
        source=_source(n, m, nseg),
        inputs={
            "n": n,
            "m": m,
            "seg": rng.integers(1, nseg + 1, n),
            "xe": rng.normal(size=n * m),
            "we": rng.normal(size=m),
            "bmax": 0.0,
        },
        expectation=PaperExpectation(
            transforms=("reduction",),
            inspector_extractable=True,
            test_passes=True,
            notes="segmented sum + scalar max reduction",
        ),
        description="finite-element contributions into segment totals",
        check_arrays=("sums",),
        check_scalars=("bmax",),
    )
